// ShardedFleet: shard-count invariance, admission/eviction, backpressure
// accounting and crash-recovery across shard counts.
//
// The load-bearing property is *bitwise shard invariance*: a session's
// verdict trail (fused verdict, first_alarm_window, per-channel detection
// flags, health, window counts) must be identical whether the fleet runs
// on a plain MonitorEngine, the inline shards=0 path, or 1/2/8 worker
// shards — sharding is pure scheduling.  The recovery matrix then pins
// the same property across a simulated crash at 25/50/75% of the stream
// for each shard count.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fusion.hpp"
#include "core/nsync.hpp"
#include "engine/frame_queue.hpp"
#include "engine/monitor_engine.hpp"
#include "engine/sharded_fleet.hpp"
#include "signal/checkpoint.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using engine::FeedStatus;
using engine::MonitorEngine;
using engine::OverflowPolicy;
using engine::ShardedFleet;
using engine::ShardedFleetOptions;
using nsync::signal::CheckpointError;
using nsync::signal::CheckpointErrorKind;
using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

namespace {

constexpr std::size_t kFrames = 2048;
constexpr std::size_t kChunk = 160;

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
  }
  return a;
}

/// Fleet fixture shared by all tests: calibrated two-channel specs plus
/// deterministic observation streams (session 1 is the tampered one).
struct Fixture {
  std::vector<std::string> channels = {"ACC", "AUD"};
  std::vector<Signal> references;
  std::vector<core::Thresholds> thresholds;
  core::NsyncConfig cfg;
  std::vector<std::vector<Signal>> streams;  // [session][channel]

  explicit Fixture(std::size_t n_sessions, std::size_t attack_session = 1) {
    cfg.sync = core::SyncMethod::kDwm;
    cfg.dwm.n_win = 64;
    cfg.dwm.n_hop = 32;
    cfg.dwm.n_ext = 24;
    cfg.dwm.n_sigma = 12.0;
    cfg.dwm.eta = 0.2;
    for (std::size_t c = 0; c < channels.size(); ++c) {
      Signal ref = make_reference(kFrames, 7 + c);
      core::NsyncIds ids(ref, cfg);
      std::vector<Signal> train;
      for (std::uint64_t s = 0; s < 3; ++s) {
        train.push_back(benign_observation(ref, 20 * (s + 1) + c));
      }
      ids.fit(train);
      // Short references calibrate on few windows; floor the fitted
      // thresholds (as the bench does) so benign runs stay benign while
      // the injected mid-stream corruption still alarms decisively.
      core::Thresholds th = ids.thresholds();
      th.c_c = std::max(3.0 * th.c_c, 64.0);
      th.h_c = std::max(3.0 * th.h_c, 8.0);
      th.v_c *= 3.0;
      thresholds.push_back(th);
      references.push_back(std::move(ref));
    }
    streams.resize(n_sessions);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < channels.size(); ++c) {
        streams[s].push_back(
            s == attack_session
                ? malicious_observation(references[c], 900 + 3 * s + c)
                : benign_observation(references[c], 900 + 3 * s + c));
      }
    }
  }

  [[nodiscard]] engine::SessionSpec spec(std::size_t s) const {
    engine::SessionSpec sp;
    sp.name = "printer-" + std::to_string(s);
    sp.rule = core::FusionRule::kAny;
    for (std::size_t c = 0; c < channels.size(); ++c) {
      engine::ChannelSpec ch;
      ch.name = channels[c];
      ch.reference = references[c];
      ch.config = cfg;
      ch.thresholds = thresholds[c];
      sp.channels.push_back(std::move(ch));
    }
    return sp;
  }

  [[nodiscard]] std::size_t sessions() const { return streams.size(); }
};

/// Everything a verdict trail is made of, flattened for exact comparison.
struct Verdict {
  std::string name;
  bool evicted = false;
  bool intrusion = false;
  std::ptrdiff_t first_alarm_window = -1;
  std::size_t windows = 0;
  std::size_t frames_fed = 0;
  std::vector<std::string> channel_state;

  bool operator==(const Verdict&) const = default;
};

Verdict to_verdict(const engine::SessionSnapshot& s) {
  Verdict v;
  v.name = s.name;
  v.evicted = s.evicted;
  v.intrusion = s.intrusion;
  v.first_alarm_window = s.first_alarm_window;
  v.windows = s.windows;
  v.frames_fed = s.frames_fed;
  for (const auto& c : s.channels) {
    v.channel_state.push_back(
        c.name + ":" + (c.detection.intrusion ? "1" : "0") +
        std::to_string(static_cast<int>(c.detection.by_c_disp)) +
        std::to_string(static_cast<int>(c.detection.by_h_dist)) +
        std::to_string(static_cast<int>(c.detection.by_v_dist)) + ":faw=" +
        std::to_string(c.detection.first_alarm_window) + ":health=" +
        std::to_string(static_cast<int>(c.health)) + ":w=" +
        std::to_string(c.windows) + ":f=" + std::to_string(c.frames_fed));
  }
  return v;
}

/// Chunk-interleaved feed of every stream, starting at `offsets` (empty =
/// from zero), driving `feed_fn` exactly like an acquisition loop.
template <typename FeedFn>
void replay(const Fixture& fx, FeedFn&& feed_fn,
            std::vector<std::vector<std::size_t>> offsets = {}) {
  if (offsets.empty()) {
    offsets.assign(fx.sessions(),
                   std::vector<std::size_t>(fx.channels.size(), 0));
  }
  bool more = true;
  while (more) {
    more = false;
    for (std::size_t s = 0; s < fx.sessions(); ++s) {
      for (std::size_t c = 0; c < fx.channels.size(); ++c) {
        const Signal& sig = fx.streams[s][c];
        const std::size_t off = offsets[s][c];
        if (off >= sig.frames()) continue;
        const std::size_t hi = std::min(off + kChunk, sig.frames());
        feed_fn(s, fx.channels[c], SignalView(sig).slice(off, hi));
        offsets[s][c] = hi;
        if (hi < sig.frames()) more = true;
      }
    }
  }
}

std::vector<Verdict> run_monitor_engine(const Fixture& fx) {
  MonitorEngine eng;
  for (std::size_t s = 0; s < fx.sessions(); ++s) eng.add_session(fx.spec(s));
  replay(fx, [&](std::size_t s, const std::string& ch, const SignalView& v) {
    eng.feed(s, ch, v);
    eng.poll();
  });
  std::vector<Verdict> out;
  for (const auto& snap : eng.snapshots()) out.push_back(to_verdict(snap));
  return out;
}

std::vector<Verdict> run_sharded(const Fixture& fx, std::size_t shards,
                                 ShardedFleetOptions fopts = {}) {
  fopts.shards = shards;
  ShardedFleet fleet(fopts);
  for (std::size_t s = 0; s < fx.sessions(); ++s) {
    fleet.add_session(fx.spec(s));
  }
  replay(fx, [&](std::size_t s, const std::string& ch, const SignalView& v) {
    const engine::FeedResult r = fleet.feed(s, ch, v);
    ASSERT_EQ(r.status, FeedStatus::kOk);
  });
  fleet.flush();
  std::vector<Verdict> out;
  for (const auto& snap : fleet.snapshots()) out.push_back(to_verdict(snap));
  return out;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("nsync_fleet_" + tag + "_" +
             std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

}  // namespace

// --- Shard-count invariance -------------------------------------------------

TEST(ShardedFleet, VerdictsBitwiseInvariantAcrossShardCounts) {
  const Fixture fx(4, /*attack_session=*/1);
  const std::vector<Verdict> baseline = run_monitor_engine(fx);
  ASSERT_EQ(baseline.size(), 4u);
  EXPECT_FALSE(baseline[0].intrusion);
  EXPECT_TRUE(baseline[1].intrusion) << "attack session must alarm";
  EXPECT_GE(baseline[1].first_alarm_window, 0);

  for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                   std::size_t{2}, std::size_t{8}}) {
    const std::vector<Verdict> got = run_sharded(fx, shards);
    ASSERT_EQ(got.size(), baseline.size()) << "shards=" << shards;
    for (std::size_t s = 0; s < got.size(); ++s) {
      EXPECT_EQ(got[s], baseline[s])
          << "session " << s << " diverged at shards=" << shards;
    }
  }
}

TEST(ShardedFleet, ShardMappingIsRoundRobin) {
  ShardedFleetOptions opts;
  opts.shards = 3;
  ShardedFleet fleet(opts);
  const Fixture fx(5, /*attack_session=*/99);
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_EQ(fleet.add_session(fx.spec(s)), s);
    EXPECT_EQ(fleet.shard_of(s), s % 3);
  }
  EXPECT_EQ(fleet.sessions(), 5u);
  const engine::FleetStats stats = fleet.stats();
  ASSERT_EQ(stats.per_shard.size(), 3u);
  EXPECT_EQ(stats.per_shard[0].sessions, 2u);
  EXPECT_EQ(stats.per_shard[1].sessions, 2u);
  EXPECT_EQ(stats.per_shard[2].sessions, 1u);
}

// --- Admission / eviction ---------------------------------------------------

TEST(ShardedFleet, FeedValidationIsTyped) {
  const Fixture fx(1, /*attack_session=*/99);
  ShardedFleetOptions opts;
  opts.shards = 2;
  ShardedFleet fleet(opts);
  fleet.add_session(fx.spec(0));

  Signal good(8, 2, 100.0);
  Signal narrow(8, 1, 100.0);
  EXPECT_EQ(fleet.feed(0, "ACC", good).status, FeedStatus::kOk);
  EXPECT_EQ(fleet.feed(7, "ACC", good).status, FeedStatus::kUnknownSession);
  EXPECT_EQ(fleet.feed(0, "MAG", good).status, FeedStatus::kUnknownChannel);
  EXPECT_EQ(fleet.feed(0, "ACC", narrow).status, FeedStatus::kChannelMismatch);
  EXPECT_THROW(fleet.evict_session(7), std::out_of_range);
}

TEST(ShardedFleet, EvictionReleasesSessionAndKeepsIdsStable) {
  const Fixture fx(3, /*attack_session=*/99);
  ShardedFleetOptions opts;
  opts.shards = 2;
  ShardedFleet fleet(opts);
  for (std::size_t s = 0; s < 3; ++s) fleet.add_session(fx.spec(s));

  Signal chunk(64, 2, 100.0);
  ASSERT_EQ(fleet.feed(1, "ACC", chunk).status, FeedStatus::kOk);
  fleet.evict_session(1);
  fleet.evict_session(1);  // idempotent
  // The eviction is ordered behind the accepted frames; new feeds fail
  // immediately at the ingest boundary.
  EXPECT_EQ(fleet.feed(1, "ACC", chunk).status, FeedStatus::kEvicted);
  fleet.flush();

  const engine::SessionSnapshot snap = fleet.snapshot(1);
  EXPECT_TRUE(snap.evicted);
  EXPECT_EQ(snap.name, "printer-1");
  EXPECT_TRUE(snap.channels.empty());
  // Neighbors are untouched and ids stay dense.
  EXPECT_FALSE(fleet.snapshot(0).evicted);
  EXPECT_FALSE(fleet.snapshot(2).evicted);
  EXPECT_EQ(fleet.stats().evicted, 1u);
  // A new admission gets the next id, never a recycled one.
  ShardedFleet* f = &fleet;
  EXPECT_EQ(f->add_session(fx.spec(0)), 3u);
}

// --- Backpressure / load shedding -------------------------------------------

TEST(FrameQueue, DropOldestShedsFeedBatchesButNeverEvictions) {
  engine::FrameQueue q(/*capacity_frames=*/64, OverflowPolicy::kDropOldest);
  engine::FrameBatch feed;
  feed.kind = engine::FrameBatch::Kind::kFeed;
  feed.session = 0;
  feed.channel = "ACC";
  feed.frames = Signal(48, 1, 100.0);
  ASSERT_TRUE(q.push(feed).accepted);

  engine::FrameBatch evict;
  evict.kind = engine::FrameBatch::Kind::kEvict;
  evict.session = 0;
  ASSERT_TRUE(q.push(evict).accepted);

  // 48 queued + 48 new > 64: the oldest *feed* batch is shed; the evict
  // control batch survives.
  engine::FrameBatch feed2 = feed;
  const engine::FrameQueue::PushResult r = q.push(feed2);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(r.shed_frames, 48u);

  std::vector<engine::FrameBatch> drained;
  ASSERT_TRUE(q.pop_all(drained));
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].kind, engine::FrameBatch::Kind::kEvict);
  EXPECT_EQ(drained[1].kind, engine::FrameBatch::Kind::kFeed);
  q.mark_processed();

  const engine::FrameQueueStats st = q.stats();
  EXPECT_EQ(st.shed_frames, 48u);
  EXPECT_EQ(st.shed_batches, 1u);
  EXPECT_EQ(st.enqueued_frames, 96u);
  EXPECT_EQ(st.queued_frames, 0u);
}

TEST(FrameQueue, RejectPolicyRefusesPastHighWaterMark) {
  engine::FrameQueue q(/*capacity_frames=*/32, OverflowPolicy::kReject);
  engine::FrameBatch b;
  b.kind = engine::FrameBatch::Kind::kFeed;
  b.frames = Signal(24, 1, 100.0);
  ASSERT_TRUE(q.push(b).accepted);
  engine::FrameBatch b2 = b;
  EXPECT_FALSE(q.push(b2).accepted);
  EXPECT_EQ(q.stats().rejected_frames, 24u);
  EXPECT_EQ(q.stats().rejected_batches, 1u);
  // An oversized batch is still accepted when the queue is empty — a
  // frame larger than the high-water mark must not be unfeedable.
  std::vector<engine::FrameBatch> drained;
  ASSERT_TRUE(q.pop_all(drained));
  q.mark_processed();
  engine::FrameBatch huge;
  huge.kind = engine::FrameBatch::Kind::kFeed;
  huge.frames = Signal(1000, 1, 100.0);
  EXPECT_TRUE(q.push(huge).accepted);
}

// Regression: a push into a closed queue used to land in rejected_* under
// every policy, so POLL_STATS conflated shutdown-drain refusals with
// genuine kReject overload.  The two refusal kinds are now accounted
// separately.
TEST(FrameQueue, ClosedRefusalsDoNotCountAsRejects) {
  engine::FrameQueue q(/*capacity_frames=*/32, OverflowPolicy::kReject);
  engine::FrameBatch b;
  b.kind = engine::FrameBatch::Kind::kFeed;
  b.frames = Signal(24, 1, 100.0);
  ASSERT_TRUE(q.push(b).accepted);
  // Genuine overload refusal: rejected_*.
  engine::FrameBatch b2 = b;
  EXPECT_FALSE(q.push(b2).accepted);
  // Shutdown-drain refusal: closed_*, NOT rejected_*.
  q.close();
  engine::FrameBatch b3 = b;
  EXPECT_FALSE(q.push(b3).accepted);
  const engine::FrameQueueStats st = q.stats();
  EXPECT_EQ(st.rejected_frames, 24u);
  EXPECT_EQ(st.rejected_batches, 1u);
  EXPECT_EQ(st.closed_frames, 24u);
  EXPECT_EQ(st.closed_batches, 1u);
}

TEST(FrameQueue, BlockPolicyClosedWhileWaitingCountsAsClosed) {
  engine::FrameQueue q(/*capacity_frames=*/16, OverflowPolicy::kBlock);
  engine::FrameBatch b;
  b.kind = engine::FrameBatch::Kind::kFeed;
  b.frames = Signal(16, 1, 100.0);
  ASSERT_TRUE(q.push(b).accepted);
  // A second producer blocks on space; close() wakes it and the refusal
  // must be accounted as a closed-queue refusal, not overload.
  std::thread producer([&q] {
    engine::FrameBatch blocked;
    blocked.kind = engine::FrameBatch::Kind::kFeed;
    blocked.frames = Signal(16, 1, 100.0);
    EXPECT_FALSE(q.push(blocked).accepted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  const engine::FrameQueueStats st = q.stats();
  EXPECT_EQ(st.rejected_frames, 0u);
  EXPECT_EQ(st.rejected_batches, 0u);
  EXPECT_EQ(st.closed_frames, 16u);
  EXPECT_EQ(st.closed_batches, 1u);
}

TEST(ShardedFleet, LoadShedAccountingBalances) {
  const Fixture fx(2, /*attack_session=*/99);
  ShardedFleetOptions opts;
  opts.shards = 1;
  opts.queue_capacity_frames = 512;
  opts.overflow = OverflowPolicy::kDropOldest;
  ShardedFleet fleet(opts);
  for (std::size_t s = 0; s < 2; ++s) fleet.add_session(fx.spec(s));

  std::size_t fed = 0;
  std::size_t shed_from_results = 0;
  replay(fx, [&](std::size_t s, const std::string& ch, const SignalView& v) {
    const engine::FeedResult r = fleet.feed(s, ch, v);
    ASSERT_TRUE(r.status == FeedStatus::kOk || r.status == FeedStatus::kShed);
    fed += v.frames();
    shed_from_results += r.shed_frames;
  });
  fleet.flush();

  const engine::FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.shed_frames, shed_from_results);
  EXPECT_EQ(stats.rejected_frames, 0u);
  // Every fed frame was either processed by the engine or accounted shed.
  std::size_t processed = 0;
  for (const auto& snap : fleet.snapshots()) processed += snap.frames_fed;
  EXPECT_EQ(processed + stats.shed_frames, fed);
}

// --- Crash recovery ---------------------------------------------------------

TEST(ShardedFleet, RecoveryMatrixBitwiseAcrossKillPointsAndShardCounts) {
  const Fixture fx(3, /*attack_session=*/1);
  const std::vector<Verdict> uninterrupted = run_monitor_engine(fx);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    for (const int kill_pct : {25, 50, 75}) {
      TempDir dir("recover");
      ShardedFleetOptions opts;
      opts.shards = shards;
      opts.checkpoint_dir = dir.str();

      // Phase 1: feed the first kill_pct% of every stream, then drop the
      // fleet without any further checkpoint — flush + checkpoint_all
      // stands in for "the periodic checkpoint that happened to complete
      // right before the SIGKILL".
      {
        ShardedFleet fleet(opts);
        for (std::size_t s = 0; s < fx.sessions(); ++s) {
          fleet.add_session(fx.spec(s));
        }
        for (std::size_t s = 0; s < fx.sessions(); ++s) {
          for (std::size_t c = 0; c < fx.channels.size(); ++c) {
            const Signal& sig = fx.streams[s][c];
            const std::size_t cut =
                sig.frames() * static_cast<std::size_t>(kill_pct) / 100;
            for (std::size_t off = 0; off < cut; off += kChunk) {
              const std::size_t hi = std::min(off + kChunk, cut);
              ASSERT_EQ(
                  fleet.feed(s, fx.channels[c], SignalView(sig).slice(off, hi))
                      .status,
                  FeedStatus::kOk);
            }
          }
        }
        fleet.flush();
        fleet.checkpoint_all();
      }

      // Phase 2: restore and resume each channel at its recorded offset.
      std::unique_ptr<ShardedFleet> fleet =
          ShardedFleet::restore(dir.str(), opts);
      ASSERT_EQ(fleet->sessions(), fx.sessions());
      std::vector<std::vector<std::size_t>> offsets(
          fx.sessions(), std::vector<std::size_t>(fx.channels.size(), 0));
      for (std::size_t s = 0; s < fx.sessions(); ++s) {
        const engine::SessionSnapshot snap = fleet->snapshot(s);
        for (const auto& ch : snap.channels) {
          for (std::size_t c = 0; c < fx.channels.size(); ++c) {
            if (fx.channels[c] == ch.name) offsets[s][c] = ch.frames_fed;
          }
        }
      }
      replay(
          fx,
          [&](std::size_t s, const std::string& ch, const SignalView& v) {
            ASSERT_EQ(fleet->feed(s, ch, v).status, FeedStatus::kOk);
          },
          offsets);
      fleet->flush();

      for (std::size_t s = 0; s < fx.sessions(); ++s) {
        EXPECT_EQ(to_verdict(fleet->snapshot(s)), uninterrupted[s])
            << "shards=" << shards << " kill=" << kill_pct << "% session "
            << s;
      }
    }
  }
}

TEST(ShardedFleet, AdmissionIsDurableWithoutExplicitCheckpoint) {
  TempDir dir("admit");
  ShardedFleetOptions opts;
  opts.shards = 2;
  opts.checkpoint_dir = dir.str();
  const Fixture fx(3, /*attack_session=*/99);
  {
    ShardedFleet fleet(opts);
    for (std::size_t s = 0; s < 3; ++s) fleet.add_session(fx.spec(s));
    // No flush, no checkpoint_all: admission alone must be durable.
  }
  const std::unique_ptr<ShardedFleet> restored =
      ShardedFleet::restore(dir.str(), opts);
  ASSERT_EQ(restored->sessions(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    const engine::SessionSnapshot snap = restored->snapshot(s);
    EXPECT_EQ(snap.name, "printer-" + std::to_string(s));
    EXPECT_EQ(snap.frames_fed, 0u);
  }
}

TEST(ShardedFleet, EvictionSurvivesRestore) {
  TempDir dir("evict");
  ShardedFleetOptions opts;
  opts.shards = 2;
  opts.checkpoint_dir = dir.str();
  const Fixture fx(2, /*attack_session=*/99);
  {
    ShardedFleet fleet(opts);
    fleet.add_session(fx.spec(0));
    fleet.add_session(fx.spec(1));
    fleet.evict_session(0);
    fleet.flush();  // the worker checkpoints after processing the evict
  }
  const std::unique_ptr<ShardedFleet> restored =
      ShardedFleet::restore(dir.str(), opts);
  ASSERT_EQ(restored->sessions(), 2u);
  EXPECT_TRUE(restored->snapshot(0).evicted);
  EXPECT_FALSE(restored->snapshot(1).evicted);
  Signal chunk(8, 2, 100.0);
  EXPECT_EQ(restored->feed(0, "ACC", chunk).status, FeedStatus::kEvicted);
  EXPECT_EQ(restored->feed(1, "ACC", chunk).status, FeedStatus::kOk);
}

TEST(ShardedFleet, RestoreRejectsMissingAndInconsistentShardFiles) {
  const Fixture fx(3, /*attack_session=*/99);
  TempDir dir("badset");
  ShardedFleetOptions opts;
  opts.shards = 2;
  opts.checkpoint_dir = dir.str();
  {
    ShardedFleet fleet(opts);
    for (std::size_t s = 0; s < 3; ++s) fleet.add_session(fx.spec(s));
    fleet.flush();
    fleet.checkpoint_all();
  }

  // Missing shard file: the checkpoint set is incomplete.
  ShardedFleetOptions three = opts;
  three.shards = 3;
  try {
    (void)ShardedFleet::restore(dir.str(), three);
    FAIL() << "restore with a missing shard file must throw";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kIo);
  }

  // Swapped shard files: shard 0's file now holds 1 session where the
  // round-robin mapping demands 2 — no id sequence produces that split.
  const std::string f0 = dir.str() + "/fleet.0.nckp";
  const std::string f1 = dir.str() + "/fleet.1.nckp";
  std::filesystem::rename(f0, f0 + ".tmp");
  std::filesystem::rename(f1, f0);
  std::filesystem::rename(f0 + ".tmp", f1);
  try {
    (void)ShardedFleet::restore(dir.str(), opts);
    FAIL() << "restore with swapped shard files must throw";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kMismatch);
  }
}

// --- Fusion policies across shards ------------------------------------------

TEST(ShardedFleet, FusionOverrideReplacesAdmittedSpecPolicies) {
  // The daemon-side --fusion knob: every admitted session fuses with the
  // override regardless of what its spec carried.
  const Fixture fx(2, /*attack_session=*/1);
  ShardedFleetOptions opts;
  opts.shards = 2;
  opts.fusion_override =
      std::make_shared<core::VotingPolicy>(core::FusionRule::kAll);
  ShardedFleet fleet(opts);
  for (std::size_t s = 0; s < fx.sessions(); ++s) {
    fleet.add_session(fx.spec(s));  // the spec itself says kAny
  }
  replay(fx, [&](std::size_t s, const std::string& ch, const SignalView& v) {
    ASSERT_EQ(fleet.feed(s, ch, v).status, FeedStatus::kOk);
  });
  fleet.flush();
  for (const auto& snap : fleet.snapshots()) {
    EXPECT_EQ(snap.policy, "all") << snap.name;
  }
  // Verdicts under the override: the tampered session corrupts both
  // channels, so even kAll convicts it; the benign one stays clean.
  EXPECT_FALSE(fleet.snapshot(0).intrusion);
  EXPECT_TRUE(fleet.snapshot(1).intrusion);
}

TEST(ShardedFleet, WeightedSessionsAreShardInvariant) {
  // Weighted fusion must be pure scheduling too: identical fused scores,
  // policies and verdicts on a plain MonitorEngine and any shard count.
  const Fixture fx(3, /*attack_session=*/1);
  auto policy = std::make_shared<core::WeightedPolicy>();
  policy->fit(fx.channels,
              {{0.21, 0.47}, {0.33, 0.12}, {0.27, 0.30}, {0.19, 0.41}});
  const auto weighted_spec = [&](std::size_t s) {
    engine::SessionSpec sp = fx.spec(s);
    sp.policy = policy;
    return sp;
  };

  MonitorEngine eng;
  for (std::size_t s = 0; s < fx.sessions(); ++s) {
    eng.add_session(weighted_spec(s));
  }
  replay(fx, [&](std::size_t s, const std::string& ch, const SignalView& v) {
    eng.feed(s, ch, v);
    eng.poll();
  });
  const std::vector<engine::SessionSnapshot> baseline = eng.snapshots();
  EXPECT_EQ(baseline[0].policy, "weighted");
  EXPECT_FALSE(baseline[0].intrusion);
  EXPECT_TRUE(baseline[1].intrusion);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedFleetOptions opts;
    opts.shards = shards;
    ShardedFleet fleet(opts);
    for (std::size_t s = 0; s < fx.sessions(); ++s) {
      fleet.add_session(weighted_spec(s));
    }
    replay(fx, [&](std::size_t s, const std::string& ch, const SignalView& v) {
      ASSERT_EQ(fleet.feed(s, ch, v).status, FeedStatus::kOk);
    });
    fleet.flush();
    const std::vector<engine::SessionSnapshot> got = fleet.snapshots();
    ASSERT_EQ(got.size(), baseline.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      EXPECT_EQ(to_verdict(got[s]), to_verdict(baseline[s]));
      EXPECT_EQ(got[s].policy, baseline[s].policy);
      EXPECT_EQ(got[s].fused_score, baseline[s].fused_score);
      for (std::size_t c = 0; c < got[s].channels.size(); ++c) {
        EXPECT_EQ(got[s].channels[c].score, baseline[s].channels[c].score);
        EXPECT_EQ(got[s].channels[c].weight, baseline[s].channels[c].weight);
      }
    }
  }
}
