// Tests for G-code parsing, serialization and the Program model.
#include <gtest/gtest.h>

#include "gcode/parser.hpp"
#include "gcode/program.hpp"

namespace nsync::gcode {
namespace {

TEST(ParseLine, BasicLinearMove) {
  const Command c = parse_line("G1 X10.5 Y-2 E0.4 F1800");
  EXPECT_EQ(c.type, CommandType::kLinearMove);
  ASSERT_TRUE(c.x && c.y && c.e && c.f);
  EXPECT_DOUBLE_EQ(*c.x, 10.5);
  EXPECT_DOUBLE_EQ(*c.y, -2.0);
  EXPECT_DOUBLE_EQ(*c.e, 0.4);
  EXPECT_DOUBLE_EQ(*c.f, 1800.0);
  EXPECT_FALSE(c.z);
  EXPECT_TRUE(c.is_move());
  EXPECT_TRUE(c.has_extrusion());
}

TEST(ParseLine, RapidMoveAndHome) {
  EXPECT_EQ(parse_line("G0 Z5").type, CommandType::kRapidMove);
  EXPECT_EQ(parse_line("G28").type, CommandType::kHome);
  EXPECT_EQ(parse_line("G28 X Y").type, CommandType::kHome);  // bare axes ok
}

TEST(ParseLine, ThermalAndFanCodes) {
  const Command hot = parse_line("M104 S205");
  EXPECT_EQ(hot.type, CommandType::kSetHotendTemp);
  EXPECT_DOUBLE_EQ(*hot.s, 205.0);
  EXPECT_EQ(parse_line("M109 S205").type, CommandType::kWaitHotendTemp);
  EXPECT_EQ(parse_line("M140 S60").type, CommandType::kSetBedTemp);
  EXPECT_EQ(parse_line("M190 S60").type, CommandType::kWaitBedTemp);
  const Command fan = parse_line("M106 S128");
  EXPECT_EQ(fan.type, CommandType::kFanOn);
  EXPECT_DOUBLE_EQ(*fan.s, 128.0);
  EXPECT_EQ(parse_line("M107").type, CommandType::kFanOff);
}

TEST(ParseLine, DwellWithMillisecondsAndSeconds) {
  const Command p = parse_line("G4 P500");
  EXPECT_EQ(p.type, CommandType::kDwell);
  EXPECT_DOUBLE_EQ(*p.p, 500.0);
  const Command s = parse_line("G4 S2");
  EXPECT_DOUBLE_EQ(*s.s, 2.0);
}

TEST(ParseLine, CommentsAndBlankLines) {
  const Command pure = parse_line("; hello world");
  EXPECT_EQ(pure.type, CommandType::kComment);
  EXPECT_EQ(pure.text, "hello world");

  const Command trailing = parse_line("G1 X1 ; move right");
  EXPECT_EQ(trailing.type, CommandType::kLinearMove);
  EXPECT_DOUBLE_EQ(*trailing.x, 1.0);

  const Command blank = parse_line("   ");
  EXPECT_EQ(blank.type, CommandType::kComment);
  EXPECT_TRUE(blank.text.empty());
}

TEST(ParseLine, ImplicitG1FromCoordinateWords) {
  const Command c = parse_line("X5 Y6");
  EXPECT_EQ(c.type, CommandType::kLinearMove);
  EXPECT_DOUBLE_EQ(*c.x, 5.0);
}

TEST(ParseLine, UnknownCodesPreserved) {
  const Command c = parse_line("M82");
  EXPECT_EQ(c.type, CommandType::kOther);
  EXPECT_EQ(c.text, "M82");
}

TEST(ParseLine, MalformedNumbersThrow) {
  EXPECT_THROW(parse_line("G1 X1.2.3"), std::invalid_argument);
  EXPECT_THROW(parse_line("G1 Xabc"), std::invalid_argument);
}

TEST(ParseProgram, MultilineWithLineNumbers) {
  const Program p = parse_program("G28\nG1 X1 Y1 F1200\n; layer done\r\nM107");
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0].type, CommandType::kHome);
  EXPECT_EQ(p[1].line, 2u);
  EXPECT_EQ(p[2].type, CommandType::kComment);
  EXPECT_EQ(p[3].type, CommandType::kFanOff);
}

TEST(ParseProgram, SkipsEmptyLines) {
  const Program p = parse_program("\n\nG28\n\n\nG1 X1\n");
  EXPECT_EQ(p.size(), 2u);
}

TEST(Serialization, RoundTripPreservesSemantics) {
  const char* source =
      "G28\n"
      "G92 E0.00000\n"
      "G1 X10.00000 Y20.00000 E1.50000 F1800.00000\n"
      "G4 P250.00000\n"
      "M106 S255.00000\n"
      ";LAYER:3\n";
  const Program p1 = parse_program(source);
  const std::string text = to_gcode(p1);
  const Program p2 = parse_program(text);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].type, p2[i].type) << "command " << i;
    EXPECT_EQ(p1[i].x.has_value(), p2[i].x.has_value());
    if (p1[i].x) EXPECT_NEAR(*p1[i].x, *p2[i].x, 1e-5);
    if (p1[i].e) EXPECT_NEAR(*p1[i].e, *p2[i].e, 1e-5);
    if (p1[i].f) EXPECT_NEAR(*p1[i].f, *p2[i].f, 1e-5);
  }
}

TEST(ProgramStats, CountsMovesAndExtrusion) {
  const Program p = parse_program(
      "G28\n"
      "G1 X10 Y0 F1200\n"      // travel 10 mm
      "G1 X10 Y10 E1.0\n"      // extrude 10 mm
      "G1 X0 Y10 E2.0\n");     // extrude 10 mm
  const ProgramStats st = p.stats();
  EXPECT_EQ(st.moves, 3u);
  EXPECT_EQ(st.extruding_moves, 2u);
  EXPECT_NEAR(st.total_xy_travel, 30.0, 1e-9);
  EXPECT_NEAR(st.total_extrusion, 2.0, 1e-9);
  EXPECT_NEAR(st.max_x, 10.0, 1e-9);
}

TEST(ProgramStats, SetPositionDoesNotTravel) {
  const Program p = parse_program("G92 X100 Y100\nG1 X101 Y100\n");
  const ProgramStats st = p.stats();
  EXPECT_NEAR(st.total_xy_travel, 1.0, 1e-9);
}

TEST(LayerStarts, PrefersLayerComments) {
  const Program p = parse_program(
      ";LAYER:0\nG1 Z0.2\nG1 X5 E1\n;LAYER:1\nG1 Z0.4\nG1 X0 E2\n");
  const auto starts = p.layer_starts();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 3u);
}

TEST(LayerStarts, FallsBackToZChanges) {
  const Program p = parse_program(
      "G1 Z0.2\nG1 X5 E1\nG1 Z0.4\nG1 X0 E2\nG1 Z0.4\n");
  const auto starts = p.layer_starts();
  ASSERT_EQ(starts.size(), 2u);  // the repeated Z0.4 is not a new layer
}

}  // namespace
}  // namespace nsync::gcode
