// Tests for signal-based layer-change detection and the extended attacks.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/layer_detect.hpp"
#include "eval/dataset.hpp"
#include "gcode/attacks.hpp"
#include "gcode/slicer.hpp"
#include "signal/rng.hpp"

namespace nsync {
namespace {

using signal::Rng;
using signal::Signal;

// ------------------------------------------------------ synthetic bursts --

Signal synthetic_acc(const std::vector<double>& layer_times, double fs,
                     double duration, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(static_cast<std::size_t>(duration * fs), 6, fs);
  for (std::size_t n = 0; n < s.frames(); ++n) {
    for (std::size_t c = 0; c < 6; ++c) {
      s(n, c) = rng.normal(0.0, 1.0);
    }
  }
  // Z bursts at layer changes (80 ms of strong Z acceleration).
  for (double t : layer_times) {
    const auto start = static_cast<std::size_t>(t * fs);
    const auto len = static_cast<std::size_t>(0.08 * fs);
    for (std::size_t i = start; i < std::min(start + len, s.frames()); ++i) {
      s(i, 2) += rng.normal(0.0, 40.0);
    }
  }
  return s;
}

TEST(LayerDetect, FindsSyntheticBursts) {
  const std::vector<double> truth = {1.0, 6.0, 11.0, 16.0};
  const Signal acc = synthetic_acc(truth, 400.0, 20.0, 1);
  const auto detected = baselines::detect_layer_changes(acc);
  ASSERT_EQ(detected.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(detected[i], truth[i], 0.1) << "layer " << i;
  }
  EXPECT_LT(baselines::layer_timing_error(detected, truth), 0.1);
}

TEST(LayerDetect, DebounceMergesCloseBursts) {
  // Two bursts 0.5 s apart with a 2 s debounce collapse into one event.
  const Signal acc = synthetic_acc({5.0, 5.5}, 400.0, 12.0, 2);
  const auto detected = baselines::detect_layer_changes(acc);
  EXPECT_EQ(detected.size(), 1u);
}

TEST(LayerDetect, NoBurstsNoDetections) {
  const Signal acc = synthetic_acc({}, 400.0, 10.0, 3);
  EXPECT_TRUE(baselines::detect_layer_changes(acc).empty());
}

TEST(LayerDetect, BadChannelThrows) {
  const Signal acc = synthetic_acc({}, 400.0, 1.0, 4);
  baselines::LayerDetectConfig cfg;
  cfg.z_channel = 9;
  EXPECT_THROW(baselines::detect_layer_changes(acc, cfg),
               std::invalid_argument);
}

TEST(LayerDetect, TimingErrorGuards) {
  EXPECT_DOUBLE_EQ(baselines::layer_timing_error({}, {}), 0.0);
  EXPECT_TRUE(std::isinf(
      baselines::layer_timing_error({1.0}, {1.0, 2.0, 3.0, 4.0})));
  EXPECT_NEAR(baselines::layer_timing_error({1.1, 2.2}, {1.0, 2.0}), 0.15,
              1e-9);
}

// ----------------------------------------------- end-to-end on simulator --

TEST(LayerDetect, RecoversSimulatorLayersFromAcc) {
  eval::EvalScale scale = eval::EvalScale::tiny();
  scale.train_count = 0;
  scale.benign_test_count = 1;
  scale.malicious_per_attack = 0;
  const eval::Dataset ds(eval::PrinterKind::kUm3, scale,
                         {sensors::SideChannel::kAcc});
  const auto& process = ds.test().front();
  const auto& acc = process.raw.at(sensors::SideChannel::kAcc);

  baselines::LayerDetectConfig cfg;
  cfg.min_layer_seconds = 3.0;
  const auto detected = baselines::detect_layer_changes(acc, cfg);
  // Layer 0's change happens during the trimmed pre-roll, so `detected`
  // may miss it; all later layers must be found within ~0.3 s.
  ASSERT_GE(detected.size(), process.layer_times.size() - 1);
  const double err =
      baselines::layer_timing_error(detected, process.layer_times, 1);
  EXPECT_LT(err, 0.4);
}

// ------------------------------------------------------ extended attacks --

TEST(ExtendedAttacks, TemperatureScalesThermalCommands) {
  gcode::SlicerConfig cfg;
  cfg.object_height = 0.4;
  const gcode::Program benign = gcode::slice(gcode::circle_outline(6.0), cfg);
  const gcode::Program cold = gcode::attack_temperature(benign, 0.9);
  ASSERT_EQ(cold.size(), benign.size());
  bool saw_temp = false;
  for (std::size_t i = 0; i < benign.size(); ++i) {
    if (benign[i].type == gcode::CommandType::kWaitHotendTemp) {
      saw_temp = true;
      EXPECT_NEAR(*cold[i].s, *benign[i].s * 0.9, 1e-9);
    }
    if (benign[i].is_move()) {
      EXPECT_EQ(benign[i].x, cold[i].x);  // toolpath untouched
    }
  }
  EXPECT_TRUE(saw_temp);
  EXPECT_THROW(gcode::attack_temperature(benign, 0.0), std::invalid_argument);
}

TEST(ExtendedAttacks, FanOffRemovesCooling) {
  gcode::SlicerConfig cfg;
  cfg.object_height = 0.4;
  const gcode::Program benign = gcode::slice(gcode::circle_outline(6.0), cfg);
  const gcode::Program hot = gcode::attack_fan_off(benign);
  for (const auto& c : hot.commands()) {
    EXPECT_NE(c.type, gcode::CommandType::kFanOn);
  }
  // The benign program did turn the fan on.
  bool benign_has_fan = false;
  for (const auto& c : benign.commands()) {
    benign_has_fan |= c.type == gcode::CommandType::kFanOn;
  }
  EXPECT_TRUE(benign_has_fan);
}

}  // namespace
}  // namespace nsync
