// Tests for the parallel execution runtime: ThreadPool scheduling,
// parallel_for / parallel_transform semantics, exception propagation,
// nesting safety and the NSYNC_THREADS-driven global pool sizing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace nsync::runtime {
namespace {

TEST(Runtime, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Runtime, ParallelForEmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(Runtime, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  const auto main_id = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.parallel_for(0, seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, main_id);
}

TEST(Runtime, ZeroWorkerRequestIsTreatedAsOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
}

TEST(Runtime, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 37) {
                            throw std::runtime_error("body failed");
                          }
                        }),
      std::runtime_error);
}

TEST(Runtime, ExceptionMessageSurvives) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 8, [](std::size_t) {
      throw std::runtime_error("specific message");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "specific message");
  }
}

TEST(Runtime, PoolRemainsUsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   0, 16, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> ok{0};
  pool.parallel_for(0, 16, [&](std::size_t) {
    ok.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ok.load(), 16);
}

TEST(Runtime, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(8 * 8);
  pool.parallel_for(0, 8, [&](std::size_t outer) {
    pool.parallel_for(0, 8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(Runtime, ParallelTransformPreservesIndexOrder) {
  set_worker_count(4);
  const auto out =
      parallel_transform(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
  set_worker_count(0);
}

TEST(Runtime, ParallelTransformBoolUsesUnpackedStorage) {
  set_worker_count(4);
  const auto out =
      parallel_transform(100, [](std::size_t i) { return i % 3 == 0; });
  static_assert(std::is_same_v<decltype(out), const std::vector<char>>,
                "bool-returning fn must map to vector<char>");
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(static_cast<bool>(out[i]), i % 3 == 0);
  }
  set_worker_count(0);
}

TEST(Runtime, SetWorkerCountResizesGlobalPool) {
  set_worker_count(3);
  EXPECT_EQ(worker_count(), 3u);
  set_worker_count(1);
  EXPECT_EQ(worker_count(), 1u);
  set_worker_count(0);  // restore automatic sizing
  EXPECT_EQ(worker_count(), default_worker_count());
}

TEST(Runtime, DefaultWorkerCountHonorsEnvVar) {
  const char* old = std::getenv("NSYNC_THREADS");
  const std::string saved = old ? old : "";

  ASSERT_EQ(setenv("NSYNC_THREADS", "5", 1), 0);
  EXPECT_EQ(default_worker_count(), 5u);
  ASSERT_EQ(setenv("NSYNC_THREADS", "9999", 1), 0);
  EXPECT_EQ(default_worker_count(), 256u);  // clamped
  ASSERT_EQ(setenv("NSYNC_THREADS", "garbage", 1), 0);
  EXPECT_GE(default_worker_count(), 1u);  // falls back to hardware

  if (old) {
    setenv("NSYNC_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("NSYNC_THREADS");
  }
}

TEST(Runtime, HeavyConcurrentSubmitAndDrain) {
  ThreadPool pool(8);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 10000, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10000u * 9999u / 2);
}

}  // namespace
}  // namespace nsync::runtime
