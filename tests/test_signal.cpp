// Unit tests for the Signal / SignalView containers.
#include <gtest/gtest.h>

#include <stdexcept>

#include "signal/signal.hpp"

namespace nsync::signal {
namespace {

TEST(Signal, ZeroFilledConstruction) {
  Signal s(10, 3, 100.0);
  EXPECT_EQ(s.frames(), 10u);
  EXPECT_EQ(s.channels(), 3u);
  EXPECT_DOUBLE_EQ(s.sample_rate(), 100.0);
  EXPECT_DOUBLE_EQ(s.duration(), 0.1);
  for (std::size_t n = 0; n < s.frames(); ++n) {
    for (std::size_t c = 0; c < s.channels(); ++c) {
      EXPECT_DOUBLE_EQ(s(n, c), 0.0);
    }
  }
}

TEST(Signal, ConstructionRejectsBadArguments) {
  EXPECT_THROW(Signal(10, 0, 100.0), std::invalid_argument);
  EXPECT_THROW(Signal(10, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(Signal(10, 2, -5.0), std::invalid_argument);
}

TEST(Signal, FromSamplesBuildsSingleChannel) {
  Signal s = Signal::from_samples({1.0, 2.0, 3.0}, 10.0);
  EXPECT_EQ(s.frames(), 3u);
  EXPECT_EQ(s.channels(), 1u);
  EXPECT_DOUBLE_EQ(s(1, 0), 2.0);
}

TEST(Signal, FromChannelsInterleavesRowMajor) {
  Signal s = Signal::from_channels({{1.0, 2.0}, {3.0, 4.0}}, 5.0);
  EXPECT_EQ(s.frames(), 2u);
  EXPECT_EQ(s.channels(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 4.0);
}

TEST(Signal, FromChannelsRejectsRaggedInput) {
  EXPECT_THROW(Signal::from_channels({{1.0, 2.0}, {3.0}}, 5.0),
               std::invalid_argument);
  EXPECT_THROW(Signal::from_channels({}, 5.0), std::invalid_argument);
}

TEST(Signal, AtBoundsChecking) {
  Signal s(4, 2, 10.0);
  EXPECT_NO_THROW(static_cast<void>(s.at(3, 1)));
  EXPECT_THROW(static_cast<void>(s.at(4, 0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(s.at(0, 2)), std::out_of_range);
  const Signal& cs = s;
  EXPECT_THROW(static_cast<void>(cs.at(4, 0)), std::out_of_range);
}

TEST(Signal, AppendFrameGrowsSignal) {
  Signal s = Signal::empty(2, 100.0);
  EXPECT_TRUE(s.empty());
  const double row1[] = {1.0, 2.0};
  const double row2[] = {3.0, 4.0};
  s.append_frame(row1);
  s.append_frame(row2);
  EXPECT_EQ(s.frames(), 2u);
  EXPECT_DOUBLE_EQ(s(1, 1), 4.0);
}

TEST(Signal, AppendFrameRejectsChannelMismatch) {
  Signal s(1, 2, 100.0);
  const double row[] = {1.0, 2.0, 3.0};
  EXPECT_THROW(s.append_frame(row), std::invalid_argument);
}

TEST(Signal, AppendSignalConcatenates) {
  Signal a = Signal::from_channels({{1.0, 2.0}}, 10.0);
  Signal b = Signal::from_channels({{3.0}}, 10.0);
  a.append(b.view());
  EXPECT_EQ(a.frames(), 3u);
  EXPECT_DOUBLE_EQ(a(2, 0), 3.0);
  Signal c(1, 2, 10.0);
  EXPECT_THROW(a.append(c.view()), std::invalid_argument);
}

TEST(Signal, FrameSpanIsMutable) {
  Signal s(3, 2, 10.0);
  auto f = s.frame(1);
  f[0] = 7.0;
  f[1] = 8.0;
  EXPECT_DOUBLE_EQ(s(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 8.0);
  EXPECT_THROW(static_cast<void>(s.frame(3)), std::out_of_range);
}

TEST(SignalView, SliceIsZeroCopy) {
  Signal s = Signal::from_samples({0.0, 1.0, 2.0, 3.0, 4.0}, 10.0);
  SignalView v = s.slice(1, 4);
  EXPECT_EQ(v.frames(), 3u);
  EXPECT_DOUBLE_EQ(v(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(v(2, 0), 3.0);
  EXPECT_EQ(v.data(), s.data() + 1);
}

TEST(SignalView, SliceRejectsBadRanges) {
  Signal s(5, 1, 10.0);
  EXPECT_THROW(static_cast<void>(s.slice(3, 2)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(s.slice(0, 6)), std::out_of_range);
  EXPECT_NO_THROW(static_cast<void>(s.slice(5, 5)));  // empty slice at the end is legal
}

TEST(SignalView, ClampedSliceNeverThrows) {
  Signal s = Signal::from_samples({0.0, 1.0, 2.0, 3.0}, 10.0);
  SignalView v = s.view().clamped_slice(-5, 2);
  EXPECT_EQ(v.frames(), 2u);
  EXPECT_DOUBLE_EQ(v(0, 0), 0.0);
  v = s.view().clamped_slice(2, 99);
  EXPECT_EQ(v.frames(), 2u);
  EXPECT_DOUBLE_EQ(v(0, 0), 2.0);
  v = s.view().clamped_slice(10, 20);
  EXPECT_TRUE(v.empty());
  v = s.view().clamped_slice(3, 1);  // inverted range -> empty
  EXPECT_TRUE(v.empty());
}

TEST(SignalView, ChannelExtraction) {
  Signal s = Signal::from_channels({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}}, 10.0);
  const auto c1 = s.channel(1);
  ASSERT_EQ(c1.size(), 3u);
  EXPECT_DOUBLE_EQ(c1[0], 4.0);
  EXPECT_DOUBLE_EQ(c1[2], 6.0);
  EXPECT_THROW(static_cast<void>(s.view().channel(2)), std::out_of_range);
}

TEST(SignalView, ToSignalDeepCopies) {
  Signal s = Signal::from_samples({1.0, 2.0, 3.0}, 10.0);
  Signal copy = s.slice(1, 3).to_signal();
  EXPECT_EQ(copy.frames(), 2u);
  copy(0, 0) = 99.0;
  EXPECT_DOUBLE_EQ(s(1, 0), 2.0);  // original untouched
}

TEST(SignalView, ImplicitConversionFromSignal) {
  Signal s(4, 2, 50.0);
  SignalView v = s;
  EXPECT_EQ(v.frames(), 4u);
  EXPECT_EQ(v.channels(), 2u);
  EXPECT_DOUBLE_EQ(v.sample_rate(), 50.0);
}

TEST(SignalView, DurationOfEmptyViewIsZero) {
  SignalView v;
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.duration(), 0.0);
}

class SignalSliceProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SignalSliceProperty, SliceComposesWithIndexing) {
  const std::size_t offset = GetParam();
  Signal s(64, 3, 100.0);
  for (std::size_t n = 0; n < s.frames(); ++n) {
    for (std::size_t c = 0; c < s.channels(); ++c) {
      s(n, c) = static_cast<double>(n * 10 + c);
    }
  }
  const SignalView v = s.slice(offset, 64);
  for (std::size_t n = 0; n < v.frames(); ++n) {
    for (std::size_t c = 0; c < v.channels(); ++c) {
      EXPECT_DOUBLE_EQ(v(n, c), s(n + offset, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, SignalSliceProperty,
                         ::testing::Values(0, 1, 7, 31, 63, 64));

}  // namespace
}  // namespace nsync::signal
