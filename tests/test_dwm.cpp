// Tests for Dynamic Window Matching (Section VI-B), the paper's core
// contribution: parameter validation, tracking of synthetic time warps,
// streaming/batch equivalence, the inertial tracker and reference
// exhaustion.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dwm.hpp"
#include "signal/rng.hpp"

namespace nsync::core {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

/// A feature-rich reference signal: smoothed noise (band-limited enough
/// that TDE peaks are unambiguous).
Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

/// Builds an observed signal from the reference with a piecewise-constant
/// time shift: a[n] = b[n + shift(n)].  `breaks` maps start-index -> shift.
Signal shifted_copy(const Signal& b,
                    const std::vector<std::pair<std::size_t, int>>& breaks,
                    std::size_t frames) {
  Signal a(frames, b.channels(), b.sample_rate());
  for (std::size_t n = 0; n < frames; ++n) {
    int shift = 0;
    for (const auto& [at, s] : breaks) {
      if (n >= at) shift = s;
    }
    const auto src = static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(n) + shift, 0,
                                   static_cast<std::ptrdiff_t>(b.frames() - 1)));
    for (std::size_t c = 0; c < b.channels(); ++c) {
      a(n, c) = b(src, c);
    }
  }
  return a;
}

DwmParams test_params() {
  DwmParams p;
  p.n_win = 64;
  p.n_hop = 32;
  p.n_ext = 24;
  p.n_sigma = 12.0;
  p.eta = 0.2;
  return p;
}

TEST(DwmParams, ValidationCatchesEveryField) {
  DwmParams p = test_params();
  EXPECT_NO_THROW(p.validate());
  p.n_win = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params();
  p.n_hop = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params();
  p.n_hop = p.n_win + 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params();
  p.n_ext = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params();
  p.n_sigma = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params();
  p.eta = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.eta = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(DwmParams, FromSecondsConvertsTableIV) {
  const DwmParams p = DwmParams::from_seconds(4.0, 2.0, 2.0, 1.0, 0.1, 100.0);
  EXPECT_EQ(p.n_win, 400u);
  EXPECT_EQ(p.n_hop, 200u);
  EXPECT_EQ(p.n_ext, 200u);
  EXPECT_NEAR(p.n_sigma, 100.0, 1e-9);
  EXPECT_THROW(DwmParams::from_seconds(4.0, 2.0, 2.0, 1.0, 0.1, 0.0),
               std::invalid_argument);
}

TEST(Dwm, IdenticalSignalsYieldZeroDisplacement) {
  const Signal b = make_reference(1200, 1);
  const DwmResult r = DwmSynchronizer::align(b, b, test_params());
  ASSERT_GT(r.h_disp.size(), 10u);
  for (double h : r.h_disp) {
    EXPECT_DOUBLE_EQ(h, 0.0);
  }
}

TEST(Dwm, RecoversConstantShift) {
  const Signal b = make_reference(1200, 2);
  const Signal a = shifted_copy(b, {{0, 10}}, 1000);
  const DwmResult r = DwmSynchronizer::align(a, b, test_params());
  ASSERT_GT(r.h_disp.size(), 5u);
  // After the tracker settles, h_disp must equal the true shift.
  for (std::size_t i = 2; i < r.h_disp.size(); ++i) {
    EXPECT_NEAR(r.h_disp[i], 10.0, 1.0) << "window " << i;
  }
}

TEST(Dwm, TracksStepChangeInShift) {
  const Signal b = make_reference(2400, 3);
  // Shift jumps from 0 to 15 at sample 1000 (within n_ext = 24).
  const Signal a = shifted_copy(b, {{0, 0}, {1000, 15}}, 2000);
  const DwmResult r = DwmSynchronizer::align(a, b, test_params());
  ASSERT_GT(r.h_disp.size(), 40u);
  // Early windows ~0, late windows ~15.
  EXPECT_NEAR(r.h_disp[2], 0.0, 1.0);
  for (std::size_t i = r.h_disp.size() - 5; i < r.h_disp.size(); ++i) {
    EXPECT_NEAR(r.h_disp[i], 15.0, 2.0) << "window " << i;
  }
}

TEST(Dwm, TracksGradualDriftBeyondExt) {
  // Total drift of 60 samples >> n_ext = 24; only the inertial tracker
  // makes this reachable (Section VI-B, "extending the range of h_disp").
  const Signal b = make_reference(3600, 4);
  std::vector<std::pair<std::size_t, int>> breaks;
  for (int k = 0; k < 12; ++k) {
    breaks.push_back({200 + 200 * static_cast<std::size_t>(k), 5 * (k + 1)});
  }
  const Signal a = shifted_copy(b, breaks, 3000);
  const DwmResult r = DwmSynchronizer::align(a, b, test_params());
  ASSERT_GT(r.h_disp.size(), 30u);
  for (std::size_t i = r.h_disp.size() - 3; i < r.h_disp.size(); ++i) {
    EXPECT_NEAR(r.h_disp[i], 60.0, 3.0) << "window " << i;
  }
}

TEST(Dwm, HDispLowFollowsEq12) {
  const Signal b = make_reference(1600, 5);
  const Signal a = shifted_copy(b, {{0, 8}}, 1400);
  const DwmParams p = test_params();
  const DwmResult r = DwmSynchronizer::align(a, b, p);
  double low_prev = 0.0;
  for (std::size_t i = 0; i < r.h_disp.size(); ++i) {
    const double expected =
        std::round(p.eta * (r.h_disp[i] - low_prev)) + low_prev;
    EXPECT_NEAR(r.h_disp_low[i], expected, 1e-9) << "window " << i;
    low_prev = r.h_disp_low[i];
  }
}

TEST(Dwm, HDistIsAbsoluteValue) {
  const Signal b = make_reference(1600, 6);
  const Signal a = shifted_copy(b, {{0, -12}}, 1400);
  const DwmResult r = DwmSynchronizer::align(a, b, test_params());
  for (std::size_t i = 0; i < r.h_disp.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.h_dist[i], std::abs(r.h_disp[i]));
  }
  // Negative shifts are representable.
  EXPECT_NEAR(r.h_disp.back(), -12.0, 2.0);
}

TEST(Dwm, StreamingMatchesBatch) {
  const Signal b = make_reference(1600, 7);
  const Signal a = shifted_copy(b, {{0, 0}, {700, 9}}, 1400);
  const DwmResult batch = DwmSynchronizer::align(a, b, test_params());

  DwmSynchronizer stream(b, test_params());
  // Push in awkward chunk sizes.
  std::size_t pos = 0;
  const std::size_t chunks[] = {1, 13, 64, 200, 7, 500, 615};
  for (std::size_t chunk : chunks) {
    const std::size_t end = std::min(pos + chunk, a.frames());
    stream.push(SignalView(a).slice(pos, end));
    pos = end;
  }
  stream.push(SignalView(a).slice(pos, a.frames()));

  ASSERT_EQ(stream.result().h_disp.size(), batch.h_disp.size());
  for (std::size_t i = 0; i < batch.h_disp.size(); ++i) {
    EXPECT_DOUBLE_EQ(stream.result().h_disp[i], batch.h_disp[i])
        << "window " << i;
  }
}

TEST(Dwm, StreamingReturnsNewWindowCounts) {
  const Signal b = make_reference(800, 8);
  DwmSynchronizer stream(b, test_params());
  // 63 frames: no window yet (needs 64).
  Signal part(63, 2, 100.0);
  EXPECT_EQ(stream.push(part), 0u);
  // One more frame completes window 0.
  Signal one(1, 2, 100.0);
  EXPECT_EQ(stream.push(one), 1u);
  EXPECT_EQ(stream.windows(), 1u);
}

TEST(Dwm, ReferenceExhaustionStopsProcessing) {
  const Signal b = make_reference(300, 9);
  const Signal a = make_reference(900, 10);  // much longer than reference
  DwmSynchronizer stream(b, test_params());
  stream.push(a);
  EXPECT_TRUE(stream.reference_exhausted());
  // Windows stop well before the observed signal ends.
  EXPECT_LT(stream.windows() * test_params().n_hop + test_params().n_win,
            a.frames());
}

TEST(Dwm, ChannelMismatchThrows) {
  const Signal b = make_reference(400, 11);
  DwmSynchronizer stream(b, test_params());
  Signal wrong(10, 5, 100.0);
  EXPECT_THROW(stream.push(wrong), std::invalid_argument);
}

TEST(Dwm, ShortReferenceThrows) {
  Signal b(10, 1, 100.0);
  EXPECT_THROW(DwmSynchronizer(b, test_params()), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Ring-buffered observed stream: results must match the append-everything
// semantics exactly while memory stays independent of stream length.
// --------------------------------------------------------------------------

TEST(DwmRing, BoundedMemoryOverLongStream) {
  const DwmParams p = test_params();
  const Signal b = make_reference(16000, 13);
  const Signal a = shifted_copy(b, {{0, 4}}, 100 * p.n_win);  // 6400 frames
  const DwmResult batch = DwmSynchronizer::align(a, b, p);

  DwmSynchronizer stream(b, p);
  stream.reserve_windows(batch.h_disp.size());
  const std::size_t warm_capacity = stream.observed().capacity_frames();
  std::size_t peak_retained = 0;
  for (std::size_t pos = 0; pos < a.frames(); pos += p.n_hop) {
    const std::size_t end = std::min(pos + p.n_hop, a.frames());
    stream.push(SignalView(a).slice(pos, end));
    peak_retained = std::max(peak_retained,
                             stream.observed().retained_frames());
  }
  // Retention is bounded by a small multiple of the window geometry, never
  // by the 100-window stream length, and reserve_windows sized the buffer
  // so the stream never had to grow it.
  EXPECT_LE(peak_retained, 2 * (p.n_win + p.n_hop));
  EXPECT_EQ(stream.observed().capacity_frames(), warm_capacity);

  // Dropping frames must not have changed a single output bit.
  ASSERT_EQ(stream.result().h_disp.size(), batch.h_disp.size());
  for (std::size_t i = 0; i < batch.h_disp.size(); ++i) {
    EXPECT_DOUBLE_EQ(stream.result().h_disp[i], batch.h_disp[i])
        << "window " << i;
    EXPECT_DOUBLE_EQ(stream.result().h_disp_low[i], batch.h_disp_low[i])
        << "window " << i;
  }
}

TEST(DwmRing, CompletedWindowsStayReadableUntilNextPush) {
  // RealtimeMonitor reads observed frames of every window the push just
  // completed; the ring must keep them until the next push.
  const DwmParams p = test_params();
  const Signal b = make_reference(4000, 14);
  const Signal a = shifted_copy(b, {{0, 6}}, 3200);
  DwmSynchronizer stream(b, p);
  std::size_t before = 0;
  for (std::size_t pos = 0; pos < a.frames(); pos += 96) {
    const std::size_t end = std::min(pos + 96, a.frames());
    stream.push(SignalView(a).slice(pos, end));
    for (std::size_t i = before; i < stream.windows(); ++i) {
      const std::size_t a_start = i * p.n_hop;
      const SignalView win =
          stream.observed().view(a_start, a_start + p.n_win);
      EXPECT_EQ(win.frames(), p.n_win);
      EXPECT_DOUBLE_EQ(win(0, 0), a(a_start, 0)) << "window " << i;
    }
    before = stream.windows();
  }
  // Frames behind the processing frontier are genuinely gone.
  if (stream.windows() > 2) {
    EXPECT_THROW(stream.observed().view(0, p.n_win), std::out_of_range);
  }
}

TEST(DwmRing, ExhaustedReferenceRetainsNothing) {
  const DwmParams p = test_params();
  const Signal b = make_reference(300, 15);
  const Signal a = make_reference(900, 16);
  DwmSynchronizer stream(b, p);
  stream.push(a);
  ASSERT_TRUE(stream.reference_exhausted());
  const std::size_t windows_at_exhaustion = stream.windows();
  const auto result_at_exhaustion = stream.result();

  // Further pushes on a dead synchronizer keep only the just-pushed chunk
  // (dropped again on the next push) and change no results.
  const Signal more = make_reference(500, 17);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(stream.push(more), 0u);
    EXPECT_EQ(stream.observed().retained_frames(), more.frames());
    EXPECT_EQ(stream.windows(), windows_at_exhaustion);
  }
  ASSERT_EQ(stream.result().h_disp.size(),
            result_at_exhaustion.h_disp.size());
  for (std::size_t i = 0; i < result_at_exhaustion.h_disp.size(); ++i) {
    EXPECT_DOUBLE_EQ(stream.result().h_disp[i],
                     result_at_exhaustion.h_disp[i]);
  }
}

class DwmEtaProperty : public ::testing::TestWithParam<double> {};

TEST_P(DwmEtaProperty, ConvergesForReasonableEta) {
  const double eta = GetParam();
  const Signal b = make_reference(2000, 12);
  const Signal a = shifted_copy(b, {{0, 14}}, 1800);
  DwmParams p = test_params();
  p.eta = eta;
  const DwmResult r = DwmSynchronizer::align(a, b, p);
  ASSERT_GT(r.h_disp.size(), 10u);
  EXPECT_NEAR(r.h_disp.back(), 14.0, 2.0) << "eta=" << eta;
}

INSTANTIATE_TEST_SUITE_P(Etas, DwmEtaProperty,
                         ::testing::Values(0.05, 0.1, 0.3, 0.6, 1.0));

}  // namespace
}  // namespace nsync::core
