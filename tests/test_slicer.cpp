// Tests for the slicer-lite.
#include <gtest/gtest.h>

#include <cmath>

#include "gcode/slicer.hpp"

namespace nsync::gcode {
namespace {

SlicerConfig small_config() {
  SlicerConfig cfg;
  cfg.object_height = 1.0;
  cfg.layer_height = 0.2;
  cfg.bed_center_x = 50.0;
  cfg.bed_center_y = 50.0;
  return cfg;
}

TEST(Slicer, LayerCountMatchesHeights) {
  const Program p = slice(circle_outline(8.0), small_config());
  EXPECT_EQ(p.layer_starts().size(), 5u);  // 1.0 / 0.2

  SlicerConfig thick = small_config();
  thick.layer_height = 0.3;
  const Program p2 = slice(circle_outline(8.0), thick);
  EXPECT_EQ(p2.layer_starts().size(), 3u);  // round(1.0 / 0.3)
}

TEST(Slicer, ExtrusionIsMonotonicallyNondecreasing) {
  const Program p = slice(gear_outline(10, 6.0, 8.0), small_config());
  double e = 0.0;
  for (const auto& c : p.commands()) {
    if (c.is_move() && c.e) {
      EXPECT_GE(*c.e, e - 1e-12);
      e = *c.e;
    }
  }
  EXPECT_GT(e, 0.0);
}

TEST(Slicer, PartStaysAtBedCenter) {
  const Program p = slice(circle_outline(8.0), small_config());
  const ProgramStats st = p.stats();
  // Extrusion happens around (50, 50); bounding box includes home at 0.
  EXPECT_NEAR((st.min_x + st.max_x) / 2.0, 25.0, 5.0);  // skewed by home
  double min_x = 1e9, max_x = -1e9;
  double x = 0.0, e = 0.0;
  for (const auto& c : p.commands()) {
    if (!c.is_move()) continue;
    if (c.x) x = *c.x;
    const double ne = c.e.value_or(e);
    if (ne > e) {
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
    }
    e = ne;
  }
  EXPECT_NEAR((min_x + max_x) / 2.0, 50.0, 0.5);
  EXPECT_NEAR(max_x - min_x, 16.0, 0.5);  // the 8 mm-radius circle
}

TEST(Slicer, ScaleShrinksEverything) {
  SlicerConfig cfg = small_config();
  const Program base = slice(circle_outline(8.0), cfg);
  cfg.scale = 0.5;
  const Program scaled = slice(circle_outline(8.0), cfg);
  const ProgramStats a = base.stats();
  const ProgramStats b = scaled.stats();
  EXPECT_LT(b.total_extrusion, a.total_extrusion * 0.5);
  EXPECT_LE(b.max_z, a.max_z * 0.65);  // 0.5 mm at 0.2 layers -> 3 layers
}

TEST(Slicer, SpeedFactorScalesFeedrates) {
  SlicerConfig cfg = small_config();
  const Program base = slice(circle_outline(8.0), cfg);
  cfg.speed_factor = 0.5;
  const Program slow = slice(circle_outline(8.0), cfg);
  ASSERT_EQ(base.size(), slow.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto& cb = base[i];
    const auto& cs = slow[i];
    if (cb.type == CommandType::kLinearMove && cb.f && cb.e) {
      EXPECT_NEAR(*cs.f, *cb.f * 0.5, 1e-6) << "command " << i;
    }
  }
}

TEST(Slicer, VolumetricLimitCapsThickLayerSpeed) {
  SlicerConfig cfg = small_config();
  cfg.layer_height = 0.3;
  cfg.infill_speed = 45.0;
  cfg.max_volumetric_rate = 4.0;  // 4 / (0.4 * 0.3) = 33.3 mm/s cap
  const Program p = slice(circle_outline(8.0), cfg);
  double max_extrude_feed = 0.0;
  for (const auto& c : p.commands()) {
    if (c.type == CommandType::kLinearMove && c.f && c.e) {
      max_extrude_feed = std::max(max_extrude_feed, *c.f / 60.0);
    }
  }
  EXPECT_NEAR(max_extrude_feed, 4.0 / (0.4 * 0.3), 0.1);
}

TEST(Slicer, GridInfillDiffersFromLines) {
  SlicerConfig cfg = small_config();
  const Program lines = slice(circle_outline(8.0), cfg);
  cfg.infill = InfillPattern::kGrid;
  const Program grid = slice(circle_outline(8.0), cfg);
  EXPECT_NE(lines.size(), grid.size());
  // Grid deposits a comparable amount of material (doubled spacing per
  // family compensates the two families).
  EXPECT_NEAR(grid.stats().total_extrusion, lines.stats().total_extrusion,
              lines.stats().total_extrusion * 0.35);
}

TEST(Slicer, HeaderEmitsThermalCommands) {
  const Program p = slice(circle_outline(8.0), small_config());
  bool has_home = false, has_hot_wait = false, has_bed_wait = false,
       has_fan = false;
  for (const auto& c : p.commands()) {
    has_home |= c.type == CommandType::kHome;
    has_hot_wait |= c.type == CommandType::kWaitHotendTemp;
    has_bed_wait |= c.type == CommandType::kWaitBedTemp;
    has_fan |= c.type == CommandType::kFanOn;
  }
  EXPECT_TRUE(has_home);
  EXPECT_TRUE(has_hot_wait);
  EXPECT_TRUE(has_bed_wait);
  EXPECT_TRUE(has_fan);
}

TEST(Slicer, NoHeaderOption) {
  SlicerConfig cfg = small_config();
  cfg.emit_header = false;
  const Program p = slice(circle_outline(8.0), cfg);
  for (const auto& c : p.commands()) {
    EXPECT_NE(c.type, CommandType::kHome);
    EXPECT_NE(c.type, CommandType::kWaitHotendTemp);
  }
}

TEST(Slicer, ZeroInfillOnlyPerimeters) {
  SlicerConfig cfg = small_config();
  cfg.infill_density = 0.0;
  const Program p = slice(circle_outline(8.0), cfg);
  EXPECT_GT(p.stats().extruding_moves, 0u);
  // With two perimeter shells of a 48-gon each layer: about 2*48 extruding
  // moves per layer; infill would add many more.
  SlicerConfig with_fill = small_config();
  const Program p2 = slice(circle_outline(8.0), with_fill);
  EXPECT_GT(p2.stats().extruding_moves, p.stats().extruding_moves);
}

TEST(Slicer, RejectsBadConfigs) {
  const Polygon c = circle_outline(8.0);
  SlicerConfig cfg = small_config();
  cfg.layer_height = 0.0;
  EXPECT_THROW(slice(c, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.scale = -1.0;
  EXPECT_THROW(slice(c, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.infill_density = 1.5;
  EXPECT_THROW(slice(c, cfg), std::invalid_argument);
  EXPECT_THROW(slice(Polygon({{0, 0}, {1, 1}}), small_config()),
               std::invalid_argument);
}

TEST(SliceGear, ProducesNamedProgram) {
  SlicerConfig cfg = small_config();
  const Program p = slice_gear(20.0, cfg);
  EXPECT_NE(p.name().find("gear"), std::string::npos);
  EXPECT_GT(p.stats().total_extrusion, 0.0);
  EXPECT_THROW(slice_gear(-3.0, cfg), std::invalid_argument);
}

class LayerHeightSweep : public ::testing::TestWithParam<double> {};

TEST_P(LayerHeightSweep, LayerCountConsistent) {
  SlicerConfig cfg = small_config();
  cfg.layer_height = GetParam();
  const Program p = slice(circle_outline(8.0), cfg);
  const auto expected = static_cast<std::size_t>(
      std::max(1.0, std::round(cfg.object_height / cfg.layer_height)));
  EXPECT_EQ(p.layer_starts().size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Heights, LayerHeightSweep,
                         ::testing::Values(0.1, 0.15, 0.2, 0.25, 0.3, 0.5));

}  // namespace
}  // namespace nsync::gcode
