// Tests for the multi-session MonitorEngine: session lifecycle, feed/poll
// semantics, equivalence with standalone RealtimeMonitors, fused verdicts
// and the bounded-staging backstop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/nsync.hpp"
#include "engine/monitor_engine.hpp"
#include "runtime/thread_pool.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace nsync::engine {
namespace {

using nsync::core::NsyncConfig;
using nsync::core::NsyncIds;
using nsync::core::RealtimeMonitor;
using nsync::core::SyncMethod;
using nsync::core::Thresholds;
using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
  }
  return a;
}

NsyncConfig dwm_config() {
  NsyncConfig cfg;
  cfg.sync = SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;
  cfg.r = 0.3;
  return cfg;
}

class MonitorEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = dwm_config();
    reference_ = make_reference(1500, 77);
    NsyncIds ids(reference_, cfg_);
    std::vector<Signal> train;
    for (std::uint64_t s = 1; s <= 3; ++s) {
      train.push_back(benign_observation(reference_, s));
    }
    ids.fit(train);
    thresholds_ = ids.thresholds();
  }

  SessionSpec make_session(const std::string& name) const {
    SessionSpec spec;
    spec.name = name;
    for (const char* ch : {"ACC", "AUD"}) {
      ChannelSpec c;
      c.name = ch;
      c.reference = reference_;
      c.config = cfg_;
      c.thresholds = thresholds_;
      spec.channels.push_back(std::move(c));
    }
    return spec;
  }

  NsyncConfig cfg_;
  Signal reference_;
  Thresholds thresholds_;
};

TEST_F(MonitorEngineTest, RejectsBadSpecsAndUnknownTargets) {
  MonitorEngine eng;
  EXPECT_THROW(eng.add_session(SessionSpec{}), std::invalid_argument);
  SessionSpec dup = make_session("dup");
  dup.channels.push_back(dup.channels[0]);
  EXPECT_THROW(eng.add_session(std::move(dup)), std::invalid_argument);

  ASSERT_EQ(eng.add_session(make_session("s0")), 0u);
  const Signal obs = benign_observation(reference_, 9);
  EXPECT_THROW(eng.feed(0, "MAG", obs), std::invalid_argument);
  EXPECT_THROW(eng.feed(5, "ACC", obs), std::out_of_range);
  EXPECT_THROW(eng.snapshot(5), std::out_of_range);
}

TEST_F(MonitorEngineTest, ErrorsNameTheOffendingSessionAndChannel) {
  // An operator debugging a fleet config needs the message to say *which*
  // channel of *which* session was wrong, not just "unknown channel".
  MonitorEngine eng;
  eng.add_session(make_session("printer-lab-3"));
  const Signal obs = benign_observation(reference_, 9);
  try {
    eng.feed(0, "MAG", obs);
    FAIL() << "feed with unknown channel did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("MAG"), std::string::npos) << msg;
    EXPECT_NE(msg.find("printer-lab-3"), std::string::npos) << msg;
  }
  try {
    eng.poll_session(7);
    FAIL() << "poll_session with bad id did not throw";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find('7'), std::string::npos) << msg;
    EXPECT_NE(msg.find('1'), std::string::npos) << msg;  // registered count
  }
}

TEST_F(MonitorEngineTest, SessionMatchesStandaloneMonitorsBitwise) {
  // One engine session must be exactly two RealtimeMonitors: same
  // features, same verdicts, for the same chunked feed.
  MonitorEngine eng;
  eng.add_session(make_session("print"));
  const Signal acc = benign_observation(reference_, 50);
  const Signal aud = malicious_observation(reference_, 51);

  RealtimeMonitor ref_acc(reference_, cfg_, thresholds_);
  RealtimeMonitor ref_aud(reference_, cfg_, thresholds_);
  constexpr std::size_t kChunk = 100;
  for (std::size_t off = 0; off < std::max(acc.frames(), aud.frames());
       off += kChunk) {
    if (off < acc.frames()) {
      const std::size_t hi = std::min(off + kChunk, acc.frames());
      eng.feed(0, "ACC", SignalView(acc).slice(off, hi));
      ref_acc.push(SignalView(acc).slice(off, hi));
    }
    if (off < aud.frames()) {
      const std::size_t hi = std::min(off + kChunk, aud.frames());
      eng.feed(0, "AUD", SignalView(aud).slice(off, hi));
      ref_aud.push(SignalView(aud).slice(off, hi));
    }
    eng.poll();
  }

  const SessionSnapshot snap = eng.snapshot(0);
  ASSERT_EQ(snap.channels.size(), 2u);
  const ChannelSnapshot& cs_acc = snap.channels[0];
  const ChannelSnapshot& cs_aud = snap.channels[1];
  EXPECT_EQ(cs_acc.name, "ACC");
  EXPECT_EQ(cs_aud.name, "AUD");
  EXPECT_EQ(cs_acc.windows, ref_acc.windows());
  EXPECT_EQ(cs_aud.windows, ref_aud.windows());
  EXPECT_EQ(cs_acc.detection.intrusion, ref_acc.detection().intrusion);
  EXPECT_EQ(cs_aud.detection.intrusion, ref_aud.detection().intrusion);
  EXPECT_EQ(cs_aud.detection.first_alarm_window,
            ref_aud.detection().first_alarm_window);
  EXPECT_EQ(cs_acc.health, ref_acc.health());
  EXPECT_EQ(cs_aud.health, ref_aud.health());

  // kAny fusion: the malicious AUD channel alarms the session, and the
  // session's first_alarm_window is the alarming channel's.
  EXPECT_FALSE(ref_acc.detection().intrusion);
  ASSERT_TRUE(ref_aud.detection().intrusion);
  EXPECT_TRUE(snap.intrusion);
  EXPECT_EQ(snap.first_alarm_window, ref_aud.detection().first_alarm_window);
  EXPECT_EQ(snap.alarming_channels, 1u);
  EXPECT_EQ(snap.online_channels, 2u);
  EXPECT_EQ(snap.frames_fed, acc.frames() + aud.frames());
  EXPECT_EQ(snap.channels[0].pending_frames, 0u);
}

TEST_F(MonitorEngineTest, ManySessionsIndependentAndParallelSafe) {
  // 8 sessions, one malicious, drained by parallel poll(): verdicts must
  // be per-session and identical at any worker count.
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kMalicious = 3;
  MonitorEngine eng;
  std::vector<Signal> streams;
  for (std::size_t s = 0; s < kSessions; ++s) {
    // Widen the thresholds: the 3-run calibration is thin and a couple of
    // the 8 benign seeds graze it, which would mask the property under
    // test (per-session verdict isolation, not threshold sharpness).
    SessionSpec spec = make_session("print-" + std::to_string(s));
    for (ChannelSpec& c : spec.channels) {
      c.thresholds.c_c *= 3.0;
      c.thresholds.h_c *= 3.0;
      c.thresholds.v_c *= 3.0;
    }
    eng.add_session(std::move(spec));
    streams.push_back(s == kMalicious
                          ? malicious_observation(reference_, 200 + s)
                          : benign_observation(reference_, 200 + s));
  }
  constexpr std::size_t kChunk = 257;
  bool more = true;
  for (std::size_t off = 0; more; off += kChunk) {
    more = false;
    for (std::size_t s = 0; s < kSessions; ++s) {
      if (off >= streams[s].frames()) continue;
      const std::size_t hi = std::min(off + kChunk, streams[s].frames());
      const SignalView chunk = SignalView(streams[s]).slice(off, hi);
      eng.feed(s, "ACC", chunk);
      eng.feed(s, "AUD", chunk);
      if (hi < streams[s].frames()) more = true;
    }
    eng.poll();
  }
  for (std::size_t s = 0; s < kSessions; ++s) {
    const SessionSnapshot snap = eng.snapshot(s);
    EXPECT_EQ(snap.intrusion, s == kMalicious) << "session " << s;
    EXPECT_GT(snap.windows, 0u);
    if (s == kMalicious) {
      EXPECT_GE(snap.first_alarm_window, 0);
      EXPECT_EQ(snap.alarming_channels, 2u);
    }
  }
}

TEST_F(MonitorEngineTest, MaxPendingBackstopDrainsInline) {
  MonitorEngineOptions opts;
  opts.max_pending_frames = 256;
  MonitorEngine eng(opts);
  eng.add_session(make_session("bounded"));
  const Signal obs = benign_observation(reference_, 60);
  // Feed a large chunk without ever calling poll(): the backstop must
  // process windows inline and keep staging below the cap.
  std::size_t windows = 0;
  constexpr std::size_t kChunk = 128;
  for (std::size_t off = 0; off < obs.frames(); off += kChunk) {
    const std::size_t hi = std::min(off + kChunk, obs.frames());
    windows += eng.feed(0, "ACC", SignalView(obs).slice(off, hi));
  }
  EXPECT_GT(windows, 0u);
  const SessionSnapshot snap = eng.snapshot(0);
  for (const auto& cs : snap.channels) {
    EXPECT_LT(cs.pending_frames, 2 * opts.max_pending_frames);
  }
}

TEST_F(MonitorEngineTest, AllFusionRulesLatch) {
  for (core::FusionRule rule :
       {core::FusionRule::kAny, core::FusionRule::kMajority,
        core::FusionRule::kAll}) {
    MonitorEngine eng;
    SessionSpec spec = make_session("rules");
    spec.rule = rule;
    eng.add_session(std::move(spec));
    const Signal bad = malicious_observation(reference_, 90);
    eng.feed(0, "ACC", bad);
    eng.feed(0, "AUD", bad);
    eng.poll();
    // Both channels see the same tampered stream, so every rule fires.
    EXPECT_TRUE(eng.snapshot(0).intrusion)
        << core::fusion_rule_name(rule);
  }
}

}  // namespace
}  // namespace nsync::engine
