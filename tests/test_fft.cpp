// Tests for the FFT: agreement with a brute-force DFT, round trips,
// Parseval's identity, real-input symmetry, the valid-mode
// cross-correlation used by the fast TDE path, and the thread-safe plan
// cache (cached vs uncached equivalence, Bluestein plans, concurrency).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "dsp/fft.hpp"
#include "runtime/thread_pool.hpp"
#include "signal/rng.hpp"

namespace nsync::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<Complex> brute_force_dft(std::span<const Complex> x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * kPi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += x[t] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<Complex> random_complex(std::size_t n, std::uint64_t seed) {
  nsync::signal::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(rng.normal(), rng.normal());
  return v;
}

TEST(FftHelpers, PowerOfTwoPredicates) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(1023));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
  EXPECT_EQ(next_power_of_two(1025), 2048u);
}

TEST(FftRadix2, RejectsNonPowerOfTwo) {
  std::vector<Complex> v(6);
  EXPECT_THROW(fft_radix2(v), std::invalid_argument);
}

class FftAgainstDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftAgainstDft, MatchesBruteForce) {
  const std::size_t n = GetParam();
  const auto x = random_complex(n, 1234 + n);
  const auto fast = fft(x);
  const auto slow = brute_force_dft(x);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-8 * static_cast<double>(n))
        << "bin " << k;
    EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-8 * static_cast<double>(n))
        << "bin " << k;
  }
}

// Mix of power-of-two (radix-2 path) and arbitrary sizes (Bluestein path).
INSTANTIATE_TEST_SUITE_P(Sizes, FftAgainstDft,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17,
                                           31, 32, 60, 64, 100, 128, 243));

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  const std::size_t n = GetParam();
  const auto x = random_complex(n, 777 + n);
  const auto back = ifft(fft(x));
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 3, 8, 15, 64, 100, 256));

TEST(Fft, ParsevalIdentity) {
  const auto x = random_complex(128, 5);
  const auto y = fft(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-6 * freq_energy);
}

TEST(Rfft, DetectsToneInCorrectBin) {
  const std::size_t n = 256;
  const double fs = 256.0;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * kPi * 32.0 * static_cast<double>(i) / fs);
  }
  const auto mags = rfft_magnitude(x);
  ASSERT_EQ(mags.size(), n / 2 + 1);
  std::size_t best = 0;
  for (std::size_t k = 1; k < mags.size(); ++k) {
    if (mags[k] > mags[best]) best = k;
  }
  EXPECT_EQ(best, 32u);  // bin = f * n / fs
  EXPECT_NEAR(mags[32], 128.0, 1e-6);  // amplitude n/2 for a unit sine
}

TEST(Rfft, RealInputLength) {
  std::vector<double> x(100, 1.0);
  const auto bins = rfft(x);
  EXPECT_EQ(bins.size(), 51u);
  EXPECT_NEAR(bins[0].real(), 100.0, 1e-9);  // DC = sum
}

// --------------------------------------------------------------------------
// Real-input transforms: the half-size complex trick must agree with the
// full complex FFT on every path (power-of-two, even Bluestein, odd
// fallback) and invert exactly.
// --------------------------------------------------------------------------

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  nsync::signal::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

class RfftAgainstFullFft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RfftAgainstFullFft, HalfSizeTrickMatchesComplexTransform) {
  const std::size_t n = GetParam();
  const auto x = random_real(n, 3000 + n);
  std::vector<Complex> xc(n);
  for (std::size_t i = 0; i < n; ++i) xc[i] = Complex(x[i], 0.0);
  const auto full = fft(xc);
  const auto half = rfft(x);
  ASSERT_EQ(half.size(), n / 2 + 1);
  const double tol = 1e-9 * static_cast<double>(std::max<std::size_t>(n, 8));
  for (std::size_t k = 0; k < half.size(); ++k) {
    EXPECT_NEAR(half[k].real(), full[k].real(), tol) << "bin " << k;
    EXPECT_NEAR(half[k].imag(), full[k].imag(), tol) << "bin " << k;
  }
}

// 2..4096: radix-2 path; 6, 100, 250: even half-size with Bluestein half;
// 1, 15, 101: odd fallback through the complex transform.
INSTANTIATE_TEST_SUITE_P(Sizes, RfftAgainstFullFft,
                         ::testing::Values(1, 2, 4, 6, 15, 64, 100, 101, 250,
                                           256, 4096));

class RfftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RfftRoundTrip, IrfftInvertsRfft) {
  const std::size_t n = GetParam();
  const auto x = random_real(n, 5000 + n);
  const auto back = irfft(rfft(x), n);
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-9) << "sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RfftRoundTrip,
                         ::testing::Values(1, 2, 4, 6, 15, 64, 100, 101, 250,
                                           256, 1024));

TEST(Rfft, IrfftRejectsWrongBinCount) {
  std::vector<Complex> bins(5);
  EXPECT_THROW(irfft(bins, 16), std::invalid_argument);
  EXPECT_EQ(irfft(bins, 0).size(), 0u);
}

TEST(Rfft, PlanCacheCountsRealPlansSeparately) {
  fft_plan_cache_clear();
  const auto x = random_real(64, 21);
  (void)rfft(x);
  const auto after_first = fft_plan_cache_stats();
  EXPECT_EQ(after_first.rfft_plans, 1u);
  EXPECT_EQ(after_first.radix2_plans, 1u);  // the half-size (32) plan
  (void)rfft(x);
  const auto after_second = fft_plan_cache_stats();
  EXPECT_EQ(after_second.rfft_plans, 1u);
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_EQ(after_second.misses, after_first.misses);
}

TEST(CrossCorrelateValid, MatchesBruteForce) {
  nsync::signal::Rng rng(9);
  std::vector<double> x(50), y(13);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  const auto fast = cross_correlate_valid(x, y);
  ASSERT_EQ(fast.size(), x.size() - y.size() + 1);
  for (std::size_t k = 0; k < fast.size(); ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) acc += x[k + i] * y[i];
    EXPECT_NEAR(fast[k], acc, 1e-9);
  }
}

TEST(CrossCorrelateValid, FindsEmbeddedTemplate) {
  nsync::signal::Rng rng(10);
  std::vector<double> y(16);
  for (auto& v : y) v = rng.normal();
  std::vector<double> x(100, 0.0);
  const std::size_t at = 37;
  for (std::size_t i = 0; i < y.size(); ++i) x[at + i] = y[i];
  const auto scores = cross_correlate_valid(x, y);
  std::size_t best = 0;
  for (std::size_t k = 1; k < scores.size(); ++k) {
    if (scores[k] > scores[best]) best = k;
  }
  EXPECT_EQ(best, at);
}

TEST(CrossCorrelateValid, RejectsBadSizes) {
  std::vector<double> x(5), y(9);
  EXPECT_THROW(cross_correlate_valid(x, y), std::invalid_argument);
  EXPECT_THROW(cross_correlate_valid(x, {}), std::invalid_argument);
}

TEST(CrossCorrelateValid, RfftPathMatchesComplexPath) {
  // The production path (real transforms on a workspace) against the
  // pre-rfft full-complex implementation, across padding sizes.
  for (const std::size_t nx : {16u, 50u, 255u, 1000u}) {
    const std::size_t ny = nx / 3 + 1;
    const auto x = random_real(nx, 61 + nx);
    const auto y = random_real(ny, 62 + nx);
    const auto real_path = cross_correlate_valid(x, y);
    const auto complex_path = cross_correlate_valid_complex(x, y);
    ASSERT_EQ(real_path.size(), complex_path.size());
    for (std::size_t k = 0; k < real_path.size(); ++k) {
      EXPECT_NEAR(real_path[k], complex_path[k],
                  1e-9 * static_cast<double>(nx))
          << "nx " << nx << " lag " << k;
    }
  }
}

TEST(CrossCorrelateValid, WorkspaceReuseAcrossShapesIsClean) {
  // A workspace carried across differently-sized calls must not leak
  // state from one call into the next (stale padding is the classic bug).
  CorrelationWorkspace ws;
  for (const std::size_t nx : {200u, 37u, 512u, 64u}) {
    const std::size_t ny = nx / 4 + 2;
    const auto x = random_real(nx, 71 + nx);
    const auto y = random_real(ny, 72 + nx);
    std::vector<double> out(nx - ny + 1);
    cross_correlate_valid_into(x, y, out, ws);
    const auto fresh = cross_correlate_valid(x, y);
    for (std::size_t k = 0; k < out.size(); ++k) {
      EXPECT_DOUBLE_EQ(out[k], fresh[k]) << "nx " << nx << " lag " << k;
    }
  }
}

// --------------------------------------------------------------------------
// Plan cache: cached transforms must agree with the uncached reference
// implementation (the table-lookup twiddles differ from the recurrence
// only by accumulated rounding, so compare with a tight tolerance).
// --------------------------------------------------------------------------

class FftPlanCacheEquivalence : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(FftPlanCacheEquivalence, CachedMatchesUncachedRadix2) {
  const std::size_t n = GetParam();
  const auto x = random_complex(n, 4242 + n);
  for (const bool inverse : {false, true}) {
    auto cached = x;
    auto uncached = x;
    fft_radix2(cached, inverse);
    fft_radix2_uncached(uncached, inverse);
    const double tol = 1e-9 * static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(cached[k].real(), uncached[k].real(), tol)
          << "bin " << k << " inverse=" << inverse;
      EXPECT_NEAR(cached[k].imag(), uncached[k].imag(), tol)
          << "bin " << k << " inverse=" << inverse;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoSizes, FftPlanCacheEquivalence,
                         ::testing::Values(2, 4, 8, 64, 256, 1024, 4096));

// Odd, prime and prime-power sizes all take the Bluestein path, whose
// chirp and kernel now come from the plan cache; they must still agree
// with the brute-force DFT and invert exactly.
class FftPlanCacheBluestein : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftPlanCacheBluestein, CachedBluesteinMatchesBruteForce) {
  const std::size_t n = GetParam();
  const auto x = random_complex(n, 999 + n);
  const auto fast = fft(x);    // first call builds the plan ...
  const auto again = fft(x);   // ... second call must reuse it bit-for-bit
  const auto slow = brute_force_dft(x);
  ASSERT_EQ(fast.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(fast[k], again[k]) << "plan reuse changed bin " << k;
    EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-8 * static_cast<double>(n))
        << "bin " << k;
    EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-8 * static_cast<double>(n))
        << "bin " << k;
  }
  const auto back = ifft(fast);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(OddAndPrimeSizes, FftPlanCacheBluestein,
                         ::testing::Values(3, 9, 15, 17, 97, 101, 243, 251));

TEST(FftPlanCache, SecondTransformHitsTheCache) {
  fft_plan_cache_clear();
  const auto x = random_complex(64, 7);
  (void)fft(x);
  const auto after_first = fft_plan_cache_stats();
  EXPECT_EQ(after_first.radix2_plans, 1u);
  EXPECT_GE(after_first.misses, 1u);
  (void)fft(x);
  const auto after_second = fft_plan_cache_stats();
  EXPECT_EQ(after_second.radix2_plans, 1u);
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_EQ(after_second.misses, after_first.misses);
}

TEST(FftPlanCache, BluesteinPlansArePerDirection) {
  fft_plan_cache_clear();
  const auto x = random_complex(17, 8);
  (void)fft(x);
  EXPECT_EQ(fft_plan_cache_stats().bluestein_plans, 1u);
  (void)ifft(x);
  EXPECT_EQ(fft_plan_cache_stats().bluestein_plans, 2u);
  fft_plan_cache_clear();
  EXPECT_EQ(fft_plan_cache_stats().bluestein_plans, 0u);
  EXPECT_EQ(fft_plan_cache_stats().hits, 0u);
}

TEST(FftPlanCache, ConcurrentMixedSizeTransformsAreRaceFreeAndIdentical) {
  fft_plan_cache_clear();
  // Mixed radix-2 and Bluestein sizes, all threads racing to build the
  // same plans on first use; every result must equal the serial one.
  const std::vector<std::size_t> sizes = {8, 17, 64, 100, 251, 256};
  std::vector<std::vector<Complex>> inputs;
  std::vector<std::vector<Complex>> serial;
  inputs.reserve(sizes.size());
  serial.reserve(sizes.size());
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    inputs.push_back(random_complex(sizes[s], 60 + s));
  }
  for (const auto& in : inputs) serial.push_back(fft(in));
  fft_plan_cache_clear();  // make the parallel pass rebuild every plan

  nsync::runtime::ThreadPool pool(8);
  constexpr std::size_t kRounds = 64;
  std::vector<int> mismatches(kRounds, -1);
  pool.parallel_for(0, kRounds, [&](std::size_t r) {
    const std::size_t s = r % sizes.size();
    const auto out = fft(inputs[s]);
    int bad = 0;
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (out[k] != serial[s][k]) ++bad;
    }
    mismatches[r] = bad;
  });
  for (std::size_t r = 0; r < kRounds; ++r) {
    EXPECT_EQ(mismatches[r], 0) << "round " << r;
  }
}

}  // namespace
}  // namespace nsync::dsp
