// The batch ≡ streaming equivalence guarantee.
//
// Batch analysis (NsyncIds::analyze) is a replay of the streaming
// DetectionCore, and RealtimeMonitor feeds the same core window by window
// — so for any observed signal, any chunking of its frames, and any
// sensor-fault pattern, the two paths must produce BITWISE identical
// features, vertical distances, validity masks and verdicts.  This
// property test is the guarantee that used to be maintained by hand-kept
// "mirror the batch comparator" comments and spot checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "core/nsync.hpp"
#include "eval/fault_tolerance.hpp"
#include "sensors/fault_injector.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace nsync {
namespace {

using nsync::core::Detection;
using nsync::core::NsyncConfig;
using nsync::core::NsyncIds;
using nsync::core::RealtimeMonitor;
using nsync::core::SyncMethod;
using nsync::core::Thresholds;
using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
  }
  return a;
}

NsyncConfig dwm_config() {
  NsyncConfig cfg;
  cfg.sync = SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;
  cfg.r = 0.3;
  return cfg;
}

/// Asserts bitwise equality between one batch analysis + discrimination
/// and a chunked streaming replay of the same frames.
void expect_equivalent(const NsyncIds& ids, const Signal& observed,
                       std::size_t chunk, const std::string& what) {
  const core::Analysis batch = ids.analyze(observed);
  const Detection batch_d = ids.detect(batch);

  RealtimeMonitor mon(ids.reference(), ids.config(), ids.thresholds());
  for (std::size_t off = 0; off < observed.frames(); off += chunk) {
    const std::size_t hi = std::min(off + chunk, observed.frames());
    mon.push(SignalView(observed).slice(off, hi));
  }

  // Bitwise equality — EXPECT_EQ on the raw double vectors, no tolerance.
  ASSERT_EQ(mon.features().c_disp, batch.features.c_disp) << what;
  ASSERT_EQ(mon.features().h_dist_f, batch.features.h_dist_f) << what;
  ASSERT_EQ(mon.features().v_dist_f, batch.features.v_dist_f) << what;
  ASSERT_EQ(mon.valid(), batch.valid) << what;
  ASSERT_EQ(mon.windows(), batch.h_disp.size()) << what;

  const Detection& stream_d = mon.detection();
  EXPECT_EQ(stream_d.intrusion, batch_d.intrusion) << what;
  EXPECT_EQ(stream_d.by_c_disp, batch_d.by_c_disp) << what;
  EXPECT_EQ(stream_d.by_h_dist, batch_d.by_h_dist) << what;
  EXPECT_EQ(stream_d.by_v_dist, batch_d.by_v_dist) << what;
  EXPECT_EQ(stream_d.first_alarm_window, batch_d.first_alarm_window) << what;
}

class StreamingEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    reference_ = make_reference(1500, 42);
    ids_ = std::make_unique<NsyncIds>(reference_, dwm_config());
    std::vector<Signal> train;
    for (std::uint64_t s = 1; s <= 3; ++s) {
      train.push_back(benign_observation(reference_, s));
    }
    ids_->fit(train);
  }

  Signal reference_;
  std::unique_ptr<NsyncIds> ids_;
};

TEST_F(StreamingEquivalence, ChunkSizeSweepOnCleanSignals) {
  // 1 frame at a time, prime sizes straddling the hop and window, and the
  // whole signal in one push.
  const std::size_t chunks[] = {1, 7, 31, 61, 127, 4096};
  for (std::uint64_t seed : {10u, 11u}) {
    const Signal benign = benign_observation(reference_, seed);
    const Signal attack = malicious_observation(reference_, seed + 100);
    for (std::size_t chunk : chunks) {
      expect_equivalent(*ids_, benign, chunk,
                        "benign seed " + std::to_string(seed) + " chunk " +
                            std::to_string(chunk));
      expect_equivalent(*ids_, attack, chunk,
                        "attack seed " + std::to_string(seed) + " chunk " +
                            std::to_string(chunk));
    }
  }
}

TEST_F(StreamingEquivalence, FaultRateSweep) {
  // Corrupted streams exercise the masking/carry-forward paths; the two
  // paths must stay bitwise identical through them.
  for (double rate : {0.005, 0.02, 0.05}) {
    for (std::uint64_t seed : {21u, 22u}) {
      const Signal clean = benign_observation(reference_, seed);
      sensors::FaultInjector inj(eval::fault_config_for_rate(rate),
                                 /*seed=*/seed * 13);
      const Signal faulty = inj.apply(clean);
      for (std::size_t chunk : {1u, 31u, 4096u}) {
        expect_equivalent(*ids_, faulty, chunk,
                          "rate " + std::to_string(rate) + " seed " +
                              std::to_string(seed) + " chunk " +
                              std::to_string(chunk));
      }
    }
  }
}

TEST_F(StreamingEquivalence, HardZeroAndNanSpans) {
  Signal obs = benign_observation(reference_, 33);
  for (std::size_t n = 300; n < 420; ++n) {
    obs(n, 0) = 0.0;
    obs(n, 1) = 0.0;
  }
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t n = 700; n < 790; ++n) obs(n, 1) = kNan;
  for (std::size_t chunk : {1u, 17u, 32u, 64u, 4096u}) {
    expect_equivalent(*ids_, obs, chunk,
                      "hard spans chunk " + std::to_string(chunk));
  }
}

}  // namespace
}  // namespace nsync
