// Tests for the evaluation harness: metrics, CLI options, setups, tables.
#include <gtest/gtest.h>

#include <sstream>

#include "eval/metrics.hpp"
#include "eval/options.hpp"
#include "eval/setup.hpp"
#include "eval/table.hpp"

namespace nsync::eval {
namespace {

TEST(Confusion, CountsAndRates) {
  Confusion c;
  c.add(true, true);    // TP
  c.add(true, true);    // TP
  c.add(false, true);   // FN
  c.add(true, false);   // FP
  c.add(false, false);  // TN
  c.add(false, false);  // TN
  c.add(false, false);  // TN
  EXPECT_EQ(c.tp(), 2u);
  EXPECT_EQ(c.fn(), 1u);
  EXPECT_EQ(c.fp(), 1u);
  EXPECT_EQ(c.tn(), 3u);
  EXPECT_NEAR(c.tpr(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.fpr(), 0.25, 1e-12);
  EXPECT_NEAR(c.accuracy(), 5.0 / 7.0, 1e-12);
  EXPECT_NEAR(c.balanced_accuracy(), ((1.0 - 0.25) + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(Confusion, EmptyIsZero) {
  Confusion c;
  EXPECT_DOUBLE_EQ(c.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.tpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
  EXPECT_EQ(c.total(), 0u);
}

TEST(Confusion, MergeAccumulates) {
  Confusion a, b;
  a.add(true, true);
  b.add(false, false);
  b.add(true, false);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.fp(), 1u);
}

TEST(Confusion, PaperStyleFormat) {
  Confusion c;
  c.add(true, true);
  c.add(false, false);
  EXPECT_EQ(c.fpr_tpr(), "0.00/1.00");
}

TEST(Options, DefaultsAndFlags) {
  const char* argv[] = {"prog", "--seed", "7", "--train", "3", "--benign",
                        "5", "--attacks", "2", "--printer", "RM3",
                        "--verbose"};
  const CliOptions opt = CliOptions::parse(12, argv);
  EXPECT_EQ(opt.scale.seed, 7u);
  EXPECT_EQ(opt.scale.train_count, 3u);
  EXPECT_EQ(opt.scale.benign_test_count, 5u);
  EXPECT_EQ(opt.scale.malicious_per_attack, 2u);
  ASSERT_EQ(opt.printers.size(), 1u);
  EXPECT_EQ(opt.printers[0], PrinterKind::kRm3);
  EXPECT_TRUE(opt.verbose);
  EXPECT_FALSE(opt.help);
}

TEST(Options, ScalePresets) {
  const char* tiny[] = {"prog", "--tiny"};
  EXPECT_LT(CliOptions::parse(2, tiny).scale.train_count, 10u);
  const char* paper[] = {"prog", "--paper-scale"};
  const CliOptions p = CliOptions::parse(2, paper);
  EXPECT_EQ(p.scale.train_count, 50u);
  EXPECT_EQ(p.scale.benign_test_count, 100u);
  EXPECT_EQ(p.scale.malicious_per_attack, 20u);
  EXPECT_DOUBLE_EQ(p.scale.gear_diameter, 60.0);
}

TEST(Options, ErrorsAndHelp) {
  const char* bad[] = {"prog", "--bogus"};
  EXPECT_THROW(CliOptions::parse(2, bad), std::invalid_argument);
  const char* missing[] = {"prog", "--seed"};
  EXPECT_THROW(CliOptions::parse(2, missing), std::invalid_argument);
  const char* badp[] = {"prog", "--printer", "XYZ"};
  EXPECT_THROW(CliOptions::parse(3, badp), std::invalid_argument);
  const char* help[] = {"prog", "--help"};
  EXPECT_TRUE(CliOptions::parse(2, help).help);
  EXPECT_NE(CliOptions::usage("prog").find("usage"), std::string::npos);
}

TEST(Setup, PrinterNamesAndTransforms) {
  EXPECT_EQ(printer_name(PrinterKind::kUm3), "UM3");
  EXPECT_EQ(printer_name(PrinterKind::kRm3), "RM3");
  EXPECT_EQ(transform_name(Transform::kRaw), "Raw");
  EXPECT_EQ(transform_name(Transform::kSpectrogram), "Spectro.");
}

TEST(Setup, Table4MatchesPaper) {
  const DwmSeconds um3 = table4_dwm(PrinterKind::kUm3);
  EXPECT_DOUBLE_EQ(um3.t_win, 4.0);
  EXPECT_DOUBLE_EQ(um3.t_hop, 2.0);
  EXPECT_DOUBLE_EQ(um3.t_ext, 2.0);
  EXPECT_DOUBLE_EQ(um3.t_sigma, 1.0);
  EXPECT_DOUBLE_EQ(um3.eta, 0.1);
  const DwmSeconds rm3 = table4_dwm(PrinterKind::kRm3);
  EXPECT_DOUBLE_EQ(rm3.t_win, 1.0);
  EXPECT_DOUBLE_EQ(rm3.t_hop, 0.5);
  EXPECT_DOUBLE_EQ(rm3.t_ext, 0.1);
  EXPECT_DOUBLE_EQ(rm3.t_sigma, 0.05);
}

TEST(Setup, DwmParamsResolveAndValidate) {
  for (PrinterKind p : {PrinterKind::kUm3, PrinterKind::kRm3}) {
    for (double fs : {20.0, 80.0, 100.0, 240.0, 400.0, 4000.0}) {
      const auto params = dwm_params_for(p, fs);
      EXPECT_NO_THROW(params.validate()) << printer_name(p) << " " << fs;
      EXPECT_LE(params.n_hop, params.n_win);
    }
  }
}

TEST(Setup, Table3StftMatchesPaper) {
  const auto acc = table3_stft(sensors::SideChannel::kAcc);
  EXPECT_DOUBLE_EQ(acc.delta_f, 20.0);
  EXPECT_DOUBLE_EQ(acc.delta_t, 1.0 / 80.0);
  EXPECT_EQ(acc.window, dsp::WindowType::kBlackmanHarris);
  const auto pwr = table3_stft(sensors::SideChannel::kPwr);
  EXPECT_DOUBLE_EQ(pwr.delta_f, 60.0);
  EXPECT_EQ(pwr.window, dsp::WindowType::kBoxcar);
  const auto mag = table3_stft(sensors::SideChannel::kMag);
  EXPECT_DOUBLE_EQ(mag.delta_f, 5.0);
  EXPECT_DOUBLE_EQ(mag.delta_t, 1.0 / 20.0);
}

TEST(Setup, MakePrinterSetupSlicesBenignProgram) {
  const PrinterSetup um3 =
      make_printer_setup(PrinterKind::kUm3, EvalScale::tiny());
  EXPECT_FALSE(um3.benign_program.empty());
  EXPECT_GT(um3.benign_program.layer_starts().size(), 1u);
  const PrinterSetup rm3 =
      make_printer_setup(PrinterKind::kRm3, EvalScale::tiny());
  // Delta printers print at the origin.
  EXPECT_DOUBLE_EQ(rm3.slicer.bed_center_x, 0.0);
  EXPECT_EQ(rm3.machine.kinematics, printer::KinematicsType::kDelta);
}

TEST(Table, FormatsAlignedColumns) {
  AsciiTable t({"A", "Column"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("yyyy"), std::string::npos);
}

TEST(Table, FmtDigits) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

}  // namespace
}  // namespace nsync::eval
