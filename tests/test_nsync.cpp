// Tests for the end-to-end NSYNC IDS and the real-time monitor.
#include <gtest/gtest.h>

#include <cmath>

#include "core/nsync.hpp"
#include "signal/rng.hpp"

namespace nsync::core {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

/// Band-limited reference signal.
Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

/// A benign observation: the reference with small random time warps and a
/// touch of measurement noise.
Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);  // ~0.2 % rate jitter = time noise
  }
  return a;
}

/// A malicious observation: same as benign but with a section replaced by
/// unrelated content (a different "toolpath").
Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) {
      a(n, c) = lp;
    }
  }
  return a;
}

NsyncConfig dwm_config() {
  NsyncConfig cfg;
  cfg.sync = SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;
  cfg.r = 0.3;
  return cfg;
}

class NsyncFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    reference_ = make_reference(1500, 100);
    for (std::uint64_t s = 0; s < 8; ++s) {
      train_.push_back(benign_observation(reference_, 200 + s));
    }
  }
  Signal reference_;
  std::vector<Signal> train_;
};

TEST_F(NsyncFixture, DetectsTamperedSectionAndPassesBenign) {
  NsyncIds ids(reference_, dwm_config());
  ids.fit(train_);
  const Signal benign = benign_observation(reference_, 999);
  const Signal malicious = malicious_observation(reference_, 998);
  EXPECT_FALSE(ids.detect(benign).intrusion);
  const Detection d = ids.detect(malicious);
  EXPECT_TRUE(d.intrusion);
}

TEST_F(NsyncFixture, AnalyzeProducesConsistentShapes) {
  NsyncIds ids(reference_, dwm_config());
  const Analysis a = ids.analyze(train_.front());
  EXPECT_EQ(a.h_disp.size(), a.v_dist.size());
  EXPECT_EQ(a.features.c_disp.size(), a.h_disp.size());
  EXPECT_GT(a.h_disp.size(), 10u);
}

TEST_F(NsyncFixture, DetectBeforeFitThrows) {
  NsyncIds ids(reference_, dwm_config());
  EXPECT_THROW(static_cast<void>(ids.detect(train_.front())),
               std::logic_error);
  EXPECT_THROW(static_cast<void>(ids.thresholds()), std::logic_error);
  EXPECT_FALSE(ids.trained());
}

TEST_F(NsyncFixture, FitValidation) {
  NsyncIds ids(reference_, dwm_config());
  EXPECT_THROW(ids.fit({}), std::invalid_argument);
  EXPECT_THROW(ids.fit_from_analyses({}), std::invalid_argument);
}

TEST_F(NsyncFixture, ManualThresholdsBypassFit) {
  NsyncIds ids(reference_, dwm_config());
  ids.set_thresholds({1e9, 1e9, 1e9});
  EXPECT_TRUE(ids.trained());
  EXPECT_FALSE(ids.detect(train_.front()).intrusion);
  ids.set_thresholds({-1.0, -1.0, -1.0});
  EXPECT_TRUE(ids.detect(train_.front()).intrusion);
}

TEST_F(NsyncFixture, DtwModeDetectsToo) {
  NsyncConfig cfg = dwm_config();
  cfg.sync = SyncMethod::kDtw;
  cfg.dtw_radius = 1;
  // DTW compares points across the channel axis; with only two channels the
  // correlation point-distance is degenerate (always 0 or 2), so use the
  // Euclidean metric here.  The real evaluation feeds DTW spectrograms
  // with tens to hundreds of channels where correlation works.
  cfg.metric = DistanceMetric::kEuclidean;
  NsyncIds ids(reference_, cfg);
  ids.fit(train_);
  const Detection d = ids.detect(malicious_observation(reference_, 997));
  EXPECT_TRUE(d.intrusion);
}

TEST_F(NsyncFixture, ConfigValidation) {
  NsyncConfig cfg = dwm_config();
  cfg.dtw_radius = 0;
  cfg.sync = SyncMethod::kDtw;
  EXPECT_THROW(NsyncIds(reference_, cfg), std::invalid_argument);
  Signal empty;
  EXPECT_THROW(NsyncIds(empty, dwm_config()), std::invalid_argument);
  EXPECT_EQ(sync_method_name(SyncMethod::kDwm), "DWM");
  EXPECT_EQ(sync_method_name(SyncMethod::kDtw), "DTW");
}

TEST_F(NsyncFixture, RealtimeMonitorMatchesOfflineOnBenign) {
  NsyncIds ids(reference_, dwm_config());
  ids.fit(train_);
  const Signal benign = benign_observation(reference_, 996);
  const Detection offline = ids.detect(benign);

  RealtimeMonitor monitor(reference_, dwm_config(), ids.thresholds());
  std::size_t pos = 0;
  while (pos < benign.frames()) {
    const std::size_t end = std::min(pos + 37, benign.frames());
    monitor.push(SignalView(benign).slice(pos, end));
    pos = end;
  }
  EXPECT_EQ(monitor.intrusion(), offline.intrusion);
  EXPECT_FALSE(monitor.intrusion());
}

TEST_F(NsyncFixture, RealtimeMonitorRaisesAlarmMidStream) {
  NsyncIds ids(reference_, dwm_config());
  ids.fit(train_);
  const Signal malicious = malicious_observation(reference_, 995);
  ASSERT_TRUE(ids.detect(malicious).intrusion);

  RealtimeMonitor monitor(reference_, dwm_config(), ids.thresholds());
  std::size_t alarm_at_frame = 0;
  std::size_t pos = 0;
  while (pos < malicious.frames()) {
    const std::size_t end = std::min(pos + 64, malicious.frames());
    monitor.push(SignalView(malicious).slice(pos, end));
    pos = end;
    if (monitor.intrusion() && alarm_at_frame == 0) {
      alarm_at_frame = end;
    }
  }
  EXPECT_TRUE(monitor.intrusion());
  // The tampered section starts at 1/3 of the signal; the alarm must fire
  // before the print finishes (that is the point of a real-time IDS).
  EXPECT_LT(alarm_at_frame, malicious.frames());
  EXPECT_GT(alarm_at_frame, malicious.frames() / 4);
}

TEST_F(NsyncFixture, RealtimeMonitorFeatureParityWithOffline) {
  NsyncIds ids(reference_, dwm_config());
  const Signal benign = benign_observation(reference_, 994);
  const Analysis offline = ids.analyze(benign);

  RealtimeMonitor monitor(reference_, dwm_config(), {1e18, 1e18, 1e18});
  monitor.push(benign);
  const auto& live = monitor.features();
  ASSERT_EQ(live.c_disp.size(), offline.features.c_disp.size());
  for (std::size_t i = 0; i < live.c_disp.size(); ++i) {
    EXPECT_NEAR(live.c_disp[i], offline.features.c_disp[i], 1e-9);
    EXPECT_NEAR(live.h_dist_f[i], offline.features.h_dist_f[i], 1e-9);
    EXPECT_NEAR(live.v_dist_f[i], offline.features.v_dist_f[i], 1e-9);
  }
}

TEST_F(NsyncFixture, RealtimeMonitorRequiresDwm) {
  NsyncConfig cfg = dwm_config();
  cfg.sync = SyncMethod::kDtw;
  EXPECT_THROW(RealtimeMonitor(reference_, cfg, {1.0, 1.0, 1.0}),
               std::invalid_argument);
}

class NsyncMetricSweep : public ::testing::TestWithParam<DistanceMetric> {};

TEST_P(NsyncMetricSweep, EveryMetricSeparatesTamperedSignal) {
  const Signal reference = make_reference(1500, 300);
  std::vector<Signal> train;
  for (std::uint64_t s = 0; s < 6; ++s) {
    train.push_back(benign_observation(reference, 400 + s));
  }
  NsyncConfig cfg;
  cfg.sync = SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.metric = GetParam();
  cfg.r = 0.5;
  NsyncIds ids(reference, cfg);
  ids.fit(train);
  EXPECT_TRUE(ids.detect(malicious_observation(reference, 500)).intrusion);
}

INSTANTIATE_TEST_SUITE_P(Metrics, NsyncMetricSweep,
                         ::testing::Values(DistanceMetric::kCorrelation,
                                           DistanceMetric::kCosine,
                                           DistanceMetric::kEuclidean,
                                           DistanceMetric::kMae));

}  // namespace
}  // namespace nsync::core
