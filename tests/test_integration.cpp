// Integration tests: the full pipeline from G-code through the simulator,
// sensor rig and dataset generator into NSYNC and the baselines, at tiny
// scale.  These are the repository's end-to-end guarantees; the bench
// binaries run the same pipeline at larger scales.
#include <gtest/gtest.h>

#include "core/nsync.hpp"
#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/setup.hpp"

namespace nsync::eval {
namespace {

EvalScale micro_scale() {
  EvalScale s = EvalScale::tiny();
  s.train_count = 3;
  s.benign_test_count = 3;
  s.malicious_per_attack = 1;
  return s;
}

class DatasetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(PrinterKind::kUm3, micro_scale(),
                           {sensors::SideChannel::kAcc,
                            sensors::SideChannel::kAud});
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* DatasetFixture::dataset_ = nullptr;

TEST_F(DatasetFixture, RosterMatchesTableI) {
  EXPECT_EQ(dataset_->train().size(), 3u);
  // 3 benign + 5 attacks x 1 repetition.
  EXPECT_EQ(dataset_->test().size(), 8u);
  std::size_t malicious = 0;
  for (const auto& p : dataset_->test()) {
    if (p.malicious) ++malicious;
  }
  EXPECT_EQ(malicious, 5u);
  EXPECT_EQ(dataset_->reference().label, "Reference");
  EXPECT_FALSE(dataset_->reference().malicious);
}

TEST_F(DatasetFixture, EveryProcessCarriesAllChannelsAndLayers) {
  auto check = [](const ProcessSignals& p) {
    EXPECT_EQ(p.raw.size(), 2u);
    EXPECT_GT(p.layer_times.size(), 1u) << p.label;
    for (const auto& [ch, sig] : p.raw) {
      EXPECT_GT(sig.frames(), 100u);
      EXPECT_EQ(sig.channels(), sensors::side_channel_components(ch));
    }
  };
  check(dataset_->reference());
  for (const auto& p : dataset_->train()) check(p);
  for (const auto& p : dataset_->test()) check(p);
}

TEST_F(DatasetFixture, ChannelDataShapesAreConsistent) {
  const ChannelData raw =
      dataset_->channel_data(sensors::SideChannel::kAcc, Transform::kRaw);
  EXPECT_EQ(raw.train.size(), 3u);
  EXPECT_EQ(raw.test.size(), 8u);
  EXPECT_DOUBLE_EQ(raw.sample_rate,
                   eval_channel_rate(sensors::SideChannel::kAcc));

  const ChannelData spec = dataset_->channel_data(
      sensors::SideChannel::kAcc, Transform::kSpectrogram);
  EXPECT_GT(spec.reference.signal.channels(),
            raw.reference.signal.channels());
  EXPECT_LT(spec.sample_rate, raw.sample_rate);
}

TEST_F(DatasetFixture, BenignRunsDifferButShareGeometry) {
  // Time noise: two benign ACC signals have different lengths but similar
  // total energy.
  const auto& a = dataset_->train()[0].raw.at(sensors::SideChannel::kAcc);
  const auto& b = dataset_->train()[1].raw.at(sensors::SideChannel::kAcc);
  EXPECT_NE(a.frames(), b.frames());
  EXPECT_NEAR(static_cast<double>(a.frames()),
              static_cast<double>(b.frames()),
              static_cast<double>(a.frames()) * 0.05);
}

TEST_F(DatasetFixture, NsyncDwmSeparatesAtMicroScale) {
  const ChannelData data =
      dataset_->channel_data(sensors::SideChannel::kAcc, Transform::kRaw);
  const NsyncResult r =
      run_nsync(data, PrinterKind::kUm3, core::SyncMethod::kDwm, 0.3);
  // With 3 training runs the thresholds are rough; still, the attacks must
  // be overwhelmingly detected and benign mostly passed.
  EXPECT_GE(r.overall.tpr(), 0.8);
  EXPECT_LE(r.overall.fpr(), 0.34);
}

TEST_F(DatasetFixture, BaselineRunnersProduceFullConfusions) {
  const ChannelData data =
      dataset_->channel_data(sensors::SideChannel::kAcc, Transform::kRaw);
  EXPECT_EQ(run_moore(data).total(), 8u);
  EXPECT_EQ(run_gao(data).total(), 8u);
  EXPECT_EQ(run_gatlin(data).overall.total(), 8u);
  const ChannelData aud =
      dataset_->channel_data(sensors::SideChannel::kAud, Transform::kRaw);
  EXPECT_EQ(run_bayens(aud, 1.0).overall.total(), 8u);
}

TEST_F(DatasetFixture, MissingChannelThrows) {
  EXPECT_THROW(
      dataset_->channel_data(sensors::SideChannel::kPwr, Transform::kRaw),
      std::invalid_argument);
}

TEST_F(DatasetFixture, SyncSpeedMeasurementRuns) {
  const ChannelData spec = dataset_->channel_data(
      sensors::SideChannel::kAcc, Transform::kSpectrogram);
  const SyncSpeed s = measure_sync_speed(spec, PrinterKind::kUm3);
  EXPECT_GT(s.dwm_seconds_per_signal_second, 0.0);
  EXPECT_GT(s.dtw_seconds_per_signal_second, 0.0);
  EXPECT_GT(s.dtw_seconds_per_signal_second,
            s.dtw_offline_seconds_per_signal_second);
}

TEST(DatasetStandalone, SameSeedReproducesExactly) {
  EvalScale s = micro_scale();
  s.train_count = 1;
  s.benign_test_count = 1;
  s.malicious_per_attack = 0;
  const Dataset d1(PrinterKind::kUm3, s, {sensors::SideChannel::kAcc});
  const Dataset d2(PrinterKind::kUm3, s, {sensors::SideChannel::kAcc});
  const auto& a = d1.reference().raw.at(sensors::SideChannel::kAcc);
  const auto& b = d2.reference().raw.at(sensors::SideChannel::kAcc);
  ASSERT_EQ(a.frames(), b.frames());
  for (std::size_t n = 0; n < a.frames(); n += 97) {
    EXPECT_DOUBLE_EQ(a(n, 0), b(n, 0));
  }
}

TEST(DatasetStandalone, DifferentSeedsDiffer) {
  EvalScale s = micro_scale();
  s.train_count = 0;
  s.benign_test_count = 1;
  s.malicious_per_attack = 0;
  EvalScale s2 = s;
  s2.seed = 777;
  const Dataset d1(PrinterKind::kUm3, s, {sensors::SideChannel::kAcc});
  const Dataset d2(PrinterKind::kUm3, s2, {sensors::SideChannel::kAcc});
  const auto& a = d1.test()[0].raw.at(sensors::SideChannel::kAcc);
  const auto& b = d2.test()[0].raw.at(sensors::SideChannel::kAcc);
  EXPECT_NE(a.frames(), b.frames());
}

TEST(DatasetStandalone, Rm3DeltaPipelineWorks) {
  EvalScale s = micro_scale();
  s.train_count = 1;
  s.benign_test_count = 1;
  s.malicious_per_attack = 1;
  const Dataset d(PrinterKind::kRm3, s, {sensors::SideChannel::kAcc});
  EXPECT_EQ(d.test().size(), 6u);
  const ChannelData data =
      d.channel_data(sensors::SideChannel::kAcc, Transform::kRaw);
  // DWM runs on the delta machine's signals.
  const auto params = dwm_params_for(PrinterKind::kRm3, data.sample_rate);
  const auto r = core::DwmSynchronizer::align(
      data.test.front().sig.signal, data.reference.signal, params);
  EXPECT_GT(r.h_disp.size(), 5u);
}

TEST(DatasetStandalone, EmptyChannelListRejected) {
  EXPECT_THROW(Dataset(PrinterKind::kUm3, micro_scale(), {}),
               std::invalid_argument);
}

TEST(RetainedChannels, MatchSectionVIIIB) {
  EXPECT_TRUE(is_retained(sensors::SideChannel::kAcc, Transform::kRaw));
  EXPECT_TRUE(is_retained(sensors::SideChannel::kEpt,
                          Transform::kSpectrogram));
  EXPECT_FALSE(is_retained(sensors::SideChannel::kEpt, Transform::kRaw));
  EXPECT_FALSE(is_retained(sensors::SideChannel::kTmp, Transform::kRaw));
  EXPECT_FALSE(is_retained(sensors::SideChannel::kPwr,
                           Transform::kSpectrogram));
  EXPECT_EQ(retained_channels().size(), 4u);
}

}  // namespace
}  // namespace nsync::eval
