// Tests for the streaming DetectionCore and its incremental min filter —
// the single implementation of window scoring, masking, carry-forward and
// threshold latching shared by the batch and streaming paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/detection_core.hpp"
#include "core/discriminator.hpp"
#include "signal/filters.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace nsync::core {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

DwmParams params() {
  DwmParams p;
  p.n_win = 64;
  p.n_hop = 32;
  p.n_ext = 24;
  p.n_sigma = 12.0;
  p.eta = 0.2;
  return p;
}

// ---------------------------------------------------------------------------
// StreamingMinFilter: bitwise equal to the batch min_filter and to a naive
// trailing-window recompute, for every window size and stream shape.
// ---------------------------------------------------------------------------

TEST(StreamingMinFilter, MatchesBatchMinFilterOnRandomStreams) {
  for (std::size_t window : {1u, 2u, 3u, 5u, 8u, 17u}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      Rng rng(seed);
      std::vector<double> xs(200);
      for (double& x : xs) {
        // Coarse quantization forces frequent exact duplicates, the case
        // where tie-breaking inside the deque matters.
        x = std::floor(rng.normal() * 4.0) / 4.0;
      }
      const std::vector<double> batch = nsync::signal::min_filter(xs, window);
      StreamingMinFilter f(window);
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const double got = f.push(xs[i]);
        ASSERT_EQ(got, batch[i]) << "window " << window << " seed " << seed
                                 << " index " << i;
      }
    }
  }
}

TEST(StreamingMinFilter, MatchesNaiveTrailingRecompute) {
  Rng rng(7);
  std::vector<double> xs(500);
  for (double& x : xs) x = rng.normal();
  const std::size_t window = 3;
  StreamingMinFilter f(window);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double got = f.push(xs[i]);
    double want = xs[i];
    for (std::size_t k = i - std::min(i, window - 1); k <= i; ++k) {
      want = std::min(want, xs[k]);
    }
    ASSERT_EQ(got, want) << "index " << i;
  }
}

TEST(StreamingMinFilter, MonotoneDecreasingAndIncreasingStreams) {
  StreamingMinFilter dec(4);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dec.push(-i), static_cast<double>(-i));
  }
  StreamingMinFilter inc(4);
  for (int i = 0; i < 20; ++i) {
    const double want = static_cast<double>(std::max(0, i - 3));
    EXPECT_EQ(inc.push(i), want);
  }
}

TEST(StreamingMinFilter, ResetForgetsHistory) {
  StreamingMinFilter f(3);
  f.push(-5.0);
  f.push(-4.0);
  f.reset();
  EXPECT_EQ(f.samples(), 0u);
  EXPECT_EQ(f.push(2.0), 2.0);  // the old minimum is gone
}

TEST(StreamingMinFilter, RejectsZeroWindow) {
  EXPECT_THROW(StreamingMinFilter(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// DetectionCore: construction, scored-step semantics, latching
// ---------------------------------------------------------------------------

TEST(DetectionCore, RejectsInvalidParameters) {
  EXPECT_THROW(DetectionCore(params(), DistanceMetric::kCorrelation, 0),
               std::invalid_argument);
  DwmParams bad = params();
  bad.n_win = 0;
  EXPECT_THROW(DetectionCore(bad, DistanceMetric::kCorrelation, 3),
               std::invalid_argument);
}

TEST(DetectionCore, ScoredFeedMatchesBatchComputeFeatures) {
  Rng rng(11);
  std::vector<double> h(64), v(64);
  for (std::size_t i = 0; i < h.size(); ++i) {
    h[i] = rng.normal(0.0, 4.0);
    v[i] = std::abs(rng.normal());
  }
  DetectionCore dc(params(), DistanceMetric::kCorrelation, 3);
  dc.reserve(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_TRUE(dc.step_scored(h[i], v[i], true));
  }
  const DetectionFeatures want = compute_features(h, v, 3);
  EXPECT_EQ(dc.features().c_disp, want.c_disp);
  EXPECT_EQ(dc.features().h_dist_f, want.h_dist_f);
  EXPECT_EQ(dc.features().v_dist_f, want.v_dist_f);
  EXPECT_EQ(dc.windows(), h.size());
}

TEST(DetectionCore, NonFiniteInputsInvalidateRegardlessOfMask) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  DetectionCore dc(params(), DistanceMetric::kCorrelation, 1);
  EXPECT_TRUE(dc.step_scored(1.0, 0.5, true));
  EXPECT_FALSE(dc.step_scored(kNan, 0.5, true));
  EXPECT_FALSE(dc.step_scored(2.0, kInf, true));
  // Carried values, not the poisoned ones.
  EXPECT_DOUBLE_EQ(dc.features().c_disp[2], 1.0);
  EXPECT_DOUBLE_EQ(dc.features().h_dist_f[1], 1.0);
  EXPECT_DOUBLE_EQ(dc.features().v_dist_f[2], 0.5);
  EXPECT_EQ(dc.valid(), (std::vector<std::uint8_t>{1, 0, 0}));
}

TEST(DetectionCore, LatchesFirstAlarmWindowAndKeepsFlagsAccumulating) {
  Thresholds t;
  t.c_c = 10.0;
  t.h_c = 5.0;
  t.v_c = 100.0;  // never crossed
  DetectionCore dc(params(), DistanceMetric::kCorrelation, 1);
  dc.set_thresholds(t);
  ASSERT_TRUE(dc.armed());

  dc.step_scored(1.0, 0.0, true);  // c=1, h=1: quiet
  EXPECT_FALSE(dc.detection().intrusion);
  dc.step_scored(7.0, 0.0, true);  // h_dist_f = 7 > 5: alarm here
  EXPECT_TRUE(dc.detection().intrusion);
  EXPECT_EQ(dc.detection().first_alarm_window, 1);
  EXPECT_TRUE(dc.detection().by_h_dist);
  EXPECT_FALSE(dc.detection().by_c_disp);
  dc.step_scored(-7.0, 0.0, true);  // c = 1+6+14 > 10: c_disp crosses later
  EXPECT_TRUE(dc.detection().by_c_disp);  // flags keep accumulating...
  EXPECT_EQ(dc.detection().first_alarm_window, 1);  // ...the latch does not

  // A finished stream reports exactly what the batch discriminator would.
  const Detection batch = discriminate(dc.features(), t);
  EXPECT_EQ(dc.detection().intrusion, batch.intrusion);
  EXPECT_EQ(dc.detection().by_c_disp, batch.by_c_disp);
  EXPECT_EQ(dc.detection().by_h_dist, batch.by_h_dist);
  EXPECT_EQ(dc.detection().by_v_dist, batch.by_v_dist);
  EXPECT_EQ(dc.detection().first_alarm_window, batch.first_alarm_window);
}

TEST(DetectionCore, UnarmedCoreNeverFires) {
  DetectionCore dc(params(), DistanceMetric::kCorrelation, 1);
  for (int i = 0; i < 10; ++i) {
    dc.step_scored(1000.0 * i, 1000.0, true);
  }
  EXPECT_FALSE(dc.detection().intrusion);
  EXPECT_EQ(dc.detection().first_alarm_window, -1);
}

TEST(DetectionCore, StepRejectsWrongWindowWidth) {
  DetectionCore dc(params(), DistanceMetric::kCorrelation, 3);
  const Signal b(512, 2, 100.0);
  const Signal a(10, 2, 100.0);  // not n_win frames
  EXPECT_THROW(dc.step(0.0, true, a, b), std::invalid_argument);
}

TEST(DetectionCore, RandomMaskedScoredFeedMatchesDiscriminate) {
  // Property: for any validity pattern, the latched verdict of an armed
  // core equals running the batch discriminator over the accumulated
  // features.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Thresholds t;
    t.c_c = 25.0;
    t.h_c = 6.0;
    t.v_c = 2.0;
    DetectionCore dc(params(), DistanceMetric::kCorrelation, 3);
    dc.set_thresholds(t);
    for (std::size_t i = 0; i < 120; ++i) {
      const bool valid = rng.uniform() > 0.25;
      dc.step_scored(rng.normal(0.0, 3.0), std::abs(rng.normal()), valid);
    }
    const Detection batch = discriminate(dc.features(), t);
    EXPECT_EQ(dc.detection().intrusion, batch.intrusion) << "seed " << seed;
    EXPECT_EQ(dc.detection().by_c_disp, batch.by_c_disp) << "seed " << seed;
    EXPECT_EQ(dc.detection().by_h_dist, batch.by_h_dist) << "seed " << seed;
    EXPECT_EQ(dc.detection().by_v_dist, batch.by_v_dist) << "seed " << seed;
    EXPECT_EQ(dc.detection().first_alarm_window, batch.first_alarm_window)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace nsync::core
