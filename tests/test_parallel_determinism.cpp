// Bitwise determinism of the parallel evaluation pipeline: a Dataset
// built at worker count 8 must be identical — every sample of every
// rendered side channel, and every downstream NSYNC verdict — to one
// built at worker count 1 with the same seed.  Also covers the
// thread-safe progress callback contract (serialized, monotone counts).
#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "runtime/thread_pool.hpp"

namespace nsync::eval {
namespace {

const std::vector<sensors::SideChannel> kChannels = {
    sensors::SideChannel::kAcc, sensors::SideChannel::kAud};

void expect_signals_bitwise_equal(const nsync::signal::Signal& a,
                                  const nsync::signal::Signal& b,
                                  const std::string& what) {
  ASSERT_EQ(a.frames(), b.frames()) << what;
  ASSERT_EQ(a.channels(), b.channels()) << what;
  ASSERT_EQ(a.sample_rate(), b.sample_rate()) << what;
  for (std::size_t n = 0; n < a.frames(); ++n) {
    for (std::size_t c = 0; c < a.channels(); ++c) {
      // Exact (bitwise) equality, not a tolerance: the parallel runtime
      // only redistributes which thread computes each process, never the
      // arithmetic inside one.
      ASSERT_EQ(a(n, c), b(n, c))
          << what << " differs at frame " << n << " channel " << c;
    }
  }
}

void expect_processes_bitwise_equal(const ProcessSignals& a,
                                    const ProcessSignals& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.malicious, b.malicious);
  ASSERT_EQ(a.layer_times, b.layer_times);
  ASSERT_EQ(a.raw.size(), b.raw.size());
  for (const auto& [ch, sig] : a.raw) {
    const auto it = b.raw.find(ch);
    ASSERT_NE(it, b.raw.end());
    expect_signals_bitwise_equal(
        sig, it->second,
        a.label + "/" + sensors::side_channel_name(ch));
  }
}

TEST(ParallelDeterminism, DatasetBitwiseIdenticalAcrossWorkerCounts) {
  const EvalScale scale = EvalScale::tiny();

  runtime::set_worker_count(1);
  const Dataset serial(PrinterKind::kUm3, scale, kChannels);
  runtime::set_worker_count(8);
  const Dataset parallel(PrinterKind::kUm3, scale, kChannels);
  runtime::set_worker_count(0);

  expect_processes_bitwise_equal(serial.reference(), parallel.reference());
  ASSERT_EQ(serial.train().size(), parallel.train().size());
  for (std::size_t i = 0; i < serial.train().size(); ++i) {
    expect_processes_bitwise_equal(serial.train()[i], parallel.train()[i]);
  }
  ASSERT_EQ(serial.test().size(), parallel.test().size());
  for (std::size_t i = 0; i < serial.test().size(); ++i) {
    expect_processes_bitwise_equal(serial.test()[i], parallel.test()[i]);
  }
}

TEST(ParallelDeterminism, NsyncVerdictsIdenticalAcrossWorkerCounts) {
  const EvalScale scale = EvalScale::tiny();

  auto verdicts = [&](std::size_t workers) {
    runtime::set_worker_count(workers);
    const Dataset ds(PrinterKind::kUm3, scale, kChannels);
    const ChannelData data =
        ds.channel_data(sensors::SideChannel::kAcc, Transform::kRaw);
    const NsyncResult r =
        run_nsync(data, PrinterKind::kUm3, core::SyncMethod::kDwm, 0.3);
    runtime::set_worker_count(0);
    return r;
  };

  const NsyncResult serial = verdicts(1);
  const NsyncResult parallel = verdicts(8);

  auto expect_same = [](const Confusion& a, const Confusion& b,
                        const char* what) {
    EXPECT_EQ(a.tp(), b.tp()) << what;
    EXPECT_EQ(a.fp(), b.fp()) << what;
    EXPECT_EQ(a.tn(), b.tn()) << what;
    EXPECT_EQ(a.fn(), b.fn()) << what;
  };
  expect_same(serial.overall, parallel.overall, "overall");
  expect_same(serial.c_disp, parallel.c_disp, "c_disp");
  expect_same(serial.h_dist, parallel.h_dist, "h_dist");
  expect_same(serial.v_dist, parallel.v_dist, "v_dist");
}

TEST(ParallelDeterminism, SpectrogramChannelDataIdenticalAcrossWorkerCounts) {
  const EvalScale scale = EvalScale::tiny();

  runtime::set_worker_count(1);
  const Dataset serial(PrinterKind::kUm3, scale, kChannels);
  const ChannelData cd1 =
      serial.channel_data(sensors::SideChannel::kAud, Transform::kSpectrogram);
  runtime::set_worker_count(8);
  const Dataset parallel(PrinterKind::kUm3, scale, kChannels);
  const ChannelData cd8 = parallel.channel_data(sensors::SideChannel::kAud,
                                                Transform::kSpectrogram);
  runtime::set_worker_count(0);

  expect_signals_bitwise_equal(cd1.reference.signal, cd8.reference.signal,
                               "spectrogram reference");
  ASSERT_EQ(cd1.train.size(), cd8.train.size());
  for (std::size_t i = 0; i < cd1.train.size(); ++i) {
    expect_signals_bitwise_equal(cd1.train[i].signal, cd8.train[i].signal,
                                 "spectrogram train");
  }
  ASSERT_EQ(cd1.test.size(), cd8.test.size());
  for (std::size_t i = 0; i < cd1.test.size(); ++i) {
    expect_signals_bitwise_equal(cd1.test[i].sig.signal,
                                 cd8.test[i].sig.signal, "spectrogram test");
    EXPECT_EQ(cd1.test[i].label, cd8.test[i].label);
    EXPECT_EQ(cd1.test[i].malicious, cd8.test[i].malicious);
  }
}

TEST(ParallelDeterminism, ProgressCallbackIsSerializedAndMonotone) {
  runtime::set_worker_count(8);
  std::mutex seen_mu;  // the callback contract says no locking is needed;
                       // this guards the test's own vector only
  std::vector<std::size_t> dones;
  std::vector<std::size_t> totals;
  const Dataset ds(PrinterKind::kUm3, EvalScale::tiny(), kChannels,
                   [&](std::size_t done, std::size_t total) {
                     std::lock_guard<std::mutex> lock(seen_mu);
                     dones.push_back(done);
                     totals.push_back(total);
                   });
  runtime::set_worker_count(0);

  const std::size_t expected =
      1 + ds.scale().train_count + ds.scale().benign_test_count +
      gcode::all_attacks().size() * ds.scale().malicious_per_attack;
  ASSERT_EQ(dones.size(), expected);
  for (std::size_t i = 0; i < dones.size(); ++i) {
    EXPECT_EQ(dones[i], i + 1) << "done counts must be 1..total in order";
    EXPECT_EQ(totals[i], expected);
  }
}

}  // namespace
}  // namespace nsync::eval
