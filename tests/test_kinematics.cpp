// Tests for machine configurations and kinematics.
#include <gtest/gtest.h>

#include <cmath>

#include "printer/machine.hpp"

namespace nsync::printer {
namespace {

TEST(Machines, FactoryConfigsAreSane) {
  const MachineConfig um3 = ultimaker3();
  EXPECT_EQ(um3.name, "UM3");
  EXPECT_EQ(um3.kinematics, KinematicsType::kCartesian);
  EXPECT_GT(um3.max_velocity, 0.0);
  EXPECT_GT(um3.max_accel, 0.0);

  const MachineConfig rm3 = rostock_max_v3();
  EXPECT_EQ(rm3.name, "RM3");
  EXPECT_EQ(rm3.kinematics, KinematicsType::kDelta);
  EXPECT_GT(rm3.delta.arm_length, rm3.delta.tower_radius / 2.0);
}

TEST(Machines, NoiseConfigNoneDisablesEverything) {
  const TimeNoiseConfig n = TimeNoiseConfig::none();
  EXPECT_DOUBLE_EQ(n.duration_jitter_std, 0.0);
  EXPECT_DOUBLE_EQ(n.gap_probability, 0.0);
  EXPECT_DOUBLE_EQ(n.start_offset_std, 0.0);
  EXPECT_DOUBLE_EQ(n.drift_amplitude, 0.0);
}

TEST(Kinematics, CartesianIsIdentity) {
  const auto mp = motor_positions(ultimaker3(), 12.0, -3.0, 7.5);
  EXPECT_DOUBLE_EQ(mp[0], 12.0);
  EXPECT_DOUBLE_EQ(mp[1], -3.0);
  EXPECT_DOUBLE_EQ(mp[2], 7.5);
}

TEST(Kinematics, DeltaCenterIsSymmetric) {
  const MachineConfig m = rostock_max_v3();
  const auto mp = motor_positions(m, 0.0, 0.0, 10.0);
  EXPECT_NEAR(mp[0], mp[1], 1e-9);
  EXPECT_NEAR(mp[1], mp[2], 1e-9);
  // h = z + sqrt(L^2 - R^2) at the center.
  const double expected =
      10.0 + std::sqrt(m.delta.arm_length * m.delta.arm_length -
                       m.delta.tower_radius * m.delta.tower_radius);
  EXPECT_NEAR(mp[0], expected, 1e-9);
}

TEST(Kinematics, DeltaZTranslationShiftsAllCarriages) {
  const MachineConfig m = rostock_max_v3();
  const auto lo = motor_positions(m, 5.0, -8.0, 0.0);
  const auto hi = motor_positions(m, 5.0, -8.0, 25.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(hi[i] - lo[i], 25.0, 1e-9);
  }
}

TEST(Kinematics, DeltaForwardConsistency) {
  // The carriage heights must place each arm at exactly arm_length from
  // the effector (the defining constraint of the IK).
  const MachineConfig m = rostock_max_v3();
  const double x = 30.0, y = -20.0, z = 5.0;
  const auto h = motor_positions(m, x, y, z);
  constexpr double kDeg = M_PI / 180.0;
  for (int i = 0; i < 3; ++i) {
    const double ang = (90.0 + 120.0 * i) * kDeg;
    const double tx = m.delta.tower_radius * std::cos(ang);
    const double ty = m.delta.tower_radius * std::sin(ang);
    const double dist = std::sqrt((tx - x) * (tx - x) + (ty - y) * (ty - y) +
                                  (h[i] - z) * (h[i] - z));
    EXPECT_NEAR(dist, m.delta.arm_length, 1e-9) << "tower " << i;
  }
}

TEST(Kinematics, DeltaOutOfReachThrows) {
  const MachineConfig m = rostock_max_v3();
  EXPECT_THROW(static_cast<void>(motor_positions(m, 1000.0, 0.0, 0.0)),
               std::domain_error);
}

TEST(Kinematics, DeltaMovesAsymmetrically) {
  // A Y move changes the three carriages by different amounts — this is
  // what makes the delta's motor-space side channels look different from
  // the Cartesian machine's.  The towers sit at 90/210/330 degrees, so the
  // two front towers (210 and 330) mirror each other under a Y move while
  // the back tower responds differently.
  const MachineConfig m = rostock_max_v3();
  const auto a = motor_positions(m, 0.0, 0.0, 0.0);
  const auto b = motor_positions(m, 0.0, 20.0, 0.0);
  const double d0 = std::abs(b[0] - a[0]);
  const double d1 = std::abs(b[1] - a[1]);
  const double d2 = std::abs(b[2] - a[2]);
  EXPECT_NEAR(d1, d2, 1e-9);
  EXPECT_GT(std::abs(d1 - d0), 1e-3);
}

}  // namespace
}  // namespace nsync::printer
