// Tests for the drop-front FrameRingBuffer (streaming memory reclamation)
// and for Signal's geometric append growth / reserve_frames API.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "signal/ring_buffer.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace nsync::signal {
namespace {

Signal random_signal(std::size_t frames, std::size_t channels,
                     std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, channels, 100.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      s(n, c) = rng.normal();
    }
  }
  return s;
}

TEST(FrameRingBuffer, ConstructionValidates) {
  EXPECT_THROW(FrameRingBuffer(0, 100.0), std::invalid_argument);
  EXPECT_THROW(FrameRingBuffer(2, 0.0), std::invalid_argument);
  const FrameRingBuffer rb(3, 250.0);
  EXPECT_EQ(rb.channels(), 3u);
  EXPECT_DOUBLE_EQ(rb.sample_rate(), 250.0);
  EXPECT_EQ(rb.start(), 0u);
  EXPECT_EQ(rb.end(), 0u);
  EXPECT_EQ(rb.retained_frames(), 0u);
}

TEST(FrameRingBuffer, AppendPreservesLogicalIndexing) {
  const Signal s = random_signal(50, 2, 1);
  FrameRingBuffer rb(2, 100.0);
  rb.append(SignalView(s).slice(0, 20));
  rb.append(SignalView(s).slice(20, 50));
  EXPECT_EQ(rb.end(), 50u);
  const SignalView all = rb.view(0, 50);
  for (std::size_t n = 0; n < 50; ++n) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(all(n, c), s(n, c)) << "frame " << n;
    }
  }
}

TEST(FrameRingBuffer, AppendRejectsChannelMismatch) {
  FrameRingBuffer rb(2, 100.0);
  const Signal wrong = random_signal(5, 3, 2);
  EXPECT_THROW(rb.append(wrong), std::invalid_argument);
}

TEST(FrameRingBuffer, DroppedFramesKeepViewsValidAtLogicalIndices) {
  const Signal s = random_signal(100, 2, 3);
  FrameRingBuffer rb(2, 100.0);
  rb.append(s);
  rb.drop_before(60);
  EXPECT_EQ(rb.start(), 60u);
  EXPECT_EQ(rb.retained_frames(), 40u);
  const SignalView tail = rb.view(70, 90);
  for (std::size_t n = 0; n < 20; ++n) {
    EXPECT_DOUBLE_EQ(tail(n, 0), s(70 + n, 0)) << "frame " << n;
  }
  // Interleave more appends: logical indices keep counting from the
  // stream origin.
  const Signal t = random_signal(30, 2, 4);
  rb.append(t);
  EXPECT_EQ(rb.end(), 130u);
  const SignalView mixed = rb.view(95, 120);
  for (std::size_t n = 95; n < 100; ++n) {
    EXPECT_DOUBLE_EQ(mixed(n - 95, 1), s(n, 1));
  }
  for (std::size_t n = 100; n < 120; ++n) {
    EXPECT_DOUBLE_EQ(mixed(n - 95, 1), t(n - 100, 1));
  }
}

TEST(FrameRingBuffer, ViewBoundsAreEnforced) {
  const Signal s = random_signal(40, 1, 5);
  FrameRingBuffer rb(1, 100.0);
  rb.append(s);
  rb.drop_before(10);
  EXPECT_THROW(rb.view(9, 20), std::out_of_range);   // before start
  EXPECT_THROW(rb.view(10, 41), std::out_of_range);  // past end
  EXPECT_THROW(rb.view(30, 20), std::out_of_range);  // inverted
  EXPECT_NO_THROW(rb.view(10, 40));
  EXPECT_EQ(rb.view(15, 15).frames(), 0u);  // empty range is fine
}

TEST(FrameRingBuffer, DropBeforeClampsAndIgnoresThePast) {
  const Signal s = random_signal(20, 1, 6);
  FrameRingBuffer rb(1, 100.0);
  rb.append(s);
  rb.drop_before(12);
  rb.drop_before(5);  // in the past: no-op
  EXPECT_EQ(rb.start(), 12u);
  rb.drop_before(100);  // beyond end: clamps
  EXPECT_EQ(rb.start(), 20u);
  EXPECT_EQ(rb.retained_frames(), 0u);
  // The buffer keeps working after being fully drained.
  const Signal t = random_signal(8, 1, 7);
  rb.append(t);
  EXPECT_EQ(rb.start(), 20u);
  EXPECT_EQ(rb.end(), 28u);
  EXPECT_DOUBLE_EQ(rb.view(20, 28)(0, 0), t(0, 0));
}

TEST(FrameRingBuffer, MemoryStaysBoundedOverLongStream) {
  // Sliding-window usage: append a chunk, drop everything older than one
  // window.  Over 1000 chunks the allocation must stay proportional to
  // window + chunk, not to the stream.
  const std::size_t chunk = 64, window = 256;
  FrameRingBuffer rb(2, 100.0);
  const Signal s = random_signal(chunk, 2, 8);
  std::size_t peak_capacity = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    rb.append(s);
    const std::size_t frontier =
        rb.end() > window ? rb.end() - window : 0;
    rb.drop_before(frontier);
    peak_capacity = std::max(peak_capacity, rb.capacity_frames());
    EXPECT_LE(rb.retained_frames(), window + chunk);
  }
  EXPECT_EQ(rb.end(), 1000 * chunk);
  // Generous bound: a handful of window-spans, nowhere near 64000 frames.
  EXPECT_LE(peak_capacity, 4 * (window + chunk));
}

TEST(FrameRingBuffer, RetainedViewTracksLiveSpan) {
  const Signal s = random_signal(30, 2, 9);
  FrameRingBuffer rb(2, 100.0);
  rb.append(s);
  rb.drop_before(10);
  const SignalView live = rb.retained();
  EXPECT_EQ(live.frames(), 20u);
  EXPECT_DOUBLE_EQ(live(0, 0), s(10, 0));
  EXPECT_DOUBLE_EQ(live(19, 1), s(29, 1));
}

TEST(FrameRingBuffer, ReserveFramesPreventsReallocation) {
  FrameRingBuffer rb(2, 100.0);
  rb.reserve_frames(512);
  const std::size_t cap = rb.capacity_frames();
  EXPECT_GE(cap, 512u);
  const Signal s = random_signal(128, 2, 10);
  for (std::size_t i = 0; i < 100; ++i) {
    rb.append(s);
    rb.drop_before(rb.end() - 64);
  }
  EXPECT_EQ(rb.capacity_frames(), cap);
}

// --------------------------------------------------------------------------
// Signal growth API.
// --------------------------------------------------------------------------

TEST(SignalGrowth, AppendGrowsGeometrically) {
  Signal s = Signal::empty(2, 100.0);
  std::vector<double> frame = {1.0, 2.0};
  std::size_t reallocations = 0;
  std::size_t last_capacity = s.capacity_frames();
  for (std::size_t i = 0; i < 4096; ++i) {
    s.append_frame(frame);
    if (s.capacity_frames() != last_capacity) {
      ++reallocations;
      last_capacity = s.capacity_frames();
    }
  }
  EXPECT_EQ(s.frames(), 4096u);
  // Doubling growth: ~log2(4096) reallocations, not thousands.
  EXPECT_LE(reallocations, 16u);
}

TEST(SignalGrowth, ReserveFramesMakesAppendsAllocationStable) {
  Signal s = Signal::empty(3, 100.0);
  s.reserve_frames(1000);
  const std::size_t cap = s.capacity_frames();
  EXPECT_GE(cap, 1000u);
  const Signal chunk = random_signal(100, 3, 11);
  for (int i = 0; i < 10; ++i) s.append(chunk);
  EXPECT_EQ(s.frames(), 1000u);
  EXPECT_EQ(s.capacity_frames(), cap);
  // The deprecated-style alias keeps compiling for older call sites.
  s.reserve(2000);
  EXPECT_GE(s.capacity_frames(), 2000u);
}

}  // namespace
}  // namespace nsync::signal
