// Unit and property tests for the descriptive statistics helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "signal/rng.hpp"
#include "signal/signal.hpp"
#include "signal/stats.hpp"

namespace nsync::signal {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, Rms) {
  const std::vector<double> v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(rms(v), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms(std::vector<double>{}), 0.0);
}

TEST(Stats, MinMaxArgThrowOnEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW(min_value(empty), std::invalid_argument);
  EXPECT_THROW(max_value(empty), std::invalid_argument);
  EXPECT_THROW(argmax(empty), std::invalid_argument);
  EXPECT_THROW(argmin(empty), std::invalid_argument);
}

TEST(Stats, ArgmaxFirstOccurrence) {
  const std::vector<double> v = {1.0, 5.0, 5.0, 2.0};
  EXPECT_EQ(argmax(v), 1u);
  EXPECT_EQ(argmin(v), 0u);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> u = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(pearson(u, v), 1.0, 1e-12);
  std::vector<double> w = {40.0, 30.0, 20.0, 10.0};
  EXPECT_NEAR(pearson(u, w), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  const std::vector<double> u = {1.0, 1.0, 1.0};
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(u, v), 0.0);
}

TEST(Stats, PearsonLengthMismatchThrows) {
  const std::vector<double> u = {1.0, 2.0};
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_THROW(pearson(u, v), std::invalid_argument);
}

TEST(Stats, PearsonGainAndOffsetInvariance) {
  Rng rng(7);
  std::vector<double> u(64);
  for (auto& x : u) x = rng.normal();
  std::vector<double> v(64);
  for (std::size_t i = 0; i < u.size(); ++i) v[i] = 3.5 * u[i] - 11.0;
  EXPECT_NEAR(pearson(u, v), 1.0, 1e-12);
}

TEST(Stats, ChannelMeansAndStddevs) {
  Signal s = Signal::from_channels({{1.0, 3.0}, {10.0, 10.0}}, 10.0);
  const auto mu = channel_means(s);
  ASSERT_EQ(mu.size(), 2u);
  EXPECT_DOUBLE_EQ(mu[0], 2.0);
  EXPECT_DOUBLE_EQ(mu[1], 10.0);
  const auto sd = channel_stddevs(s);
  EXPECT_DOUBLE_EQ(sd[0], 1.0);
  EXPECT_DOUBLE_EQ(sd[1], 0.0);
}

TEST(Stats, ChannelPeaks) {
  Signal s = Signal::from_channels({{-5.0, 3.0}, {0.5, -0.25}}, 10.0);
  const auto pk = channel_peaks(s);
  EXPECT_DOUBLE_EQ(pk[0], 5.0);
  EXPECT_DOUBLE_EQ(pk[1], 0.5);
}

// Property: pearson is symmetric and bounded in [-1, 1] on random data.
class PearsonProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PearsonProperty, SymmetricAndBounded) {
  Rng rng(GetParam());
  std::vector<double> u(48), v(48);
  for (auto& x : u) x = rng.normal();
  for (auto& x : v) x = rng.normal(1.0, 3.0);
  const double puv = pearson(u, v);
  const double pvu = pearson(v, u);
  EXPECT_NEAR(puv, pvu, 1e-12);
  EXPECT_GE(puv, -1.0 - 1e-12);
  EXPECT_LE(puv, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearsonProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property: variance is translation invariant and scales quadratically.
class VarianceProperty : public ::testing::TestWithParam<double> {};

TEST_P(VarianceProperty, ScalesQuadratically) {
  const double k = GetParam();
  Rng rng(99);
  std::vector<double> u(100);
  for (auto& x : u) x = rng.normal();
  std::vector<double> shifted(u.size()), scaled(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    shifted[i] = u[i] + 42.0;
    scaled[i] = k * u[i];
  }
  EXPECT_NEAR(variance(shifted), variance(u), 1e-9);
  EXPECT_NEAR(variance(scaled), k * k * variance(u), 1e-9 * (1.0 + k * k));
}

INSTANTIATE_TEST_SUITE_P(Scales, VarianceProperty,
                         ::testing::Values(0.5, 1.0, 2.0, 10.0));

}  // namespace
}  // namespace nsync::signal
