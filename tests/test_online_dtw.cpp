// Tests for the on-line DTW extension.
#include <gtest/gtest.h>

#include <cmath>

#include "core/online_dtw.hpp"
#include "signal/rng.hpp"

namespace nsync::core {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

Signal band_noise(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

TEST(OnlineDtw, Validation) {
  Signal empty;
  EXPECT_THROW(OnlineDtw(empty, 8), std::invalid_argument);
  Signal ref = band_noise(100, 1);
  EXPECT_THROW(OnlineDtw(ref, 0), std::invalid_argument);
  OnlineDtw dtw(ref, 8);
  Signal wrong(4, 3, 100.0);
  EXPECT_THROW(dtw.push(wrong), std::invalid_argument);
}

TEST(OnlineDtw, IdenticalSignalStaysOnDiagonal) {
  const Signal b = band_noise(400, 2);
  OnlineDtw dtw(b, 10);
  dtw.push(b);
  ASSERT_EQ(dtw.frames(), 400u);
  for (std::size_t i = 5; i + 5 < dtw.frames(); ++i) {
    EXPECT_NEAR(dtw.h_disp()[i], 0.0, 1.0) << "frame " << i;
    EXPECT_NEAR(dtw.v_dist()[i], 0.0, 1e-9);
  }
}

TEST(OnlineDtw, RecoversConstantShiftWithinBand) {
  const Signal b = band_noise(500, 3);
  Signal a(420, 2, 100.0);
  for (std::size_t n = 0; n < a.frames(); ++n) {
    for (std::size_t c = 0; c < 2; ++c) a(n, c) = b(n + 6, c);
  }
  OnlineDtw dtw(b, 12);
  dtw.push(a);
  // After settling, the alignment follows j = i + 6.
  for (std::size_t i = 50; i + 5 < dtw.frames(); ++i) {
    EXPECT_NEAR(dtw.h_disp()[i], 6.0, 2.0) << "frame " << i;
  }
}

TEST(OnlineDtw, TracksGradualDrift) {
  const Signal b = band_noise(800, 4);
  // Observed plays back the reference 5 % slowly (index 0.95 n).
  Signal a(700, 2, 100.0);
  for (std::size_t n = 0; n < a.frames(); ++n) {
    const auto src = static_cast<std::size_t>(0.95 * static_cast<double>(n));
    for (std::size_t c = 0; c < 2; ++c) a(n, c) = b(src, c);
  }
  OnlineDtw dtw(b, 10);
  dtw.push(a);
  // By the end the displacement approaches -0.05 * 700 = -35.
  EXPECT_NEAR(dtw.h_disp().back(), -35.0, 6.0);
}

TEST(OnlineDtw, IncrementalEqualsOneShot) {
  const Signal b = band_noise(300, 5);
  const Signal a = band_noise(250, 6);
  OnlineDtw one(b, 8);
  one.push(a);
  OnlineDtw chunked(b, 8);
  std::size_t pos = 0;
  for (std::size_t chunk : {3u, 50u, 1u, 120u, 76u}) {
    const std::size_t end = std::min(pos + chunk, a.frames());
    chunked.push(SignalView(a).slice(pos, end));
    pos = end;
  }
  ASSERT_EQ(one.frames(), chunked.frames());
  for (std::size_t i = 0; i < one.frames(); ++i) {
    EXPECT_DOUBLE_EQ(one.h_disp()[i], chunked.h_disp()[i]);
  }
}

TEST(OnlineDtw, ReachesReferenceEnd) {
  // The observed signal replays the whole reference and then keeps going:
  // the alignment must reach the reference end and flag exhaustion.
  const Signal b = band_noise(120, 7);
  Signal a = b;
  a.append(band_noise(200, 8).view());
  OnlineDtw dtw(b, 10);
  dtw.push(a);
  EXPECT_TRUE(dtw.reference_exhausted());
}

class OnlineDtwBandSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OnlineDtwBandSweep, ShiftWithinBandIsRecovered) {
  // Shifts up to ~w/4 are recovered reliably; approaching the band edge the
  // greedy banded search becomes noise-sensitive on smooth signals — DTW's
  // "limited accuracy" pathology the paper reports.
  const std::size_t w = GetParam();
  const Signal b = band_noise(500, 9);
  const std::size_t shift = std::max<std::size_t>(1, w / 4);
  Signal a(400, 2, 100.0);
  for (std::size_t n = 0; n < a.frames(); ++n) {
    for (std::size_t c = 0; c < 2; ++c) a(n, c) = b(n + shift, c);
  }
  OnlineDtw dtw(b, w);
  dtw.push(a);
  EXPECT_NEAR(dtw.h_disp().back(), static_cast<double>(shift), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Bands, OnlineDtwBandSweep,
                         ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace nsync::core
