// Tests for the discriminator (Section VII-B) and OCC threshold learning
// (Section VII-C).
#include <gtest/gtest.h>

#include <cmath>

#include "core/discriminator.hpp"

namespace nsync::core {
namespace {

TEST(ComputeFeatures, CadhdMatchesEq17) {
  const std::vector<double> h_disp = {2.0, 2.0, -1.0, 4.0};
  const std::vector<double> v_dist = {0.1, 0.2, 0.3, 0.4};
  const DetectionFeatures f = compute_features(h_disp, v_dist, 1);
  ASSERT_EQ(f.c_disp.size(), 4u);
  EXPECT_DOUBLE_EQ(f.c_disp[0], 2.0);   // |2 - 0|
  EXPECT_DOUBLE_EQ(f.c_disp[1], 2.0);   // + |2 - 2|
  EXPECT_DOUBLE_EQ(f.c_disp[2], 5.0);   // + |-1 - 2|
  EXPECT_DOUBLE_EQ(f.c_disp[3], 10.0);  // + |4 - (-1)|
}

TEST(ComputeFeatures, HDistIsFilteredAbsolute) {
  const std::vector<double> h_disp = {1.0, -8.0, 1.0, 1.0};
  const std::vector<double> v_dist = {0.0, 0.0, 0.0, 0.0};
  const DetectionFeatures f = compute_features(h_disp, v_dist, 3);
  // |h| = {1, 8, 1, 1}; trailing min over 3 removes the single spike.
  EXPECT_DOUBLE_EQ(f.h_dist_f[0], 1.0);
  EXPECT_DOUBLE_EQ(f.h_dist_f[1], 1.0);
  EXPECT_DOUBLE_EQ(f.h_dist_f[2], 1.0);
  EXPECT_DOUBLE_EQ(f.h_dist_f[3], 1.0);
}

TEST(ComputeFeatures, VDistFiltered) {
  const std::vector<double> h_disp = {0.0};
  const std::vector<double> v_dist = {0.2, 0.9, 0.9, 0.9, 0.9};
  const DetectionFeatures f = compute_features(h_disp, v_dist, 3);
  ASSERT_EQ(f.v_dist_f.size(), 5u);
  // Sustained elevation survives the filter from index 3 on.
  EXPECT_DOUBLE_EQ(f.v_dist_f[4], 0.9);
  EXPECT_DOUBLE_EQ(f.v_dist_f[2], 0.2);
}

TEST(ComputeFeatures, LengthsFollowInputs) {
  const std::vector<double> h(7, 1.0);
  const std::vector<double> v(3, 1.0);
  const DetectionFeatures f = compute_features(h, v, 3);
  EXPECT_EQ(f.c_disp.size(), 7u);
  EXPECT_EQ(f.h_dist_f.size(), 7u);
  EXPECT_EQ(f.v_dist_f.size(), 3u);
  EXPECT_THROW(compute_features(h, v, 0), std::invalid_argument);
}

TEST(FeatureMaxima, HandlesEmptyFeatures) {
  DetectionFeatures f;
  const FeatureMaxima m = feature_maxima(f);
  EXPECT_DOUBLE_EQ(m.c_max, 0.0);
  EXPECT_DOUBLE_EQ(m.h_max, 0.0);
  EXPECT_DOUBLE_EQ(m.v_max, 0.0);
}

TEST(LearnThresholds, MatchesEq26to28) {
  const std::vector<FeatureMaxima> train = {
      {10.0, 1.0, 0.2}, {20.0, 3.0, 0.4}, {15.0, 2.0, 0.3}};
  const Thresholds t = learn_thresholds(train, 0.5);
  // c: max 20, min 10 -> 20 + 0.5 * 10 = 25.
  EXPECT_DOUBLE_EQ(t.c_c, 25.0);
  EXPECT_DOUBLE_EQ(t.h_c, 4.0);
  EXPECT_NEAR(t.v_c, 0.5, 1e-12);
}

TEST(LearnThresholds, RZeroIsTrainingMax) {
  const std::vector<FeatureMaxima> train = {{5.0, 1.0, 0.1},
                                            {7.0, 2.0, 0.3}};
  const Thresholds t = learn_thresholds(train, 0.0);
  EXPECT_DOUBLE_EQ(t.c_c, 7.0);
  EXPECT_DOUBLE_EQ(t.h_c, 2.0);
  EXPECT_DOUBLE_EQ(t.v_c, 0.3);
}

TEST(LearnThresholds, Validation) {
  EXPECT_THROW(learn_thresholds({}, 0.3), std::invalid_argument);
  const std::vector<FeatureMaxima> one = {{1.0, 1.0, 1.0}};
  EXPECT_THROW(learn_thresholds(one, -0.1), std::invalid_argument);
  // A single training signal is legal; the relative-margin floor keeps
  // the threshold strictly above the benign max (range = 0 no longer
  // collapses the margin).
  const Thresholds t = learn_thresholds(one, 0.3);
  EXPECT_DOUBLE_EQ(t.c_c, 1.0 + 0.3 * kMinRelativeSpread);
}

// Regression: with all training maxima identical the raw Eq. 28 spread is
// zero, and pre-fix the critical value sat exactly at the benign max — a
// benign window one ULP above training fired.  The relative floor keeps a
// margin proportional to the max itself.
TEST(LearnThresholds, IdenticalMaximaKeepSafetyMargin) {
  const std::vector<FeatureMaxima> train = {
      {10.0, 2.0, 0.5}, {10.0, 2.0, 0.5}, {10.0, 2.0, 0.5}};
  const Thresholds t = learn_thresholds(train, 0.3);
  EXPECT_GT(t.c_c, 10.0);
  EXPECT_GT(t.h_c, 2.0);
  EXPECT_GT(t.v_c, 0.5);
  EXPECT_DOUBLE_EQ(t.c_c, 10.0 + 0.3 * kMinRelativeSpread * 10.0);
  EXPECT_DOUBLE_EQ(t.h_c, 2.0 + 0.3 * kMinRelativeSpread * 2.0);
  EXPECT_DOUBLE_EQ(t.v_c, 0.5 + 0.3 * kMinRelativeSpread * 0.5);

  // A benign replay whose features sit a hair above the training max (ULP
  // noise, re-quantization) must stay benign.
  DetectionFeatures f;
  f.c_disp = {10.0 * (1.0 + 1e-9)};
  f.h_dist_f = {2.0 * (1.0 + 1e-9)};
  f.v_dist_f = {0.5 * (1.0 + 1e-9)};
  EXPECT_FALSE(discriminate(f, t).intrusion);
}

// The floor only binds on degenerate spreads: a healthy spread larger than
// kMinRelativeSpread * hi reproduces Eq. 28 exactly (MatchesEq26to28
// pins the numbers), and r = 0 still yields the training max.
TEST(LearnThresholds, FloorScalesWithRAndVanishesAtZero) {
  const std::vector<FeatureMaxima> one = {{4.0, 4.0, 4.0}};
  const Thresholds t0 = learn_thresholds(one, 0.0);
  EXPECT_DOUBLE_EQ(t0.c_c, 4.0);
  const Thresholds t1 = learn_thresholds(one, 0.6);
  EXPECT_DOUBLE_EQ(t1.c_c, 4.0 + 0.6 * kMinRelativeSpread * 4.0);
}

TEST(Discriminate, FiresPerSubModule) {
  DetectionFeatures f;
  f.c_disp = {1.0, 2.0, 3.0};
  f.h_dist_f = {0.1, 0.2, 0.1};
  f.v_dist_f = {0.5, 0.9, 0.5};
  Thresholds t{10.0, 1.0, 0.8};  // only v crosses
  const Detection d = discriminate(f, t);
  EXPECT_TRUE(d.intrusion);
  EXPECT_FALSE(d.by_c_disp);
  EXPECT_FALSE(d.by_h_dist);
  EXPECT_TRUE(d.by_v_dist);
  EXPECT_EQ(d.first_alarm_window, 1);
}

TEST(Discriminate, BenignWhenAllBelow) {
  DetectionFeatures f;
  f.c_disp = {1.0};
  f.h_dist_f = {0.1};
  f.v_dist_f = {0.2};
  const Detection d = discriminate(f, {2.0, 0.5, 0.5});
  EXPECT_FALSE(d.intrusion);
  EXPECT_EQ(d.first_alarm_window, -1);
}

TEST(Discriminate, FirstAlarmIsEarliestAcrossSubModules) {
  DetectionFeatures f;
  f.c_disp = {0.0, 0.0, 9.0};   // alarms at 2
  f.h_dist_f = {0.0, 9.0, 0.0};  // alarms at 1
  f.v_dist_f = {0.0, 0.0, 0.0};
  const Detection d = discriminate(f, {1.0, 1.0, 1.0});
  EXPECT_TRUE(d.by_c_disp);
  EXPECT_TRUE(d.by_h_dist);
  EXPECT_FALSE(d.by_v_dist);
  EXPECT_EQ(d.first_alarm_window, 1);
}

TEST(Discriminate, ThresholdIsStrict) {
  DetectionFeatures f;
  f.c_disp = {5.0};
  f.h_dist_f = {1.0};
  f.v_dist_f = {0.5};
  // Equal to the threshold does NOT fire (Eq. 18-20 use strict >).
  const Detection d = discriminate(f, {5.0, 1.0, 0.5});
  EXPECT_FALSE(d.intrusion);
}

class OccSweep : public ::testing::TestWithParam<double> {};

TEST_P(OccSweep, HigherRNeverIncreasesDetections) {
  // Property: raising r raises thresholds, so the set of alarms shrinks
  // monotonically (the FPR/FNR trade of Section VII-C).
  const double r = GetParam();
  const std::vector<FeatureMaxima> train = {
      {10.0, 1.0, 0.2}, {12.0, 1.5, 0.25}, {11.0, 1.2, 0.22}};
  const Thresholds t_low = learn_thresholds(train, 0.0);
  const Thresholds t_high = learn_thresholds(train, r);
  EXPECT_GE(t_high.c_c, t_low.c_c);
  EXPECT_GE(t_high.h_c, t_low.h_c);
  EXPECT_GE(t_high.v_c, t_low.v_c);

  DetectionFeatures probe;
  probe.c_disp = {12.5};
  probe.h_dist_f = {1.4};
  probe.v_dist_f = {0.1};
  const Detection d_low = discriminate(probe, t_low);
  const Detection d_high = discriminate(probe, t_high);
  // If the strict thresholds alarm, the loose ones must too.
  if (d_high.intrusion) EXPECT_TRUE(d_low.intrusion);
}

INSTANTIATE_TEST_SUITE_P(Margins, OccSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace nsync::core
