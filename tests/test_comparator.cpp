// Tests for the comparator: vertical distances for DWM windows, DTW paths
// and the unsynchronized baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "core/comparator.hpp"
#include "signal/rng.hpp"

namespace nsync::core {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;

Signal smooth_noise(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.4 * (rng.normal() - lp0);
    lp1 += 0.4 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

DwmParams params() {
  DwmParams p;
  p.n_win = 32;
  p.n_hop = 16;
  p.n_ext = 8;
  p.n_sigma = 4.0;
  return p;
}

TEST(ComparatorDwm, IdenticalWindowsScoreZero) {
  const Signal b = smooth_noise(400, 1);
  const std::vector<double> h_disp(20, 0.0);
  const auto v = vertical_distances_dwm(b, b, h_disp, params());
  ASSERT_EQ(v.size(), 20u);
  for (double d : v) EXPECT_NEAR(d, 0.0, 1e-9);
}

TEST(ComparatorDwm, CorrectDisplacementRestoresZeroDistance) {
  // a is b shifted by +5; with h_disp = +5 every window matches exactly.
  const Signal b = smooth_noise(500, 2);
  Signal a(400, 2, 100.0);
  for (std::size_t n = 0; n < a.frames(); ++n) {
    for (std::size_t c = 0; c < 2; ++c) {
      a(n, c) = b(n + 5, c);
    }
  }
  const std::vector<double> correct(15, 5.0);
  const auto v_good = vertical_distances_dwm(a, b, correct, params());
  const std::vector<double> wrong(15, 0.0);
  const auto v_bad = vertical_distances_dwm(a, b, wrong, params());
  ASSERT_EQ(v_good.size(), v_bad.size());
  double good = 0.0, bad = 0.0;
  for (std::size_t i = 0; i < v_good.size(); ++i) {
    good += v_good[i];
    bad += v_bad[i];
  }
  EXPECT_NEAR(good, 0.0, 1e-6);
  EXPECT_GT(bad, 0.5);
}

TEST(ComparatorDwm, ClampsDisplacementIntoReference) {
  const Signal a = smooth_noise(96, 3);
  const Signal b = smooth_noise(96, 4);
  // Absurd displacement must clamp, not throw or read out of bounds.
  const std::vector<double> h_disp(3, 1e6);
  const auto v = vertical_distances_dwm(a, b, h_disp, params());
  EXPECT_EQ(v.size(), 3u);
  const std::vector<double> h_neg(3, -1e6);
  EXPECT_EQ(vertical_distances_dwm(a, b, h_neg, params()).size(), 3u);
}

TEST(ComparatorDwm, StopsAtObservedEnd) {
  const Signal a = smooth_noise(50, 5);  // only one full window (32 @ hop 16)
  const Signal b = smooth_noise(200, 6);
  const std::vector<double> h_disp(10, 0.0);  // more entries than windows
  const auto v = vertical_distances_dwm(a, b, h_disp, params());
  EXPECT_EQ(v.size(), 2u);  // windows at 0 and 16 fit; 32+32 > 50
}

TEST(ComparatorDtw, DelegatesToPath) {
  const Signal a = smooth_noise(30, 7);
  const Signal b = smooth_noise(30, 8);
  const WarpPath path = {{0, 0}, {1, 1}, {2, 2}};
  const auto v =
      vertical_distances_dtw(a, b, path, DistanceMetric::kEuclidean);
  ASSERT_EQ(v.size(), 30u);
  EXPECT_NEAR(v[0], frame_distance(a, 0, b, 0, DistanceMetric::kEuclidean),
              1e-12);
}

TEST(ComparatorUnsynced, PointwiseOverlapOnly) {
  const Signal a = smooth_noise(40, 9);
  const Signal b = smooth_noise(60, 10);
  const auto v = vertical_distances_unsynced(a, b, DistanceMetric::kMae);
  EXPECT_EQ(v.size(), 40u);
  const auto v0 = vertical_distances_unsynced(a, a, DistanceMetric::kMae);
  for (double d : v0) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(ComparatorUnsyncedWindows, TimeNoiseInflatesDistance) {
  // The Fig. 2 phenomenon in miniature: a small shift makes window-wise
  // correlation distances blow up even though the content is identical.
  const Signal b = smooth_noise(600, 11);
  Signal shifted(520, 2, 100.0);
  for (std::size_t n = 0; n < shifted.frames(); ++n) {
    for (std::size_t c = 0; c < 2; ++c) {
      shifted(n, c) = b(n + 40, c);  // +40 sample shift (>> feature width)
    }
  }
  const auto aligned = vertical_distances_unsynced_windows(
      b, b, 32, 16, DistanceMetric::kCorrelation);
  const auto misaligned = vertical_distances_unsynced_windows(
      shifted, b, 32, 16, DistanceMetric::kCorrelation);
  double mean_aligned = 0.0, mean_mis = 0.0;
  for (double d : aligned) mean_aligned += d;
  for (double d : misaligned) mean_mis += d;
  mean_aligned /= static_cast<double>(aligned.size());
  mean_mis /= static_cast<double>(misaligned.size());
  EXPECT_NEAR(mean_aligned, 0.0, 1e-9);
  EXPECT_GT(mean_mis, 0.5);
}

TEST(ComparatorUnsyncedWindows, ParameterValidation) {
  const Signal a = smooth_noise(100, 12);
  EXPECT_THROW(vertical_distances_unsynced_windows(a, a, 1, 4,
                                                   DistanceMetric::kMae),
               std::invalid_argument);
  EXPECT_THROW(vertical_distances_unsynced_windows(a, a, 8, 0,
                                                   DistanceMetric::kMae),
               std::invalid_argument);
}

}  // namespace
}  // namespace nsync::core
