// Tests for the firmware executor: trace sampling, thermal model, time
// noise, layer events and trimming.
#include <gtest/gtest.h>

#include <cmath>

#include "gcode/parser.hpp"
#include "printer/simulator.hpp"

namespace nsync::printer {
namespace {

MachineConfig quiet_machine() {
  MachineConfig m = ultimaker3();
  m.time_noise = TimeNoiseConfig::none();
  return m;
}

ExecutorConfig fast_exec() {
  ExecutorConfig cfg;
  cfg.sample_rate = 500.0;
  cfg.tail_padding = 0.1;
  return cfg;
}

TEST(Executor, NoiselessRunsAreIdentical) {
  const auto p = gcode::parse_program(
      "G1 X20 Y5 F3000\nG1 X0 Y10 F3000\nG4 P100\nG1 X5 Y5 F1200\n");
  const MotionTrace a = simulate_print_noiseless(p, quiet_machine(), fast_exec());
  const MotionTrace b = simulate_print_noiseless(p, quiet_machine(), fast_exec());
  ASSERT_EQ(a.samples(), b.samples());
  for (std::size_t i = 0; i < a.samples(); ++i) {
    EXPECT_DOUBLE_EQ(a.x[i], b.x[i]);
    EXPECT_DOUBLE_EQ(a.vx[i], b.vx[i]);
  }
}

TEST(Executor, NoisyRunsDifferInDuration) {
  const auto p = gcode::parse_program(
      "G1 X50 F3000\nG1 X0 F3000\nG1 X50 F3000\nG1 X0 F3000\n"
      "G1 X50 F3000\nG1 X0 F3000\nG1 X50 F3000\nG1 X0 F3000\n");
  MachineConfig m = ultimaker3();  // noisy
  const MotionTrace a = simulate_print(p, m, fast_exec(), 1);
  const MotionTrace b = simulate_print(p, m, fast_exec(), 2);
  EXPECT_NE(a.samples(), b.samples());  // time noise changes the duration
}

TEST(Executor, SameSeedReproduces) {
  const auto p = gcode::parse_program("G1 X50 F3000\nG1 X0 F3000\n");
  MachineConfig m = ultimaker3();
  const MotionTrace a = simulate_print(p, m, fast_exec(), 42);
  const MotionTrace b = simulate_print(p, m, fast_exec(), 42);
  ASSERT_EQ(a.samples(), b.samples());
  for (std::size_t i = 0; i < a.samples(); ++i) {
    EXPECT_DOUBLE_EQ(a.x[i], b.x[i]);
  }
}

TEST(Executor, TraceVectorsShareLength) {
  const auto p = gcode::parse_program("G1 X10 Y10 Z1 E2 F3000\n");
  const MotionTrace t = simulate_print_noiseless(p, quiet_machine(), fast_exec());
  const std::size_t n = t.samples();
  EXPECT_GT(n, 0u);
  EXPECT_EQ(t.y.size(), n);
  EXPECT_EQ(t.z.size(), n);
  EXPECT_EQ(t.vx.size(), n);
  EXPECT_EQ(t.az.size(), n);
  EXPECT_EQ(t.motor_vel[0].size(), n);
  EXPECT_EQ(t.flow.size(), n);
  EXPECT_EQ(t.fan.size(), n);
  EXPECT_EQ(t.hotend_temp.size(), n);
  EXPECT_EQ(t.layer.size(), n);
}

TEST(Executor, PositionReachesTarget) {
  const auto p = gcode::parse_program("G1 X25 Y-10 F3000\n");
  const MotionTrace t = simulate_print_noiseless(p, quiet_machine(), fast_exec());
  EXPECT_NEAR(t.x.back(), 25.0, 1e-6);
  EXPECT_NEAR(t.y.back(), -10.0, 1e-6);
}

TEST(Executor, VelocityIntegratesToDistance) {
  const auto p = gcode::parse_program("G1 X40 F2400\n");
  const MotionTrace t = simulate_print_noiseless(p, quiet_machine(), fast_exec());
  double dist = 0.0;
  for (double v : t.vx) dist += v / t.sample_rate;
  EXPECT_NEAR(dist, 40.0, 0.5);
}

TEST(Executor, DurationMatchesPlanNominal) {
  const auto p = gcode::parse_program("G1 X30 F1800\nG1 X0 F1800\n");
  const MachineConfig m = quiet_machine();
  const MotionPlan plan = plan_program(p, m);
  const MotionTrace t = simulate_print_noiseless(p, m, fast_exec());
  EXPECT_NEAR(t.duration(), plan.nominal_motion_duration() + 0.1, 0.05);
}

TEST(Executor, HeaterWaitsRaiseTemperature) {
  const auto p = gcode::parse_program("M109 S120\nG1 X10 F3000\n");
  const MotionTrace t = simulate_print_noiseless(p, quiet_machine(), fast_exec());
  // By the end of the wait the hotend must be near the setpoint.
  double max_temp = 0.0;
  for (double temp : t.hotend_temp) max_temp = std::max(max_temp, temp);
  EXPECT_GT(max_temp, 115.0);
  EXPECT_LT(max_temp, 130.0);
}

TEST(Executor, HeaterWaitIsCapped) {
  const auto p = gcode::parse_program("M109 S500\n");  // unreachable target
  ExecutorConfig cfg = fast_exec();
  cfg.max_heat_wait = 2.0;
  const MotionTrace t = simulate_print_noiseless(p, quiet_machine(), cfg);
  EXPECT_LT(t.duration(), 3.0);
}

TEST(Executor, FanStateIsRecorded) {
  const auto p = gcode::parse_program("M106 S255\nG1 X10 F3000\nM107\nG4 P100\n");
  const MotionTrace t = simulate_print_noiseless(p, quiet_machine(), fast_exec());
  EXPECT_NEAR(t.fan.front(), 1.0, 1e-9);
  EXPECT_NEAR(t.fan.back(), 0.0, 1e-9);
}

TEST(Executor, LayerEventsInOrder) {
  const auto p = gcode::parse_program(
      ";LAYER:0\nG1 Z0.2 X5 F3000\n;LAYER:1\nG1 Z0.4 X0 F3000\n"
      ";LAYER:2\nG1 Z0.6 X5 F3000\n");
  const MotionTrace t = simulate_print_noiseless(p, quiet_machine(), fast_exec());
  ASSERT_EQ(t.layer_events.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(t.layer_events[i].layer, i);
    if (i > 0) EXPECT_GT(t.layer_events[i].time, t.layer_events[i - 1].time);
  }
  EXPECT_DOUBLE_EQ(t.layer.back(), 2.0);
}

TEST(Executor, DeltaKinematicsMotorsMove) {
  MachineConfig m = rostock_max_v3();
  m.time_noise = TimeNoiseConfig::none();
  const auto p = gcode::parse_program("G1 X20 Y0 F3000\n");
  const MotionTrace t = simulate_print_noiseless(p, m, fast_exec());
  // A pure X move on a delta moves all three carriages.
  double peak[3] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < t.samples(); ++i) {
    for (int j = 0; j < 3; ++j) {
      peak[j] = std::max(peak[j], std::abs(t.motor_vel[j][i]));
    }
  }
  EXPECT_GT(peak[0], 1.0);
  EXPECT_GT(peak[1], 1.0);
  EXPECT_GT(peak[2], 1.0);
}

TEST(TrimTrace, DropsLeadingSamplesAndRebasesEvents) {
  const auto p = gcode::parse_program(
      "G4 P1000\n;LAYER:0\nG1 Z0.2 X5 F3000\n");
  const MotionTrace t = simulate_print_noiseless(p, quiet_machine(), fast_exec());
  ASSERT_FALSE(t.layer_events.empty());
  const double t0 = t.layer_events.front().time;
  EXPECT_GT(t0, 0.9);

  const MotionTrace cut = trim_trace(t, 0.5);
  EXPECT_EQ(cut.samples(), t.samples() - 250u);
  EXPECT_NEAR(cut.layer_events.front().time, t0 - 0.5, 1e-6);

  EXPECT_THROW(trim_trace(t, 1e9), std::invalid_argument);
  // Zero trim is identity.
  EXPECT_EQ(trim_trace(t, 0.0).samples(), t.samples());
}

TEST(TrimToFirstLayer, StartsJustBeforeDeposition) {
  const auto p = gcode::parse_program(
      "G4 P2000\n;LAYER:0\nG1 Z0.2 X5 F3000\nG1 X0 E1 F1200\n");
  const MotionTrace t = simulate_print_noiseless(p, quiet_machine(), fast_exec());
  const MotionTrace cut = trim_to_first_layer(t, 0.25);
  ASSERT_FALSE(cut.layer_events.empty());
  EXPECT_NEAR(cut.layer_events.front().time, 0.25, 0.01);
}

TEST(Executor, RejectsBadSampleRate) {
  const auto p = gcode::parse_program("G1 X1 F3000\n");
  const MotionPlan plan = plan_program(p, quiet_machine());
  ExecutorConfig cfg;
  cfg.sample_rate = 0.0;
  nsync::signal::Rng rng(1);
  EXPECT_THROW(execute_plan(plan, quiet_machine(), cfg, rng),
               std::invalid_argument);
}

class GapNoiseProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GapNoiseProperty, NoiseOnlyStretchesTime) {
  // Whatever the noise realization, the head must still visit the same
  // geometry (same end position, same total travel within tolerance).
  const auto p = gcode::parse_program(
      "G1 X30 Y0 F3000\nG1 X30 Y30 F3000\nG1 X0 Y30 F3000\nG1 X0 Y0 F3000\n");
  MachineConfig m = ultimaker3();
  const MotionTrace t = simulate_print(p, m, fast_exec(), GetParam());
  EXPECT_NEAR(t.x.back(), 0.0, 1e-6);
  EXPECT_NEAR(t.y.back(), 0.0, 1e-6);
  double travel = 0.0;
  for (std::size_t i = 1; i < t.samples(); ++i) {
    travel += std::hypot(t.x[i] - t.x[i - 1], t.y[i] - t.y[i - 1]);
  }
  EXPECT_NEAR(travel, 120.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapNoiseProperty,
                         ::testing::Values(1, 7, 13, 101, 997));

}  // namespace
}  // namespace nsync::printer
