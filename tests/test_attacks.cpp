// Tests for the Table I attack mutators.
#include <gtest/gtest.h>

#include <cmath>

#include "gcode/attacks.hpp"
#include "gcode/slicer.hpp"

namespace nsync::gcode {
namespace {

struct Fixture : public ::testing::Test {
  void SetUp() override {
    cfg.object_height = 1.0;
    cfg.layer_height = 0.2;
    cfg.bed_center_x = 50.0;
    cfg.bed_center_y = 50.0;
    outline = gear_outline(10, 6.5, 8.0);
    benign = slice(outline, cfg);
  }
  SlicerConfig cfg;
  Polygon outline;
  Program benign;
};

using AttackFixture = Fixture;

TEST_F(AttackFixture, AllAttacksListedInTableOrder) {
  const auto& all = all_attacks();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(attack_name(all[0]), "Void");
  EXPECT_EQ(attack_name(all[1]), "InfillGrid");
  EXPECT_EQ(attack_name(all[2]), "Speed0.95");
  EXPECT_EQ(attack_name(all[3]), "Layer0.3");
  EXPECT_EQ(attack_name(all[4]), "Scale0.95");
}

TEST_F(AttackFixture, VoidRemovesMaterialInMiddleBand) {
  const Program voided = attack_void(benign);
  const ProgramStats vb = benign.stats();
  const ProgramStats vv = voided.stats();
  EXPECT_LT(vv.total_extrusion, vb.total_extrusion);
  EXPECT_LT(vv.extruding_moves, vb.extruding_moves);
  // The geometry envelope is untouched.
  EXPECT_NEAR(vv.max_z, vb.max_z, 1e-9);
  EXPECT_EQ(voided.size(), benign.size());
}

TEST_F(AttackFixture, VoidKeepsExtruderAxisContinuous) {
  const Program voided = attack_void(benign);
  double e = 0.0;
  for (const auto& c : voided.commands()) {
    if (c.type == CommandType::kSetPosition && c.e) e = *c.e;
    if (c.is_move() && c.e) {
      EXPECT_GE(*c.e, e - 1e-9) << "E must never jump backwards";
      e = *c.e;
    }
  }
}

TEST_F(AttackFixture, VoidOnlyTouchesConfiguredZBand) {
  const Program voided = attack_void(benign, 0.4, 0.6, 0.5);
  // Compare extrusion per layer: only the middle band may lose material.
  auto extrusion_by_layer = [](const Program& p) {
    std::vector<double> out;
    double e = 0.0, layer_e = 0.0;
    for (const auto& c : p.commands()) {
      if (c.type == CommandType::kComment && c.text.rfind("LAYER:", 0) == 0) {
        out.push_back(layer_e);
        layer_e = 0.0;
      }
      if (c.is_move() && c.e) {
        if (*c.e > e) layer_e += *c.e - e;
        e = *c.e;
      }
    }
    out.push_back(layer_e);
    return out;
  };
  const auto eb = extrusion_by_layer(benign);
  const auto ev = extrusion_by_layer(voided);
  ASSERT_EQ(eb.size(), ev.size());
  // First and last layers untouched (z band is 0.4..0.6 of max z).
  EXPECT_NEAR(ev[1], eb[1], 1e-9);
  EXPECT_NEAR(ev.back(), eb.back(), 1e-9);
}

TEST_F(AttackFixture, VoidRejectsBadFractions) {
  EXPECT_THROW(attack_void(benign, 0.7, 0.3), std::invalid_argument);
  EXPECT_THROW(attack_void(benign, 0.2, 0.8, 0.0), std::invalid_argument);
}

TEST_F(AttackFixture, SpeedScalesAllFeedrates) {
  const Program slow = attack_speed(benign, 0.95);
  ASSERT_EQ(slow.size(), benign.size());
  for (std::size_t i = 0; i < benign.size(); ++i) {
    if (benign[i].is_move() && benign[i].f) {
      EXPECT_NEAR(*slow[i].f, *benign[i].f * 0.95, 1e-9);
    }
  }
  EXPECT_THROW(attack_speed(benign, 0.0), std::invalid_argument);
}

TEST_F(AttackFixture, SpeedPreservesGeometry) {
  const Program slow = attack_speed(benign);
  const ProgramStats a = benign.stats();
  const ProgramStats b = slow.stats();
  EXPECT_NEAR(a.total_xy_travel, b.total_xy_travel, 1e-9);
  EXPECT_NEAR(a.total_extrusion, b.total_extrusion, 1e-9);
}

TEST_F(AttackFixture, ScaleShrinksAboutPartCenter) {
  const Program shrunk = attack_scale(benign, 0.95);
  // Deposition bounding box shrinks by the factor about the part center,
  // not the bed origin.
  auto deposition_bbox = [](const Program& p) {
    double min_x = 1e18, max_x = -1e18;
    double x = 0.0, e = 0.0;
    for (const auto& c : p.commands()) {
      if (!c.is_move()) continue;
      if (c.x) x = *c.x;
      const double ne = c.e.value_or(e);
      if (ne > e) {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
      }
      e = ne;
    }
    return std::pair{min_x, max_x};
  };
  const auto [b_lo, b_hi] = deposition_bbox(benign);
  const auto [s_lo, s_hi] = deposition_bbox(shrunk);
  EXPECT_NEAR(s_hi - s_lo, (b_hi - b_lo) * 0.95, 0.05);
  EXPECT_NEAR((s_lo + s_hi) / 2.0, (b_lo + b_hi) / 2.0, 0.05);
  EXPECT_NEAR(shrunk.stats().max_z, benign.stats().max_z * 0.95, 1e-6);
}

TEST_F(AttackFixture, InfillGridReslicesWithGridPattern) {
  const Program grid = attack_infill_grid(outline, cfg);
  EXPECT_NE(grid.size(), benign.size());
  EXPECT_NE(grid.name().find("InfillGrid"), std::string::npos);
  EXPECT_EQ(grid.layer_starts().size(), benign.layer_starts().size());
}

TEST_F(AttackFixture, LayerHeightChangesLayerCount) {
  const Program thick = attack_layer_height(outline, cfg, 0.3);
  EXPECT_LT(thick.layer_starts().size(), benign.layer_starts().size());
  EXPECT_EQ(thick.layer_starts().size(), 3u);
  EXPECT_THROW(attack_layer_height(outline, cfg, 0.0), std::invalid_argument);
}

TEST_F(AttackFixture, DispatchCoversEveryAttack) {
  for (AttackType a : all_attacks()) {
    const Program p = apply_attack(a, benign, outline, cfg);
    EXPECT_FALSE(p.empty()) << attack_name(a);
    // Every attack must differ from the benign program somewhere.
    bool differs = p.size() != benign.size();
    if (!differs) {
      for (std::size_t i = 0; i < p.size(); ++i) {
        const auto& x = p[i];
        const auto& y = benign[i];
        if (x.type != y.type || x.x != y.x || x.y != y.y || x.z != y.z ||
            x.e != y.e || x.f != y.f) {
          differs = true;
          break;
        }
      }
    }
    EXPECT_TRUE(differs) << attack_name(a) << " left the program unchanged";
  }
}

}  // namespace
}  // namespace nsync::gcode
