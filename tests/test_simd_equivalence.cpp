// SIMD <-> scalar equivalence suite: pins the dispatch layer's per-kernel
// contract (see DESIGN.md "SIMD dispatch layer").
//
//  * Bitwise claims: the radix-2/rfft/irfft pipeline, the cross-correlation
//    bin product, the batched (lane-interleaved) transforms and the TDEB
//    epilogue produce bit-identical results under every compiled-in
//    backend, across a size sweep covering all three planner modes (pow2,
//    even-Bluestein, odd-Bluestein).
//  * ULP-bounded claims: kernels that reassociate a reduction (sum,
//    centered energy, prefix sums) may differ from the scalar backend by
//    at most the standard summation bound |a-b| <= 2*n*eps*sum|terms|,
//    checked here with a conservative relative tolerance.
//  * System claims: the MonitorEngine fleet reaches identical verdicts
//    under every backend, and a checkpoint written under one backend
//    restores and continues under another.
//
// Every test restores the startup backend on exit so suite order cannot
// leak a backend switch into unrelated tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/nsync.hpp"
#include "core/tde.hpp"
#include "dsp/batched_fft.hpp"
#include "dsp/fft.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/xcorr.hpp"
#include "engine/monitor_engine.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"
#include "signal/stats.hpp"

namespace nsync {
namespace {

namespace simd = nsync::dsp::simd;

using nsync::core::NsyncConfig;
using nsync::core::NsyncIds;
using nsync::core::SyncMethod;
using nsync::core::TdeOptions;
using nsync::core::TdeWorkspace;
using nsync::core::Thresholds;
using nsync::dsp::BatchedRfftPlan;
using nsync::dsp::Complex;
using nsync::engine::ChannelSpec;
using nsync::engine::MonitorEngine;
using nsync::engine::SessionSnapshot;
using nsync::engine::SessionSpec;
using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

/// Restores the startup backend when a test scope ends.
class BackendGuard {
 public:
  BackendGuard() : saved_(simd::active_isa()) {}
  ~BackendGuard() { simd::set_backend(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  simd::Isa saved_;
};

/// All backends this binary can actually run on this host.  Always
/// contains kScalar; contains the vector backend when NSYNC_ENABLE_SIMD
/// was ON and the host supports it.
std::vector<simd::Isa> available_backends() {
  std::vector<simd::Isa> out = {simd::Isa::kScalar};
  for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (simd::backend_available(isa)) out.push_back(isa);
  }
  return out;
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

// Sizes covering every planner mode: powers of two, even non-pow2
// (even-Bluestein: the odd half forces the Bluestein path), and odd
// (odd-Bluestein), plus the n = 1 degenerate.
const std::size_t kSweepSizes[] = {1, 2, 4, 8, 64, 256,  // pow2
                                   6, 20, 52, 100,       // even Bluestein
                                   3, 17, 81};           // odd Bluestein

// ---------------------------------------------------------------------------
// Dispatch smoke

TEST(SimdDispatch, ResolvedBackendMatchesHost) {
  // Startup resolution picks the best compiled-in backend the host
  // supports, unless NSYNC_SIMD overrode it (CI sets it for the scalar
  // matrix leg, so honor the override here).
  const char* env = std::getenv("NSYNC_SIMD");
  if (env == nullptr) {
    EXPECT_EQ(simd::active_isa(), simd::best_supported_isa());
  }
  EXPECT_TRUE(simd::backend_available(simd::Isa::kScalar));
  EXPECT_TRUE(simd::backend_available(simd::best_supported_isa()));
  EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_EQ(std::string(simd::isa_name(simd::active_isa())),
            std::string(simd::ops().name));
  if (!simd::built_with_simd()) {
    EXPECT_EQ(simd::best_supported_isa(), simd::Isa::kScalar);
  }
}

TEST(SimdDispatch, SetBackendSwitchesAndRejectsUnavailable) {
  BackendGuard guard;
  ASSERT_TRUE(simd::set_backend(simd::Isa::kScalar));
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (simd::backend_available(isa)) {
      EXPECT_TRUE(simd::set_backend(isa));
      EXPECT_EQ(simd::active_isa(), isa);
    } else {
      const simd::Isa before = simd::active_isa();
      EXPECT_FALSE(simd::set_backend(isa));
      EXPECT_EQ(simd::active_isa(), before);  // failed switch is a no-op
    }
  }
}

// ---------------------------------------------------------------------------
// Bitwise kernels

TEST(SimdBitwise, RfftIdenticalAcrossBackendsAllPlannerModes) {
  BackendGuard guard;
  const auto backends = available_backends();
  for (const std::size_t n : kSweepSizes) {
    const std::vector<double> x = random_vector(n, 0xF00 + n);
    ASSERT_TRUE(simd::set_backend(simd::Isa::kScalar));
    const std::vector<Complex> ref = nsync::dsp::rfft(x);
    for (const simd::Isa isa : backends) {
      ASSERT_TRUE(simd::set_backend(isa));
      const std::vector<Complex> got = nsync::dsp::rfft(x);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t k = 0; k < ref.size(); ++k) {
        EXPECT_EQ(got[k].real(), ref[k].real())
            << "n=" << n << " k=" << k << " isa=" << simd::isa_name(isa);
        EXPECT_EQ(got[k].imag(), ref[k].imag())
            << "n=" << n << " k=" << k << " isa=" << simd::isa_name(isa);
      }
    }
  }
}

TEST(SimdBitwise, IrfftRoundTripIdenticalAcrossBackends) {
  BackendGuard guard;
  const auto backends = available_backends();
  // irfft supports pow2 sizes (the only sizes the pipeline inverts).
  for (const std::size_t n : {std::size_t{2}, std::size_t{8}, std::size_t{64},
                              std::size_t{256}}) {
    const std::vector<double> x = random_vector(n, 0xABC + n);
    ASSERT_TRUE(simd::set_backend(simd::Isa::kScalar));
    const std::vector<Complex> bins = nsync::dsp::rfft(x);
    const std::vector<double> ref = nsync::dsp::irfft(bins, n);
    for (const simd::Isa isa : backends) {
      ASSERT_TRUE(simd::set_backend(isa));
      const std::vector<double> got = nsync::dsp::irfft(bins, n);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i], ref[i])
            << "n=" << n << " i=" << i << " isa=" << simd::isa_name(isa);
      }
    }
  }
}

TEST(SimdBitwise, CrossCorrelateValidIdenticalAcrossBackends) {
  BackendGuard guard;
  const auto backends = available_backends();
  for (const std::size_t ny : {std::size_t{7}, std::size_t{32}}) {
    const std::vector<double> x = random_vector(257, 0xC0 + ny);
    const std::vector<double> y = random_vector(ny, 0xD0 + ny);
    ASSERT_TRUE(simd::set_backend(simd::Isa::kScalar));
    const std::vector<double> ref = nsync::dsp::cross_correlate_valid(x, y);
    for (const simd::Isa isa : backends) {
      ASSERT_TRUE(simd::set_backend(isa));
      const std::vector<double> got = nsync::dsp::cross_correlate_valid(x, y);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(got[i], ref[i]) << "i=" << i
                                  << " isa=" << simd::isa_name(isa);
      }
    }
  }
}

TEST(SimdBitwise, TdebEpilogueSameArgmaxAcrossBackends) {
  BackendGuard guard;
  const auto backends = available_backends();
  Signal x(400, 2, 100.0);
  Signal y(60, 2, 100.0);
  {
    Rng rng(31);
    for (std::size_t n = 0; n < x.frames(); ++n)
      for (std::size_t c = 0; c < 2; ++c) x(n, c) = rng.normal();
    for (std::size_t n = 0; n < y.frames(); ++n)
      for (std::size_t c = 0; c < 2; ++c) y(n, c) = x(n + 100, c);
  }
  ASSERT_TRUE(simd::set_backend(simd::Isa::kScalar));
  TdeWorkspace ws_ref;
  const std::size_t ref = nsync::core::estimate_delay_biased(
      SignalView(x), SignalView(y), 100.0, 12.0, TdeOptions{}, ws_ref);
  EXPECT_EQ(ref, 100u);  // sanity: the planted delay wins
  for (const simd::Isa isa : backends) {
    ASSERT_TRUE(simd::set_backend(isa));
    TdeWorkspace ws;
    EXPECT_EQ(nsync::core::estimate_delay_biased(SignalView(x), SignalView(y),
                                                 100.0, 12.0, TdeOptions{}, ws),
              ref)
        << simd::isa_name(isa);
  }
}

// ---------------------------------------------------------------------------
// Batched transforms

TEST(SimdBatched, ForwardMatchesPerLaneRfftBitwise) {
  BackendGuard guard;
  const auto backends = available_backends();
  const std::size_t lanes = 3;
  for (const std::size_t n : kSweepSizes) {
    std::vector<std::vector<double>> lane_data;
    for (std::size_t l = 0; l < lanes; ++l) {
      lane_data.push_back(random_vector(n, 0xB000 + n * 8 + l));
    }
    for (const simd::Isa isa : backends) {
      ASSERT_TRUE(simd::set_backend(isa));
      BatchedRfftPlan plan(n, lanes);
      const std::size_t bins = plan.bins();
      // Strided pack: lane l starts at x + l * n.
      std::vector<double> packed(n * lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        std::copy(lane_data[l].begin(), lane_data[l].end(),
                  packed.begin() + l * n);
      }
      std::vector<double> sre(bins * lanes);
      std::vector<double> sim(bins * lanes);
      plan.forward(packed.data(), n, sre.data(), sim.data());
      for (std::size_t l = 0; l < lanes; ++l) {
        const std::vector<Complex> ref = nsync::dsp::rfft(lane_data[l]);
        for (std::size_t k = 0; k < bins; ++k) {
          EXPECT_EQ(sre[k * lanes + l], ref[k].real())
              << "n=" << n << " l=" << l << " k=" << k << " "
              << simd::isa_name(isa);
          EXPECT_EQ(sim[k * lanes + l], ref[k].imag())
              << "n=" << n << " l=" << l << " k=" << k << " "
              << simd::isa_name(isa);
        }
      }
      // Interleaved pack produces the same spectra.
      std::vector<double> inter(n * lanes);
      for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t l = 0; l < lanes; ++l) {
          inter[k * lanes + l] = lane_data[l][k];
        }
      }
      std::vector<double> sre2(bins * lanes);
      std::vector<double> sim2(bins * lanes);
      plan.forward_interleaved(inter.data(), sre2.data(), sim2.data());
      EXPECT_EQ(sre2, sre) << "n=" << n << " " << simd::isa_name(isa);
      EXPECT_EQ(sim2, sim) << "n=" << n << " " << simd::isa_name(isa);
    }
  }
}

TEST(SimdBatched, InverseMatchesPerLaneIrfftBitwise) {
  BackendGuard guard;
  const auto backends = available_backends();
  const std::size_t lanes = 4;
  for (const std::size_t n : {std::size_t{8}, std::size_t{64},
                              std::size_t{128}}) {
    for (const simd::Isa isa : backends) {
      ASSERT_TRUE(simd::set_backend(isa));
      BatchedRfftPlan plan(n, lanes);
      ASSERT_TRUE(plan.supports_inverse());
      const std::size_t bins = plan.bins();
      std::vector<double> sre(bins * lanes);
      std::vector<double> sim(bins * lanes);
      std::vector<std::vector<Complex>> lane_bins(lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        lane_bins[l] = nsync::dsp::rfft(random_vector(n, 0xE00 + n + l));
        for (std::size_t k = 0; k < bins; ++k) {
          sre[k * lanes + l] = lane_bins[l][k].real();
          sim[k * lanes + l] = lane_bins[l][k].imag();
        }
      }
      std::vector<double> out(n * lanes);
      plan.inverse(sre.data(), sim.data(), out.data(), n);
      for (std::size_t l = 0; l < lanes; ++l) {
        const std::vector<double> ref = nsync::dsp::irfft(lane_bins[l], n);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(out[l * n + i], ref[i])
              << "n=" << n << " l=" << l << " i=" << i << " "
              << simd::isa_name(isa);
        }
      }
    }
  }
}

TEST(SimdBatched, InverseThrowsForNonPow2) {
  BatchedRfftPlan plan(20, 2);
  EXPECT_FALSE(plan.supports_inverse());
  std::vector<double> sre(plan.bins() * 2), sim(plan.bins() * 2), out(40);
  EXPECT_THROW(plan.inverse(sre.data(), sim.data(), out.data(), 20),
               std::logic_error);
}

TEST(SimdBatched, MultichannelTdeMatchesSequentialScalarBitwise) {
  // The batched TDE path claims bitwise equality with the historical
  // sequential per-channel loop *under the scalar backend* (vector
  // backends reassociate the 1-D reductions of the sequential path, so
  // cross-path comparison there is ULP-level, covered below).
  BackendGuard guard;
  ASSERT_TRUE(simd::set_backend(simd::Isa::kScalar));
  Rng rng(77);
  const std::size_t C = 3;
  Signal x(300, C, 100.0);
  Signal y(48, C, 100.0);
  for (std::size_t n = 0; n < x.frames(); ++n)
    for (std::size_t c = 0; c < C; ++c) x(n, c) = rng.normal();
  for (std::size_t n = 0; n < y.frames(); ++n)
    for (std::size_t c = 0; c < C; ++c) y(n, c) = x(n + 91, c) + 0.05 * rng.normal();

  // Batched path (channels > 1, use_fft).
  const std::vector<double> batched =
      nsync::core::similarity_scores(SignalView(x), SignalView(y));

  // Sequential reference: per-channel sliding_pearson_fft, averaged —
  // exactly what similarity_scores used to run.
  const std::size_t n_out = x.frames() - y.frames() + 1;
  std::vector<double> seq(n_out, 0.0);
  std::vector<double> xc(x.frames()), yc(y.frames());
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t n = 0; n < x.frames(); ++n) xc[n] = x(n, c);
    for (std::size_t n = 0; n < y.frames(); ++n) yc[n] = y(n, c);
    const std::vector<double> s = nsync::dsp::sliding_pearson_fft(xc, yc);
    for (std::size_t n = 0; n < n_out; ++n) seq[n] += s[n];
  }
  for (auto& v : seq) v *= 1.0 / static_cast<double>(C);

  ASSERT_EQ(batched.size(), seq.size());
  for (std::size_t n = 0; n < n_out; ++n) {
    EXPECT_EQ(batched[n], seq[n]) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// ULP-bounded kernels

// Conservative check of the reassociation bound: for data of magnitude
// ~O(1) and n <= 4096, 2*n*eps*sum|terms| is far below 1e-9 relative.
void expect_ulp_close(double a, double b, double scale, const char* what) {
  EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(scale)))
      << what << ": " << a << " vs " << b;
}

TEST(SimdUlpBounded, StatsMomentsCloseAcrossBackends) {
  BackendGuard guard;
  const auto backends = available_backends();
  const std::vector<double> u = random_vector(4096, 0x51);
  const std::vector<double> v = random_vector(4096, 0x52);
  ASSERT_TRUE(simd::set_backend(simd::Isa::kScalar));
  const double mean_ref = nsync::signal::mean(u);
  const double var_ref = nsync::signal::variance(u);
  const double rms_ref = nsync::signal::rms(u);
  const double pear_ref = nsync::signal::pearson(u, v);
  for (const simd::Isa isa : backends) {
    ASSERT_TRUE(simd::set_backend(isa));
    expect_ulp_close(nsync::signal::mean(u), mean_ref, 1.0, "mean");
    expect_ulp_close(nsync::signal::variance(u), var_ref, var_ref, "variance");
    expect_ulp_close(nsync::signal::rms(u), rms_ref, rms_ref, "rms");
    expect_ulp_close(nsync::signal::pearson(u, v), pear_ref, 1.0, "pearson");
  }
}

TEST(SimdUlpBounded, SlidingPearsonCloseAcrossBackends) {
  BackendGuard guard;
  const auto backends = available_backends();
  const std::vector<double> x = random_vector(1000, 0x61);
  std::vector<double> y(64);
  std::copy_n(x.begin() + 300, y.size(), y.begin());
  ASSERT_TRUE(simd::set_backend(simd::Isa::kScalar));
  const std::vector<double> ref = nsync::dsp::sliding_pearson_fft(x, y);
  for (const simd::Isa isa : backends) {
    ASSERT_TRUE(simd::set_backend(isa));
    const std::vector<double> got = nsync::dsp::sliding_pearson_fft(x, y);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t n = 0; n < ref.size(); ++n) {
      // Scores are correlations in [-1, 1]; the prefix-sum and energy
      // reassociation perturbs them by well under 1e-9.
      EXPECT_NEAR(got[n], ref[n], 1e-9)
          << "n=" << n << " isa=" << simd::isa_name(isa);
    }
    // The planted-match argmax never moves.
    EXPECT_EQ(std::max_element(got.begin(), got.end()) - got.begin(),
              std::max_element(ref.begin(), ref.end()) - ref.begin());
  }
}

// ---------------------------------------------------------------------------
// System-level equivalence (MonitorEngine fleet, checkpoints)

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
  }
  return a;
}

NsyncConfig dwm_config() {
  NsyncConfig cfg;
  cfg.sync = SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;
  cfg.r = 0.3;
  return cfg;
}

class SimdFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fit thresholds once, under the scalar backend, so every engine in
    // the test shares identical thresholds and only the monitoring
    // backend varies.
    BackendGuard guard;
    ASSERT_TRUE(simd::set_backend(simd::Isa::kScalar));
    cfg_ = dwm_config();
    reference_ = make_reference(1500, 77);
    NsyncIds ids(reference_, cfg_);
    std::vector<Signal> train;
    for (std::uint64_t s = 1; s <= 3; ++s) {
      train.push_back(benign_observation(reference_, s));
    }
    ids.fit(train);
    thresholds_ = ids.thresholds();
  }

  SessionSpec make_session(const std::string& name) const {
    SessionSpec spec;
    spec.name = name;
    for (const char* ch : {"ACC", "AUD"}) {
      ChannelSpec c;
      c.name = ch;
      c.reference = reference_;
      c.config = cfg_;
      c.thresholds = thresholds_;
      spec.channels.push_back(std::move(c));
    }
    return spec;
  }

  MonitorEngine make_engine() const {
    MonitorEngine eng;
    eng.add_session(make_session("benign"));
    eng.add_session(make_session("malicious"));
    return eng;
  }

  // Feeds observation chunks [from, to) of `chunk` frames to both
  // sessions (session 0 benign, session 1 malicious) and polls.
  void feed_rounds(MonitorEngine& eng, const Signal& benign,
                   const Signal& malicious, std::size_t chunk,
                   std::size_t from, std::size_t to) const {
    for (std::size_t r = from; r < to; ++r) {
      const std::size_t lo = r * chunk;
      if (lo >= benign.frames()) break;
      const std::size_t hi = std::min(benign.frames(), lo + chunk);
      for (const char* ch : {"ACC", "AUD"}) {
        eng.feed(0, ch, SignalView(benign).slice(lo, hi));
        eng.feed(1, ch, SignalView(malicious).slice(lo, hi));
      }
      eng.poll();
    }
    eng.poll();
  }

  NsyncConfig cfg_;
  Signal reference_;
  Thresholds thresholds_;
};

TEST_F(SimdFleetTest, FleetVerdictsIdenticalAcrossBackends) {
  BackendGuard guard;
  const Signal benign = benign_observation(reference_, 9);
  const Signal malicious = malicious_observation(reference_, 9);
  const std::size_t chunk = 113;
  const std::size_t rounds = benign.frames() / chunk + 1;

  std::vector<SessionSnapshot> ref_snaps;
  for (const simd::Isa isa : available_backends()) {
    ASSERT_TRUE(simd::set_backend(isa));
    MonitorEngine eng = make_engine();
    feed_rounds(eng, benign, malicious, chunk, 0, rounds);
    const auto snaps = eng.snapshots();
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_FALSE(snaps[0].intrusion) << simd::isa_name(isa);
    EXPECT_TRUE(snaps[1].intrusion) << simd::isa_name(isa);
    if (ref_snaps.empty()) {
      ref_snaps = snaps;
      continue;
    }
    for (std::size_t s = 0; s < snaps.size(); ++s) {
      EXPECT_EQ(snaps[s].intrusion, ref_snaps[s].intrusion)
          << "session " << s << " " << simd::isa_name(isa);
      EXPECT_EQ(snaps[s].first_alarm_window, ref_snaps[s].first_alarm_window)
          << "session " << s << " " << simd::isa_name(isa);
      ASSERT_EQ(snaps[s].channels.size(), ref_snaps[s].channels.size());
      for (std::size_t c = 0; c < snaps[s].channels.size(); ++c) {
        EXPECT_EQ(snaps[s].channels[c].health, ref_snaps[s].channels[c].health)
            << "session " << s << " channel " << c << " "
            << simd::isa_name(isa);
      }
    }
  }
}

TEST_F(SimdFleetTest, CheckpointWrittenUnderOneBackendRestoresUnderAnother) {
  // A checkpoint carries only signal/feature state, never backend
  // identity, so a fleet checkpointed on an AVX2 host must restore and
  // keep detecting on a scalar-only host (and vice versa).
  BackendGuard guard;
  if (simd::best_supported_isa() == simd::Isa::kScalar) {
    GTEST_SKIP() << "no vector backend compiled in / supported";
  }
  const std::string path = ::testing::TempDir() + "simd-xbackend.nckp";
  const Signal benign = benign_observation(reference_, 9);
  const Signal malicious = malicious_observation(reference_, 9);
  const std::size_t chunk = 113;
  const std::size_t rounds = benign.frames() / chunk + 1;
  const std::size_t kill = rounds / 2;

  ASSERT_TRUE(simd::set_backend(simd::best_supported_isa()));
  {
    MonitorEngine victim = make_engine();
    feed_rounds(victim, benign, malicious, chunk, 0, kill);
    victim.checkpoint(path);
  }
  ASSERT_TRUE(simd::set_backend(simd::Isa::kScalar));
  MonitorEngine revived = MonitorEngine::restore(path);
  feed_rounds(revived, benign, malicious, chunk, kill, rounds);
  const auto snaps = revived.snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_FALSE(snaps[0].intrusion);
  EXPECT_TRUE(snaps[1].intrusion);
  EXPECT_GE(snaps[1].first_alarm_window, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nsync
