// Tests for the crash-safe checkpoint subsystem: the byte codec and
// container framing, per-class save/restore round-trips, typed rejection
// of malformed files, write atomicity, and the headline recovery property
// — kill the fleet at any point, restore the last checkpoint, replay the
// frames fed since, and every detection, health state, fused verdict and
// first_alarm_window is bitwise identical to a run that never stopped.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/detection_core.hpp"
#include "core/fusion.hpp"
#include "core/health.hpp"
#include "core/nsync.hpp"
#include "engine/monitor_engine.hpp"
#include "engine/session_codec.hpp"
#include "runtime/thread_pool.hpp"
#include "sensors/fault_injector.hpp"
#include "signal/checkpoint.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace nsync {
namespace {

using nsync::core::ChannelHealth;
using nsync::core::ChannelHealthMonitor;
using nsync::core::DetectionCore;
using nsync::core::NsyncConfig;
using nsync::core::NsyncIds;
using nsync::core::RealtimeMonitor;
using nsync::core::StreamingMinFilter;
using nsync::core::SyncMethod;
using nsync::core::Thresholds;
using nsync::engine::ChannelSpec;
using nsync::engine::MonitorEngine;
using nsync::engine::MonitorEngineOptions;
using nsync::engine::SessionSnapshot;
using nsync::engine::SessionSpec;
using nsync::signal::ByteReader;
using nsync::signal::ByteWriter;
using nsync::signal::CheckpointError;
using nsync::signal::CheckpointErrorKind;
using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// Codec and container

TEST(Crc32, MatchesKnownVector) {
  // The canonical CRC-32/IEEE check value.
  const char* s = "123456789";
  EXPECT_EQ(nsync::signal::crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(nsync::signal::crc32(s, 0), 0x00000000u);
}

TEST(ByteCodec, PodArrayStringSignalRoundTrip) {
  ByteWriter w;
  w.pod<std::uint64_t>(0xDEADBEEFCAFEF00Dull);
  w.pod<double>(-0.0);
  const std::vector<double> doubles = {1.5, -2.25, 0.0, 1e-300};
  w.f64_array(doubles);
  const std::vector<std::uint8_t> bytes = {0, 1, 255};
  w.u8_array(bytes);
  w.str("channel/ACC");
  Signal sig(5, 2, 250.0);
  for (std::size_t n = 0; n < 5; ++n) {
    sig(n, 0) = static_cast<double>(n);
    sig(n, 1) = -static_cast<double>(n);
  }
  w.signal(SignalView(sig));

  ByteReader r(w.data());
  EXPECT_EQ(r.pod<std::uint64_t>(), 0xDEADBEEFCAFEF00Dull);
  const double neg_zero = r.pod<double>();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // raw-bit round-trip, not text
  EXPECT_EQ(r.f64_array(), doubles);
  EXPECT_EQ(r.u8_array(), bytes);
  EXPECT_EQ(r.str(), "channel/ACC");
  const Signal back = r.signal();
  ASSERT_EQ(back.frames(), sig.frames());
  ASSERT_EQ(back.channels(), sig.channels());
  EXPECT_EQ(back.sample_rate(), sig.sample_rate());
  for (std::size_t n = 0; n < 5; ++n) {
    EXPECT_EQ(back(n, 0), sig(n, 0));
    EXPECT_EQ(back(n, 1), sig(n, 1));
  }
  EXPECT_NO_THROW(r.finish());
}

TEST(ByteCodec, ReaderRejectsTruncationAndTrailingGarbage) {
  ByteWriter w;
  w.pod<std::uint32_t>(42);
  {
    ByteReader r(w.data());
    EXPECT_THROW((void)r.pod<std::uint64_t>(), CheckpointError);
  }
  {
    // Array length field claiming more elements than bytes remain.
    ByteWriter w2;
    w2.pod<std::uint64_t>(1u << 30);  // "2^30 doubles follow" (they don't)
    ByteReader r(w2.data());
    try {
      (void)r.f64_array();
      FAIL() << "oversized array accepted";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointErrorKind::kTruncated);
    }
  }
  {
    ByteReader r(w.data());
    (void)r.pod<std::uint16_t>();
    try {
      r.finish();
      FAIL() << "trailing bytes accepted";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt);
    }
  }
}

TEST(ByteCodec, SignalRejectsOverflowingFrameByChannelProduct) {
  // Forged header: frames = 2^62, channels = 4, zero samples.  The naive
  // `frames * channels` check wraps to 0 and would accept a Signal that
  // claims 2^62 frames over no backing storage — every later window read
  // would be a heap out-of-bounds access.
  ByteWriter w;
  w.pod<std::uint64_t>(1ull << 62);  // frames
  w.pod<std::uint64_t>(4);           // channels
  w.pod<double>(100.0);              // sample rate
  w.f64_array({});                   // zero samples
  ByteReader r(w.data());
  try {
    (void)r.signal();
    FAIL() << "overflowing frames*channels accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt);
  }

  // Sample count that is not a whole number of frames is equally corrupt.
  ByteWriter w2;
  w2.pod<std::uint64_t>(2);  // frames
  w2.pod<std::uint64_t>(3);  // channels
  w2.pod<double>(100.0);
  w2.f64_array(std::vector<double>(5, 0.0));  // 5 % 3 != 0
  ByteReader r2(w2.data());
  try {
    (void)r2.signal();
    FAIL() << "ragged sample count accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt);
  }
}

TEST(RingBufferCheckpoint, RestoreRejectsOverflowingSpan) {
  // Forged blob: empty retained vector under a [start, end) span of 2^63
  // frames.  `(end - start) * channels_` wraps to 0 for channels_ == 2,
  // which would admit a ring claiming ~2^63 retained frames over empty
  // storage.
  nsync::signal::FrameRingBuffer rb(2, 100.0);
  ByteWriter w;
  w.pod<std::uint64_t>(2);            // channels
  w.pod<double>(100.0);               // sample rate
  w.pod<std::uint64_t>(0);            // start
  w.pod<std::uint64_t>(1ull << 63);   // end
  w.f64_array({});                    // empty retained data
  ByteReader r(w.data());
  try {
    rb.restore_state(r);
    FAIL() << "overflowing retained span accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt);
  }
  EXPECT_EQ(rb.retained_frames(), 0u);  // unchanged by the failed restore
}

TEST(ByteCodec, SectionsFrameAndValidateTheirPayload) {
  ByteWriter w;
  const std::size_t tok = w.begin_section(7);
  w.pod<std::uint32_t>(123);
  w.end_section(tok);
  w.pod<std::uint8_t>(9);  // sibling data after the section

  ByteReader r(w.data());
  ByteReader inner = r.section(7);
  EXPECT_EQ(inner.pod<std::uint32_t>(), 123u);
  EXPECT_NO_THROW(inner.finish());
  EXPECT_EQ(r.pod<std::uint8_t>(), 9);

  // Wrong id is a structural error.
  ByteReader r2(w.data());
  try {
    (void)r2.section(8);
    FAIL() << "wrong section id accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt);
  }
}

TEST(Container, FramesAndValidates) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<std::uint8_t> file = nsync::signal::frame_checkpoint(payload);
  const auto back = nsync::signal::unframe_checkpoint(file);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), back.begin(),
                         back.end()));

  auto expect_kind = [](std::vector<std::uint8_t> f, CheckpointErrorKind k,
                        const char* what) {
    try {
      (void)nsync::signal::unframe_checkpoint(f);
      FAIL() << what << " accepted";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), k) << what << ": " << e.what();
    }
  };
  // Bad magic.
  {
    auto f = file;
    f[0] ^= 0xFF;
    expect_kind(f, CheckpointErrorKind::kBadMagic, "bad magic");
  }
  // Future version.
  {
    auto f = file;
    f[4] = 99;
    expect_kind(f, CheckpointErrorKind::kBadVersion, "bad version");
  }
  // Truncations at every prefix length.
  for (std::size_t n = 0; n < file.size(); ++n) {
    expect_kind({file.begin(), file.begin() + static_cast<std::ptrdiff_t>(n)},
                CheckpointErrorKind::kTruncated, "truncated file");
  }
  // Payload corruption must fail the CRC.
  {
    auto f = file;
    f[16 + 2] ^= 0x01;
    expect_kind(f, CheckpointErrorKind::kCorrupt, "flipped payload bit");
  }
  // CRC corruption too.
  {
    auto f = file;
    f.back() ^= 0x01;
    expect_kind(f, CheckpointErrorKind::kCorrupt, "flipped crc bit");
  }
}

TEST(Container, AtomicReplaceKeepsPreviousCheckpointOnFailure) {
  const std::string path = temp_path("atomic.nckp");
  const std::vector<std::uint8_t> first = {10, 20, 30};
  nsync::signal::write_checkpoint_file(path, first);
  ASSERT_EQ(nsync::signal::read_checkpoint_file(path), first);

  // Simulate a crash mid-write: a half-written tmp file next to the real
  // checkpoint.  The previous checkpoint must stay loadable, and the next
  // successful write must replace both.
  {
    std::ofstream tmp(path + ".tmp", std::ios::binary);
    tmp << "garbage-partial-write";
  }
  EXPECT_EQ(nsync::signal::read_checkpoint_file(path), first);

  const std::vector<std::uint8_t> second = {7, 7, 7, 7};
  nsync::signal::write_checkpoint_file(path, second);
  EXPECT_EQ(nsync::signal::read_checkpoint_file(path), second);

  // Unwritable directory -> kIo, file untouched.
  try {
    nsync::signal::write_checkpoint_file(
        temp_path("no-such-dir/x/y/z.nckp"), second);
    FAIL() << "write into missing directory succeeded";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kIo);
  }
  std::remove((path + ".tmp").c_str());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Per-class round-trips

TEST(RngCheckpoint, StreamContinuesExactly) {
  Rng rng(1234);
  for (int i = 0; i < 100; ++i) (void)rng.normal();
  const std::string state = rng.save_state();
  std::vector<double> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(rng.normal());

  Rng other(999);
  other.restore_state(state);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(other.normal(), expected[static_cast<std::size_t>(i)]);
  }
  EXPECT_THROW(other.restore_state("not an engine state"),
               std::invalid_argument);
}

TEST(MinFilterCheckpoint, ContinuesBitwiseAndRejectsGarbage) {
  Rng rng(5);
  StreamingMinFilter a(7);
  for (int i = 0; i < 40; ++i) (void)a.push(rng.normal());

  ByteWriter w;
  a.save_state(w);
  StreamingMinFilter b(7);
  {
    ByteReader r(w.data());
    b.restore_state(r);
    r.finish();
  }
  Rng tail_rng(17);
  for (int i = 0; i < 30; ++i) {
    const double x = tail_rng.normal();
    EXPECT_EQ(a.push(x), b.push(x)) << "sample " << i;
  }

  // Different window -> kMismatch; mangled payload -> kCorrupt.
  StreamingMinFilter c(8);
  {
    ByteReader r(w.data());
    try {
      c.restore_state(r);
      FAIL() << "window mismatch accepted";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointErrorKind::kMismatch);
    }
  }
  {
    auto bytes = std::vector<std::uint8_t>(w.data().begin(), w.data().end());
    bytes[8] ^= 0xFF;  // clobber next_/size_ region
    ByteReader r(bytes);
    StreamingMinFilter d(7);
    EXPECT_THROW(d.restore_state(r), CheckpointError);
  }
}

TEST(HealthCheckpoint, StreaksResumeInsteadOfResetting) {
  core::HealthPolicy policy;
  policy.history = 16;
  policy.degraded_fraction = 0.25;
  policy.offline_consecutive = 6;
  policy.recovery_consecutive = 8;

  // Drive the monitor offline, then partway through recovery.
  ChannelHealthMonitor a(policy);
  for (int i = 0; i < 10; ++i) a.observe(false);
  ASSERT_EQ(a.state(), ChannelHealth::kOffline);
  for (int i = 0; i < 5; ++i) a.observe(true);
  ASSERT_EQ(a.state(), ChannelHealth::kOffline);  // 5 of 8 needed
  ASSERT_EQ(a.valid_streak(), 5u);

  ByteWriter w;
  a.save_state(w);
  ChannelHealthMonitor b(policy);
  {
    ByteReader r(w.data());
    b.restore_state(r);
    r.finish();
  }
  // The hysteresis counter must resume at 5, not restart at 0: exactly 3
  // more valid windows reach recovery_consecutive and promote the channel.
  EXPECT_EQ(b.valid_streak(), 5u);
  b.observe(true);
  b.observe(true);
  EXPECT_EQ(b.state(), ChannelHealth::kOffline);
  b.observe(true);
  EXPECT_EQ(b.state(), ChannelHealth::kDegraded);
  // And the uninterrupted monitor agrees window for window.
  a.observe(true);
  a.observe(true);
  a.observe(true);
  EXPECT_EQ(a.state(), b.state());
  EXPECT_EQ(a.invalid_fraction(), b.invalid_fraction());

  // Different policy -> kMismatch.
  core::HealthPolicy other = policy;
  other.recovery_consecutive = 9;
  ChannelHealthMonitor c(other);
  ByteReader r(w.data());
  try {
    c.restore_state(r);
    FAIL() << "policy mismatch accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kMismatch);
  }
}

// The fraction-based degraded demotion is gated until the sliding history
// has filled once; a restore mid-warm-up must preserve that gate (filled_
// round-trips), so the restored monitor and an uninterrupted one demote on
// exactly the same window.
TEST(HealthCheckpoint, WarmUpGateSurvivesRestore) {
  core::HealthPolicy policy;
  policy.history = 8;
  policy.degraded_fraction = 0.25;
  policy.offline_consecutive = 100;

  ChannelHealthMonitor a(policy);
  a.observe(false);
  a.observe(true);
  a.observe(false);  // 2 invalid of 3 observed: still warming up
  ASSERT_EQ(a.state(), ChannelHealth::kHealthy);

  ByteWriter w;
  a.save_state(w);
  ChannelHealthMonitor b(policy);
  {
    ByteReader r(w.data());
    b.restore_state(r);
    r.finish();
  }
  EXPECT_EQ(b.state(), ChannelHealth::kHealthy);

  // Feed both the same tail: 5 valid windows complete the history with
  // 2 invalid of 8 = 25% >= degraded_fraction, so BOTH demote exactly on
  // the eighth window — not before.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.observe(true), ChannelHealth::kHealthy);
    EXPECT_EQ(b.observe(true), ChannelHealth::kHealthy);
  }
  EXPECT_EQ(a.observe(true), ChannelHealth::kDegraded);
  EXPECT_EQ(b.observe(true), ChannelHealth::kDegraded);
}

// ---------------------------------------------------------------------------
// Fusion policy codec

TEST(FusionPolicyCodec, VotingKeepsTheLegacyByteEncoding) {
  // A VotingPolicy must serialize to exactly the historical bare rule u32
  // — that is what keeps pre-policy checkpoints, wire peers and the
  // bitwise parity suite byte-compatible.
  for (core::FusionRule rule :
       {core::FusionRule::kAny, core::FusionRule::kMajority,
        core::FusionRule::kAll}) {
    ByteWriter w;
    engine::save_fusion_policy(w, core::VotingPolicy(rule));
    ByteWriter legacy;
    legacy.pod<std::uint32_t>(static_cast<std::uint32_t>(rule));
    const std::vector<std::uint8_t> got(w.data().begin(), w.data().end());
    const std::vector<std::uint8_t> want(legacy.data().begin(),
                                         legacy.data().end());
    EXPECT_EQ(got, want) << core::fusion_rule_name(rule);

    ByteReader r(legacy.data());
    const auto policy = engine::load_fusion_policy(r);
    EXPECT_NO_THROW(r.finish());
    const auto* voting =
        dynamic_cast<const core::VotingPolicy*>(policy.get());
    ASSERT_NE(voting, nullptr);
    EXPECT_EQ(voting->rule(), rule);
  }
}

TEST(FusionPolicyCodec, WeightedRoundTripsConfigAndWeightsBitwise) {
  core::WeightedPolicyConfig cfg;
  cfg.threshold = 0.625;
  cfg.degraded_weight = 0.25;
  cfg.score_cap = 6.5;
  cfg.spread_floor = 0.03125;
  const core::WeightedPolicy policy(cfg, {{"ACC", 0.59375}, {"AUD", 0.40625}});
  ByteWriter w;
  engine::save_fusion_policy(w, policy);
  ByteReader r(w.data());
  const auto loaded = engine::load_fusion_policy(r);
  EXPECT_NO_THROW(r.finish());
  const auto* weighted =
      dynamic_cast<const core::WeightedPolicy*>(loaded.get());
  ASSERT_NE(weighted, nullptr);
  EXPECT_TRUE(weighted->trained());
  EXPECT_EQ(weighted->config().threshold, cfg.threshold);
  EXPECT_EQ(weighted->config().degraded_weight, cfg.degraded_weight);
  EXPECT_EQ(weighted->config().score_cap, cfg.score_cap);
  EXPECT_EQ(weighted->config().spread_floor, cfg.spread_floor);
  ASSERT_EQ(weighted->weights().size(), 2u);
  EXPECT_EQ(weighted->weights()[0].first, "ACC");
  EXPECT_EQ(weighted->weights()[0].second, 0.59375);
  EXPECT_EQ(weighted->weights()[1].first, "AUD");
  EXPECT_EQ(weighted->weights()[1].second, 0.40625);
  // save(load(x)) == x: the codec is an exact inverse.
  ByteWriter w2;
  engine::save_fusion_policy(w2, *loaded);
  const std::vector<std::uint8_t> a(w.data().begin(), w.data().end());
  const std::vector<std::uint8_t> b(w2.data().begin(), w2.data().end());
  EXPECT_EQ(a, b);

  // An untrained weighted policy (uniform weights) round-trips too.
  ByteWriter wu;
  engine::save_fusion_policy(wu, core::WeightedPolicy());
  ByteReader ru(wu.data());
  const auto untrained = engine::load_fusion_policy(ru);
  EXPECT_NO_THROW(ru.finish());
  const auto* uw = dynamic_cast<const core::WeightedPolicy*>(untrained.get());
  ASSERT_NE(uw, nullptr);
  EXPECT_FALSE(uw->trained());
  EXPECT_TRUE(uw->weights().empty());
}

TEST(FusionPolicyCodec, UnknownSubVersionIsTypedBadVersion) {
  // A policy section from a future build must surface as kBadVersion —
  // never a silent misread of bytes this build cannot interpret.
  ByteWriter w;
  w.pod<std::uint32_t>(engine::kFusionPolicyMarker);
  w.pod<std::uint8_t>(engine::kFusionPolicyVersion + 1);
  w.pod<std::uint8_t>(0);  // bytes a future layout might carry
  ByteReader r(w.data());
  try {
    (void)engine::load_fusion_policy(r);
    FAIL() << "unknown policy sub-version accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kBadVersion);
  }
}

TEST(FusionPolicyCodec, CorruptPolicyBytesAreTypedCorrupt) {
  // Legacy slot with an out-of-range rule (and not the marker).
  {
    ByteWriter w;
    w.pod<std::uint32_t>(7);
    ByteReader r(w.data());
    try {
      (void)engine::load_fusion_policy(r);
      FAIL() << "unknown rule accepted";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt);
    }
  }
  // Marker + current version + unknown policy kind.
  {
    ByteWriter w;
    w.pod<std::uint32_t>(engine::kFusionPolicyMarker);
    w.pod<std::uint8_t>(engine::kFusionPolicyVersion);
    w.pod<std::uint8_t>(9);
    ByteReader r(w.data());
    try {
      (void)engine::load_fusion_policy(r);
      FAIL() << "unknown policy kind accepted";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt);
    }
  }
  // Weighted payloads whose trained flag and weight count disagree, and
  // hostile weight values: all typed kCorrupt, never raw invalid_argument.
  const auto weighted_bytes = [](std::uint8_t trained, std::uint64_t count,
                                 double weight) {
    ByteWriter w;
    w.pod<std::uint32_t>(engine::kFusionPolicyMarker);
    w.pod<std::uint8_t>(engine::kFusionPolicyVersion);
    w.pod<std::uint8_t>(
        static_cast<std::uint8_t>(core::FusionPolicyKind::kWeighted));
    w.pod<double>(0.75);   // threshold
    w.pod<double>(0.5);    // degraded_weight
    w.pod<double>(8.0);    // score_cap
    w.pod<double>(0.02);   // spread_floor
    w.pod<std::uint8_t>(trained);
    w.pod<std::uint64_t>(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      w.str("CH" + std::to_string(i));
      w.pod<double>(weight);
    }
    return w.take();
  };
  for (const auto& bytes :
       {weighted_bytes(1, 0, 0.5),    // trained but weightless
        weighted_bytes(0, 2, 0.5),    // untrained with weights
        weighted_bytes(2, 1, 0.5),    // bad trained flag
        weighted_bytes(1, 2, -1.0)})  // negative weight
  {
    ByteReader r(bytes);
    try {
      (void)engine::load_fusion_policy(r);
      FAIL() << "corrupt weighted policy accepted";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointErrorKind::kCorrupt);
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming fleet fixtures

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
  }
  return a;
}

NsyncConfig dwm_config() {
  NsyncConfig cfg;
  cfg.sync = SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;
  cfg.r = 0.3;
  return cfg;
}

class CheckpointFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = dwm_config();
    reference_ = make_reference(1200, 77);
    NsyncIds ids(reference_, cfg_);
    std::vector<Signal> train;
    for (std::uint64_t s = 1; s <= 3; ++s) {
      train.push_back(benign_observation(reference_, s));
    }
    ids.fit(train);
    thresholds_ = ids.thresholds();

    // Session 0: benign on both channels.  Session 1: tampered ACC and an
    // AUD sensor that flatlines mid-print (fault injection), so recovery
    // is exercised across detection, fusion *and* health state.
    streams_ = {{benign_observation(reference_, 50),
                 benign_observation(reference_, 51)},
                {malicious_observation(reference_, 60),
                 nsync::sensors::flatline_from(
                     SignalView(benign_observation(reference_, 61)), 400,
                     0.0)}};
  }

  SessionSpec make_session(const std::string& name) const {
    SessionSpec spec;
    spec.name = name;
    for (const char* ch : {"ACC", "AUD"}) {
      ChannelSpec c;
      c.name = ch;
      c.reference = reference_;
      c.config = cfg_;
      c.thresholds = thresholds_;
      spec.channels.push_back(std::move(c));
    }
    return spec;
  }

  MonitorEngine make_engine(MonitorEngineOptions opts = {}) const {
    MonitorEngine eng(opts);
    eng.add_session(make_session("benign-print"));
    eng.add_session(make_session("tampered-print"));
    return eng;
  }

  /// Feeds rounds [from, to) of the chunked schedule: round k feeds frames
  /// [k*chunk, (k+1)*chunk) of every channel of every session, then polls.
  void feed_rounds(MonitorEngine& eng, std::size_t chunk, std::size_t from,
                   std::size_t to) const {
    static const char* kNames[] = {"ACC", "AUD"};
    for (std::size_t k = from; k < to; ++k) {
      for (std::size_t s = 0; s < streams_.size(); ++s) {
        for (std::size_t c = 0; c < 2; ++c) {
          const Signal& sig = streams_[s][c];
          const std::size_t lo = k * chunk;
          if (lo >= sig.frames()) continue;
          const std::size_t hi = std::min(lo + chunk, sig.frames());
          eng.feed(s, kNames[c], SignalView(sig).slice(lo, hi));
        }
      }
      eng.poll();
    }
  }

  [[nodiscard]] std::size_t rounds_for(std::size_t chunk) const {
    std::size_t longest = 0;
    for (const auto& session : streams_) {
      for (const auto& sig : session) longest = std::max(longest, sig.frames());
    }
    return (longest + chunk - 1) / chunk;
  }

  NsyncConfig cfg_;
  Signal reference_;
  Thresholds thresholds_;
  std::vector<std::vector<Signal>> streams_;
};

void expect_snapshots_equal(const std::vector<SessionSnapshot>& a,
                            const std::vector<SessionSnapshot>& b,
                            const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t s = 0; s < a.size(); ++s) {
    SCOPED_TRACE(label + ": session " + a[s].name);
    EXPECT_EQ(a[s].name, b[s].name);
    EXPECT_EQ(a[s].intrusion, b[s].intrusion);
    EXPECT_EQ(a[s].first_alarm_window, b[s].first_alarm_window);
    EXPECT_EQ(a[s].alarming_channels, b[s].alarming_channels);
    EXPECT_EQ(a[s].online_channels, b[s].online_channels);
    EXPECT_EQ(a[s].frames_fed, b[s].frames_fed);
    EXPECT_EQ(a[s].windows, b[s].windows);
    ASSERT_EQ(a[s].channels.size(), b[s].channels.size());
    for (std::size_t c = 0; c < a[s].channels.size(); ++c) {
      const auto& ca = a[s].channels[c];
      const auto& cb = b[s].channels[c];
      EXPECT_EQ(ca.name, cb.name);
      EXPECT_EQ(ca.detection.intrusion, cb.detection.intrusion);
      EXPECT_EQ(ca.detection.by_c_disp, cb.detection.by_c_disp);
      EXPECT_EQ(ca.detection.by_h_dist, cb.detection.by_h_dist);
      EXPECT_EQ(ca.detection.by_v_dist, cb.detection.by_v_dist);
      EXPECT_EQ(ca.detection.first_alarm_window,
                cb.detection.first_alarm_window);
      EXPECT_EQ(ca.health, cb.health);
      EXPECT_EQ(ca.windows, cb.windows);
      EXPECT_EQ(ca.frames_fed, cb.frames_fed);
    }
  }
}

// ---------------------------------------------------------------------------
// RealtimeMonitor round-trip

TEST_F(CheckpointFleetTest, RealtimeMonitorContinuesBitwise) {
  const Signal& obs = streams_[1][0];  // tampered stream
  RealtimeMonitor a(reference_, cfg_, thresholds_);
  RealtimeMonitor b(reference_, cfg_, thresholds_);

  const std::size_t half = obs.frames() / 2;
  a.push(SignalView(obs).slice(0, half));
  b.push(SignalView(obs).slice(0, half));

  ByteWriter w;
  a.save_state(w);
  RealtimeMonitor c(reference_, cfg_, thresholds_);
  {
    ByteReader r(w.data());
    c.restore_state(r);
    r.finish();
  }
  // Finish the print on the uninterrupted monitor and the restored one, in
  // different chunkings; every feature must match bitwise.
  b.push(SignalView(obs).slice(half, obs.frames()));
  for (std::size_t off = half; off < obs.frames(); off += 97) {
    c.push(SignalView(obs).slice(off, std::min(off + 97, obs.frames())));
  }
  ASSERT_EQ(c.windows(), b.windows());
  EXPECT_EQ(c.features().c_disp, b.features().c_disp);
  EXPECT_EQ(c.features().h_dist_f, b.features().h_dist_f);
  EXPECT_EQ(c.features().v_dist_f, b.features().v_dist_f);
  EXPECT_EQ(c.valid(), b.valid());
  EXPECT_EQ(c.detection().intrusion, b.detection().intrusion);
  EXPECT_EQ(c.detection().first_alarm_window,
            b.detection().first_alarm_window);
  EXPECT_EQ(c.health(), b.health());

  // Restoring against a different reference -> kMismatch, monitor intact.
  RealtimeMonitor d(make_reference(1200, 123), cfg_, thresholds_);
  ByteReader r2(w.data());
  try {
    d.restore_state(r2);
    FAIL() << "reference mismatch accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kMismatch);
  }
  EXPECT_EQ(d.windows(), 0u);  // unchanged by the failed restore
}

// ---------------------------------------------------------------------------
// The headline property: kill + restore + replay == uninterrupted

TEST_F(CheckpointFleetTest, KilledAndRestoredFleetIsBitwiseIdentical) {
  const std::string path = temp_path("fleet-kill.nckp");
  const std::size_t chunks[] = {1, 113, 1200};
  std::vector<SessionSnapshot> prev_chunk_snaps;
  for (const std::size_t chunk : chunks) {
    const std::size_t rounds = rounds_for(chunk);
    // Uninterrupted baseline for this chunk schedule.
    MonitorEngine baseline = make_engine();
    feed_rounds(baseline, chunk, 0, rounds);
    const std::vector<std::uint8_t> baseline_bytes = baseline.serialize();
    const std::vector<SessionSnapshot> baseline_snaps = baseline.snapshots();

    // Chunk-size invariance: once the whole stream is in, every chunk
    // schedule reaches the same detections, health states and verdicts
    // (single frames, odd mid-size chunks, the whole print at once).
    if (!prev_chunk_snaps.empty()) {
      expect_snapshots_equal(baseline_snaps, prev_chunk_snaps,
                             "chunk " + std::to_string(chunk) +
                                 " vs smaller chunk");
    }
    prev_chunk_snaps = baseline_snaps;

    for (const double frac : {0.25, 0.5, 0.75}) {
      SCOPED_TRACE("chunk " + std::to_string(chunk) + ", kill at " +
                   std::to_string(frac));
      const std::size_t kill = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(rounds) * frac));
      {
        MonitorEngine victim = make_engine();
        feed_rounds(victim, chunk, 0, kill);
        victim.checkpoint(path);
        // The victim dies here (scope exit); everything it learned after
        // the checkpoint is lost and must be replayed.
      }
      MonitorEngine revived = MonitorEngine::restore(path);
      feed_rounds(revived, chunk, kill, rounds);
      // Strongest possible claim: the full serialized state — every
      // feature array, ring buffer index, health counter and latched
      // verdict — is byte-for-byte the uninterrupted run's.
      EXPECT_TRUE(revived.serialize() == baseline_bytes)
          << "restored fleet state diverged from the uninterrupted run";
      expect_snapshots_equal(revived.snapshots(), baseline_snaps, "revived");
    }
  }

  // And the detection outcome itself is the expected one: session 0
  // benign, session 1 alarmed with its AUD channel offline.
  MonitorEngine eng = make_engine();
  feed_rounds(eng, 113, 0, rounds_for(113));
  const auto snaps = eng.snapshots();
  EXPECT_FALSE(snaps[0].intrusion);
  EXPECT_TRUE(snaps[1].intrusion);
  EXPECT_GE(snaps[1].first_alarm_window, 0);
  EXPECT_EQ(snaps[1].channels[1].health, ChannelHealth::kOffline);
  std::remove(path.c_str());
}

TEST_F(CheckpointFleetTest, RecoveryIsWorkerCountInvariant) {
  const std::string path = temp_path("fleet-workers.nckp");
  std::vector<std::uint8_t> first_bytes;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    runtime::set_worker_count(workers);
    const std::size_t rounds = rounds_for(113);
    const std::size_t kill = rounds / 2;
    {
      MonitorEngine victim = make_engine();
      feed_rounds(victim, 113, 0, kill);
      victim.checkpoint(path);
    }
    MonitorEngine revived = MonitorEngine::restore(path);
    feed_rounds(revived, 113, kill, rounds);
    const std::vector<std::uint8_t> bytes = revived.serialize();
    if (first_bytes.empty()) {
      first_bytes = bytes;
    } else {
      EXPECT_TRUE(bytes == first_bytes)
          << "recovered state differs across worker counts";
    }
  }
  runtime::set_worker_count(0);  // restore automatic sizing
  std::remove(path.c_str());
}

TEST_F(CheckpointFleetTest, CheckpointWhileDegradedRestoresHealthCounters) {
  // Kill the fleet while session 1's AUD channel is mid-flatline (offline,
  // with live hysteresis counters).  The restored channel must keep the
  // same health state and the same streak position — not re-enter healthy.
  const std::string path = temp_path("fleet-degraded.nckp");
  const std::size_t chunk = 113;
  const std::size_t rounds = rounds_for(chunk);
  MonitorEngine baseline = make_engine();
  feed_rounds(baseline, chunk, 0, rounds);

  // Find a kill point where the faulted channel is already non-healthy.
  std::size_t kill = 0;
  MonitorEngine probe = make_engine();
  for (std::size_t k = 0; k < rounds; ++k) {
    feed_rounds(probe, chunk, k, k + 1);
    if (probe.snapshot(1).channels[1].health != ChannelHealth::kHealthy) {
      kill = k + 1;
      break;
    }
  }
  ASSERT_GT(kill, 0u) << "fault never degraded the channel";
  ASSERT_LT(kill, rounds) << "no frames left to replay after the kill";
  probe.checkpoint(path);

  MonitorEngine revived = MonitorEngine::restore(path);
  EXPECT_EQ(revived.snapshot(1).channels[1].health,
            probe.snapshot(1).channels[1].health);
  feed_rounds(revived, chunk, kill, rounds);
  EXPECT_TRUE(revived.serialize() == baseline.serialize())
      << "state diverged after restoring a degraded-channel checkpoint";
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fusion policy recovery

TEST_F(CheckpointFleetTest, VotingPolicyParityBitwiseAcrossRulesAndKillPoints) {
  // An explicit VotingPolicy in the spec must be indistinguishable — in
  // serialized bytes, through any kill/restore point — from the legacy
  // rule field it replaced.
  const std::string path = temp_path("fleet-voting-parity.nckp");
  const std::size_t chunk = 113;
  const std::size_t rounds = rounds_for(chunk);
  for (core::FusionRule rule :
       {core::FusionRule::kAny, core::FusionRule::kMajority,
        core::FusionRule::kAll}) {
    SCOPED_TRACE(core::fusion_rule_name(rule));
    const auto make_rule_engine = [&](bool explicit_policy) {
      MonitorEngine eng;
      for (const char* name : {"benign-print", "tampered-print"}) {
        SessionSpec spec = make_session(name);
        if (explicit_policy) {
          spec.policy = std::make_shared<core::VotingPolicy>(rule);
        } else {
          spec.rule = rule;  // the historical field, policy left null
        }
        eng.add_session(std::move(spec));
      }
      return eng;
    };

    MonitorEngine legacy = make_rule_engine(false);
    feed_rounds(legacy, chunk, 0, rounds);
    const std::vector<std::uint8_t> legacy_bytes = legacy.serialize();

    MonitorEngine modern = make_rule_engine(true);
    feed_rounds(modern, chunk, 0, rounds);
    EXPECT_TRUE(modern.serialize() == legacy_bytes)
        << "explicit VotingPolicy broke byte parity with the rule field";

    for (const double frac : {0.25, 0.5, 0.75}) {
      SCOPED_TRACE("kill at " + std::to_string(frac));
      const std::size_t kill = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(rounds) * frac));
      {
        MonitorEngine victim = make_rule_engine(true);
        feed_rounds(victim, chunk, 0, kill);
        victim.checkpoint(path);
      }
      MonitorEngine revived = MonitorEngine::restore(path);
      EXPECT_EQ(revived.snapshot(0).policy, core::fusion_rule_name(rule));
      feed_rounds(revived, chunk, kill, rounds);
      EXPECT_TRUE(revived.serialize() == legacy_bytes)
          << "restored voting-policy fleet diverged from the legacy run";
    }
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointFleetTest, WeightedSessionKillAndRestoreReplaysBitwise) {
  // Weighted sessions carry learned reliability weights through the
  // checkpoint: after a kill at any point the restored fleet must replay
  // to the uninterrupted run's exact bytes, weights included.
  const std::string path = temp_path("fleet-weighted-kill.nckp");
  const std::size_t chunk = 113;
  const std::size_t rounds = rounds_for(chunk);
  auto policy = std::make_shared<core::WeightedPolicy>();
  policy->fit(std::vector<std::string>{"ACC", "AUD"},
              {{0.21, 0.47}, {0.33, 0.12}, {0.27, 0.30}, {0.19, 0.41}});
  const auto make_weighted_engine = [&]() {
    MonitorEngine eng;
    for (const char* name : {"benign-print", "tampered-print"}) {
      SessionSpec spec = make_session(name);
      spec.policy = policy;
      eng.add_session(std::move(spec));
    }
    return eng;
  };

  MonitorEngine baseline = make_weighted_engine();
  feed_rounds(baseline, chunk, 0, rounds);
  const std::vector<std::uint8_t> baseline_bytes = baseline.serialize();
  const std::vector<SessionSnapshot> baseline_snaps = baseline.snapshots();
  EXPECT_EQ(baseline_snaps[0].policy, "weighted");
  EXPECT_FALSE(baseline_snaps[0].intrusion);
  EXPECT_TRUE(baseline_snaps[1].intrusion);

  for (const double frac : {0.25, 0.5, 0.75}) {
    SCOPED_TRACE("kill at " + std::to_string(frac));
    const std::size_t kill = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(rounds) * frac));
    {
      MonitorEngine victim = make_weighted_engine();
      feed_rounds(victim, chunk, 0, kill);
      victim.checkpoint(path);
    }
    MonitorEngine revived = MonitorEngine::restore(path);
    // The learned weights themselves came back bitwise: the restored
    // session's channel weights match the baseline's exactly.
    const SessionSnapshot snap = revived.snapshot(0);
    EXPECT_EQ(snap.policy, "weighted");
    ASSERT_EQ(snap.channels.size(), baseline_snaps[0].channels.size());
    feed_rounds(revived, chunk, kill, rounds);
    EXPECT_TRUE(revived.serialize() == baseline_bytes)
        << "restored weighted fleet diverged from the uninterrupted run";
    const std::vector<SessionSnapshot> revived_snaps = revived.snapshots();
    expect_snapshots_equal(revived_snaps, baseline_snaps, "weighted revived");
    for (std::size_t s = 0; s < revived_snaps.size(); ++s) {
      EXPECT_EQ(revived_snaps[s].fused_score, baseline_snaps[s].fused_score);
      for (std::size_t c = 0; c < revived_snaps[s].channels.size(); ++c) {
        EXPECT_EQ(revived_snaps[s].channels[c].weight,
                  baseline_snaps[s].channels[c].weight);
        EXPECT_EQ(revived_snaps[s].channels[c].score,
                  baseline_snaps[s].channels[c].score);
      }
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Periodic policy, corruption, misuse

TEST_F(CheckpointFleetTest, PeriodicPolicyWritesAndRotatesAtomically) {
  MonitorEngineOptions opts;
  opts.checkpoint_dir = ::testing::TempDir() + "fleet-policy";
  std::filesystem::create_directories(opts.checkpoint_dir);
  opts.checkpoint_every_polls = 3;
  MonitorEngine eng = make_engine(opts);
  ASSERT_EQ(eng.checkpoint_path(), opts.checkpoint_dir + "/fleet.nckp");

  const std::size_t chunk = 113;
  feed_rounds(eng, chunk, 0, 2);
  EXPECT_EQ(eng.checkpoints_written(), 0u);  // 2 polls < every 3
  feed_rounds(eng, chunk, 2, 3);
  EXPECT_EQ(eng.checkpoints_written(), 1u);
  feed_rounds(eng, chunk, 3, 9);
  EXPECT_EQ(eng.checkpoints_written(), 3u);

  // The file on disk is always a complete, loadable checkpoint.
  MonitorEngine restored = MonitorEngine::restore(eng.checkpoint_path());
  EXPECT_EQ(restored.sessions(), eng.sessions());

  // Window-count trigger.
  MonitorEngineOptions wopts;
  wopts.checkpoint_dir = opts.checkpoint_dir;
  wopts.checkpoint_every_polls = 0;
  wopts.checkpoint_every_windows = 10;
  MonitorEngine weng = make_engine(wopts);
  feed_rounds(weng, 1200, 0, 1);  // the whole print in one round
  EXPECT_EQ(weng.checkpoints_written(), 1u);

  std::filesystem::remove_all(opts.checkpoint_dir);
}

TEST_F(CheckpointFleetTest, CorruptedCheckpointNeverPartiallyRestores) {
  MonitorEngine eng = make_engine();
  feed_rounds(eng, 113, 0, 5);
  const std::vector<std::uint8_t> payload = eng.serialize();

  // Flip every 97th byte in turn: restore_from_bytes must either reject
  // with CheckpointError or produce a fully valid engine — never crash,
  // never throw anything else.
  for (std::size_t i = 0; i < payload.size(); i += 97) {
    auto mangled = payload;
    mangled[i] ^= 0x40;
    try {
      MonitorEngine restored = MonitorEngine::restore_from_bytes(mangled);
      (void)restored.snapshots();  // fully usable if accepted
    } catch (const CheckpointError&) {
      // The expected outcome for most flips.
    }
  }

  // Truncations of the payload likewise.
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{4}, payload.size() / 2,
        payload.size() - 1}) {
    const std::span<const std::uint8_t> cut(payload.data(), n);
    EXPECT_THROW((void)MonitorEngine::restore_from_bytes(cut),
                 CheckpointError);
  }

  // The intact payload restores, and the restored engine's own serialize()
  // reproduces it byte for byte (serialize/restore are exact inverses).
  MonitorEngine restored = MonitorEngine::restore_from_bytes(payload);
  EXPECT_TRUE(restored.serialize() == payload)
      << "serialize(restore(payload)) != payload";
}

TEST_F(CheckpointFleetTest, RestoreRejectsMissingAndForeignFiles) {
  try {
    (void)MonitorEngine::restore(temp_path("missing.nckp"));
    FAIL() << "missing file accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kIo);
  }
  const std::string path = temp_path("foreign.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  try {
    (void)MonitorEngine::restore(path);
    FAIL() << "foreign file accepted";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kBadMagic);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nsync
