// Tests for the similarity functions and distance metrics (Sections V-B,
// VII-A).
#include <gtest/gtest.h>

#include <cmath>

#include "core/distance.hpp"
#include "signal/rng.hpp"

namespace nsync::core {
namespace {

using nsync::signal::Signal;

TEST(Metrics, NamesRoundTrip) {
  for (auto m : {DistanceMetric::kCorrelation, DistanceMetric::kCosine,
                 DistanceMetric::kEuclidean, DistanceMetric::kManhattan,
                 DistanceMetric::kMae}) {
    EXPECT_EQ(parse_distance_metric(distance_metric_name(m)), m);
  }
  EXPECT_EQ(parse_distance_metric("L2"), DistanceMetric::kEuclidean);
  EXPECT_THROW(parse_distance_metric("hamming"), std::invalid_argument);
}

TEST(VectorDistance, KnownValues) {
  const std::vector<double> u = {1.0, 2.0, 3.0};
  const std::vector<double> v = {2.0, 4.0, 6.0};
  EXPECT_NEAR(vector_distance(u, v, DistanceMetric::kCorrelation), 0.0, 1e-12);
  EXPECT_NEAR(vector_distance(u, v, DistanceMetric::kCosine), 0.0, 1e-12);
  EXPECT_NEAR(vector_distance(u, v, DistanceMetric::kEuclidean),
              std::sqrt(1.0 + 4.0 + 9.0), 1e-12);
  EXPECT_NEAR(vector_distance(u, v, DistanceMetric::kManhattan), 6.0, 1e-12);
  EXPECT_NEAR(vector_distance(u, v, DistanceMetric::kMae), 2.0, 1e-12);
}

TEST(VectorDistance, IdenticalVectorsAreZero) {
  const std::vector<double> u = {1.0, -2.0, 0.5};
  for (auto m : {DistanceMetric::kCorrelation, DistanceMetric::kCosine,
                 DistanceMetric::kEuclidean, DistanceMetric::kManhattan,
                 DistanceMetric::kMae}) {
    EXPECT_NEAR(vector_distance(u, u, m), 0.0, 1e-12)
        << distance_metric_name(m);
  }
}

TEST(VectorDistance, CorrelationDistanceRange) {
  const std::vector<double> u = {1.0, 2.0, 3.0};
  const std::vector<double> v = {3.0, 2.0, 1.0};  // anti-correlated
  EXPECT_NEAR(vector_distance(u, v, DistanceMetric::kCorrelation), 2.0,
              1e-12);
}

TEST(VectorDistance, GainSensitivitySplit) {
  // The design argument of Section VII-A: correlation/cosine ignore gain;
  // Euclidean/Manhattan/MAE do not.
  nsync::signal::Rng rng(1);
  std::vector<double> u(32), v(32);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = rng.normal();
    v[i] = 1.3 * u[i];
  }
  EXPECT_NEAR(vector_distance(u, v, DistanceMetric::kCorrelation), 0.0, 1e-9);
  EXPECT_NEAR(vector_distance(u, v, DistanceMetric::kCosine), 0.0, 1e-9);
  EXPECT_GT(vector_distance(u, v, DistanceMetric::kEuclidean), 0.1);
  EXPECT_GT(vector_distance(u, v, DistanceMetric::kMae), 0.01);
}

TEST(VectorDistance, DegenerateInputs) {
  const std::vector<double> flat = {2.0, 2.0, 2.0};
  const std::vector<double> v = {1.0, 2.0, 3.0};
  // Zero-variance input: correlation falls back to distance 1.
  EXPECT_NEAR(vector_distance(flat, v, DistanceMetric::kCorrelation), 1.0,
              1e-12);
  const std::vector<double> zero = {0.0, 0.0};
  const std::vector<double> w = {1.0, 1.0};
  EXPECT_NEAR(vector_distance(zero, w, DistanceMetric::kCosine), 1.0, 1e-12);
  EXPECT_THROW(vector_distance(flat, std::vector<double>{1.0},
                               DistanceMetric::kMae),
               std::invalid_argument);
}

TEST(FrameDistance, UsesChannelDimension) {
  Signal a = Signal::from_channels({{1.0, 5.0}, {2.0, 6.0}}, 10.0);
  Signal b = Signal::from_channels({{1.0, 4.0}, {2.0, 8.0}}, 10.0);
  // Frame 0 identical -> MAE 0; frame 1: |5-4| and |6-8| -> MAE 1.5.
  EXPECT_NEAR(frame_distance(a, 0, b, 0, DistanceMetric::kMae), 0.0, 1e-12);
  EXPECT_NEAR(frame_distance(a, 1, b, 1, DistanceMetric::kMae), 1.5, 1e-12);
}

TEST(WindowDistance, AveragesAcrossChannels) {
  // Channel 0 identical, channel 1 anti-correlated: correlation distances
  // 0 and 2, averaged to 1.
  Signal a = Signal::from_channels({{1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}}, 10.0);
  Signal b = Signal::from_channels({{1.0, 2.0, 3.0}, {3.0, 2.0, 1.0}}, 10.0);
  EXPECT_NEAR(window_distance(a, b, DistanceMetric::kCorrelation), 1.0,
              1e-12);
}

TEST(WindowDistance, ShapeMismatchThrows) {
  Signal a(4, 2, 10.0);
  Signal b(4, 3, 10.0);
  Signal c(5, 2, 10.0);
  EXPECT_THROW(window_distance(a, b, DistanceMetric::kMae),
               std::invalid_argument);
  EXPECT_THROW(window_distance(a, c, DistanceMetric::kMae),
               std::invalid_argument);
}

TEST(WindowSimilarity, MirrorsWindowCorrelationDistance) {
  nsync::signal::Rng rng(3);
  Signal a(32, 3, 10.0), b(32, 3, 10.0);
  for (std::size_t n = 0; n < 32; ++n) {
    for (std::size_t c = 0; c < 3; ++c) {
      a(n, c) = rng.normal();
      b(n, c) = rng.normal();
    }
  }
  const double sim = window_similarity(a, b);
  const double dist = window_distance(a, b, DistanceMetric::kCorrelation);
  EXPECT_NEAR(sim, 1.0 - dist, 1e-12);
}

}  // namespace
}  // namespace nsync::core
