// Edge-case and failure-injection tests across modules: degenerate inputs,
// pathological DAQ settings, exotic-but-legal parameter combinations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/discriminator.hpp"
#include "core/dwm.hpp"
#include "baselines/gatlin.hpp"
#include "sensors/daq.hpp"
#include "signal/rng.hpp"

namespace nsync {
namespace {

using signal::Rng;
using signal::Signal;

Signal band_noise(std::size_t frames, std::size_t channels,
                  std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, channels, 100.0);
  std::vector<double> lp(channels, 0.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      lp[c] += 0.35 * (rng.normal() - lp[c]);
      s(n, c) = lp[c];
    }
  }
  return s;
}

TEST(DaqEdge, DropEverything) {
  Signal s(1000, 1, 100.0);
  sensors::DaqConfig cfg;
  cfg.gain_jitter_std = 0.0;
  cfg.frame_drop_probability = 1.0;
  cfg.frame_samples = 100;
  Rng rng(1);
  const Signal out = sensors::apply_daq(s, cfg, rng);
  EXPECT_EQ(out.frames(), 0u);
  EXPECT_EQ(out.channels(), 1u);  // shape survives even when data does not
}

TEST(DaqEdge, FrameLargerThanSignal) {
  Signal s(10, 2, 100.0);
  sensors::DaqConfig cfg;
  cfg.gain_jitter_std = 0.0;
  cfg.frame_drop_probability = 0.0;
  cfg.frame_samples = 1000;
  Rng rng(2);
  const Signal out = sensors::apply_daq(s, cfg, rng);
  EXPECT_EQ(out.frames(), 10u);  // partial trailing frame is kept
}

TEST(DaqEdge, QuantizeExtremeValues) {
  Signal s = Signal::from_samples({1e9, -1e9, 0.0}, 10.0);
  const Signal q = sensors::quantize(s, 16, 1.0);
  // Values far outside full scale still land on the grid (no clipping in
  // this model; the ADC step is what matters for comparison metrics).
  const double step = 1.0 / 32768.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double ratio = q(i, 0) / step;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-6);
  }
}

TEST(DwmEdge, EtaOneTracksImmediately) {
  // eta = 1.0 makes h_disp_low equal h_disp exactly (Eq. 12 degenerates).
  const Signal b = band_noise(900, 2, 3);
  Signal a(700, 2, 100.0);
  for (std::size_t n = 0; n < a.frames(); ++n) {
    for (std::size_t c = 0; c < 2; ++c) a(n, c) = b(n + 4, c);
  }
  core::DwmParams p;
  p.n_win = 64;
  p.n_hop = 32;
  p.n_ext = 16;
  p.n_sigma = 8.0;
  p.eta = 1.0;
  const auto r = core::DwmSynchronizer::align(a, b, p);
  for (std::size_t i = 0; i < r.h_disp.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.h_disp_low[i], r.h_disp[i]);
  }
}

TEST(DwmEdge, HopEqualsWindowIsLegal) {
  const Signal b = band_noise(600, 1, 4);
  core::DwmParams p;
  p.n_win = 50;
  p.n_hop = 50;  // non-overlapping windows
  p.n_ext = 10;
  p.n_sigma = 5.0;
  const auto r = core::DwmSynchronizer::align(b, b, p);
  EXPECT_GT(r.h_disp.size(), 8u);
  for (double h : r.h_disp) EXPECT_DOUBLE_EQ(h, 0.0);
}

TEST(DwmEdge, ObservedShorterThanOneWindow) {
  const Signal b = band_noise(500, 1, 5);
  core::DwmParams p;
  p.n_win = 100;
  p.n_hop = 50;
  p.n_ext = 10;
  p.n_sigma = 5.0;
  core::DwmSynchronizer sync(b, p);
  const Signal tiny = band_noise(99, 1, 6);
  EXPECT_EQ(sync.push(tiny), 0u);
  EXPECT_EQ(sync.windows(), 0u);
  EXPECT_FALSE(sync.reference_exhausted());
}

TEST(DiscriminatorEdge, EmptyFeaturesAreBenign) {
  core::DetectionFeatures f;  // no windows at all
  const auto d = core::discriminate(f, {0.0, 0.0, 0.0});
  EXPECT_FALSE(d.intrusion);
  EXPECT_EQ(d.first_alarm_window, -1);
}

TEST(DiscriminatorEdge, SingleWindowSignal) {
  const auto f = core::compute_features(std::vector<double>{5.0},
                                        std::vector<double>{0.4}, 3);
  EXPECT_EQ(f.c_disp.size(), 1u);
  EXPECT_DOUBLE_EQ(f.c_disp[0], 5.0);  // |5 - 0|
  EXPECT_DOUBLE_EQ(f.h_dist_f[0], 5.0);
  EXPECT_DOUBLE_EQ(f.v_dist_f[0], 0.4);
}

TEST(GatlinEdge, LayerShorterThanFftChunk) {
  // Layers shorter than the fingerprint FFT must not crash; the spectrum
  // window is extended to the minimum length.
  baselines::LayeredSignal s;
  s.signal = band_noise(600, 1, 7);
  s.layer_times = {0.0, 0.5, 1.0, 5.5};  // 50-sample layers at 100 Hz
  const auto prints = baselines::layer_fingerprints(s, 8);
  EXPECT_EQ(prints.size(), 4u);
  for (const auto& p : prints) {
    EXPECT_LE(p.size(), 8u);
  }
}

TEST(GatlinEdge, EmptyFingerprintMatchesTrivially) {
  const baselines::LayerFingerprint empty;
  const baselines::LayerFingerprint some = {1, 2, 3};
  EXPECT_DOUBLE_EQ(baselines::fingerprint_match(empty, some), 1.0);
  EXPECT_DOUBLE_EQ(baselines::fingerprint_match(some, empty), 0.0);
}

TEST(SignalEdge, AppendFrameToDefaultConstructedSignal) {
  Signal s;  // channels unknown until first frame
  const double row[] = {1.0, 2.0, 3.0};
  s.append_frame(row);
  EXPECT_EQ(s.channels(), 3u);
  EXPECT_EQ(s.frames(), 1u);
}

}  // namespace
}  // namespace nsync
