// Tests for the motion planner: trapezoid construction, junction-limited
// lookahead, and plan item generation.
#include <gtest/gtest.h>

#include <cmath>

#include "gcode/parser.hpp"
#include "printer/planner.hpp"

namespace nsync::printer {
namespace {

TEST(Trapezoid, SimpleCruiseProfile) {
  // 100 mm, rest to rest, limit 50 mm/s, accel 1000 mm/s^2.
  const MotionSegment s = make_trapezoid(100.0, 0.0, 0.0, 50.0, 1000.0);
  EXPECT_NEAR(s.v_cruise, 50.0, 1e-9);
  EXPECT_NEAR(s.t_accel, 0.05, 1e-9);
  EXPECT_NEAR(s.t_decel, 0.05, 1e-9);
  // d_acc = d_dec = 1.25 mm; cruise distance 97.5 mm at 50 mm/s.
  EXPECT_NEAR(s.t_cruise, 97.5 / 50.0, 1e-9);
  EXPECT_NEAR(s.distance_at(s.duration()), 100.0, 1e-9);
}

TEST(Trapezoid, TriangularWhenTooShortToCruise) {
  const MotionSegment s = make_trapezoid(1.0, 0.0, 0.0, 100.0, 1000.0);
  // Peak speed sqrt(a * d) = sqrt(1000) ~ 31.6 < 100 -> no cruise phase.
  EXPECT_LT(s.v_cruise, 100.0);
  EXPECT_NEAR(s.v_cruise, std::sqrt(1000.0 * 1.0), 1e-9);
  EXPECT_NEAR(s.t_cruise, 0.0, 1e-9);
  EXPECT_NEAR(s.distance_at(s.duration()), 1.0, 1e-9);
}

TEST(Trapezoid, RespectsEntryAndExitSpeeds) {
  const MotionSegment s = make_trapezoid(10.0, 20.0, 5.0, 60.0, 2000.0);
  EXPECT_NEAR(s.speed_at(0.0), 20.0, 1e-9);
  EXPECT_NEAR(s.speed_at(s.duration()), 5.0, 1e-9);
  EXPECT_NEAR(s.distance_at(s.duration()), 10.0, 1e-9);
}

TEST(Trapezoid, ClampsUnreachableExit) {
  // From rest over 1 mm at accel 100: max exit speed is sqrt(2*100*1) ~ 14.1.
  const MotionSegment s = make_trapezoid(1.0, 0.0, 100.0, 200.0, 100.0);
  EXPECT_NEAR(s.v_exit, std::sqrt(200.0), 1e-9);
  EXPECT_NEAR(s.distance_at(s.duration()), 1.0, 1e-9);
}

TEST(Trapezoid, RaisesUnreachablyLowExit) {
  // Entering at 100 mm/s with only 1 mm to brake at 100 mm/s^2: cannot
  // reach 0; the profile must end at sqrt(v^2 - 2 a d).
  const MotionSegment s = make_trapezoid(1.0, 100.0, 0.0, 200.0, 100.0);
  EXPECT_NEAR(s.v_exit, std::sqrt(100.0 * 100.0 - 200.0), 1e-6);
}

TEST(Trapezoid, DistanceIsMonotone) {
  const MotionSegment s = make_trapezoid(25.0, 3.0, 7.0, 40.0, 800.0);
  double prev = -1.0;
  for (double t = 0.0; t <= s.duration(); t += s.duration() / 200.0) {
    const double d = s.distance_at(t);
    EXPECT_GE(d, prev - 1e-12);
    prev = d;
  }
}

TEST(Trapezoid, SpeedIsDerivativeOfDistance) {
  const MotionSegment s = make_trapezoid(25.0, 3.0, 7.0, 40.0, 800.0);
  const double dt = 1e-6;
  for (double t = dt; t < s.duration() - dt; t += s.duration() / 50.0) {
    const double numeric = (s.distance_at(t + dt) - s.distance_at(t - dt)) /
                           (2.0 * dt);
    EXPECT_NEAR(s.speed_at(t), numeric, 1e-3);
  }
}

TEST(Trapezoid, RejectsBadInputs) {
  EXPECT_THROW(make_trapezoid(-1.0, 0.0, 0.0, 10.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(make_trapezoid(1.0, 0.0, 0.0, 0.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(make_trapezoid(1.0, 0.0, 0.0, 10.0, -5.0),
               std::invalid_argument);
}

MachineConfig test_machine() {
  MachineConfig m = ultimaker3();
  m.time_noise = TimeNoiseConfig::none();
  return m;
}

TEST(PlanProgram, StraightRunKeepsJunctionSpeedHigh) {
  // Two collinear moves should pass the junction at (close to) full speed.
  const auto p = gcode::parse_program("G1 X10 F3000\nG1 X20 F3000\n");
  const MotionPlan plan = plan_program(p, test_machine());
  ASSERT_EQ(plan.items.size(), 2u);
  const auto& first = plan.items[0].move;
  EXPECT_GT(first.v_exit, 45.0);  // feed is 50 mm/s
}

TEST(PlanProgram, RightAngleCornerSlowsDown) {
  const auto p = gcode::parse_program("G1 X10 F3000\nG1 X10 Y10 F3000\n");
  const MotionPlan plan = plan_program(p, test_machine());
  const auto& first = plan.items[0].move;
  EXPECT_LT(first.v_exit, 20.0);  // 90-degree corner
  EXPECT_GT(first.v_exit, 0.0);
}

TEST(PlanProgram, ReversalStopsNearly) {
  const auto p = gcode::parse_program("G1 X10 F3000\nG1 X0 F3000\n");
  const MotionPlan plan = plan_program(p, test_machine());
  EXPECT_LE(plan.items[0].move.v_exit, test_machine().min_junction_speed + 1e-9);
}

TEST(PlanProgram, SpeedContinuityAcrossJunctions) {
  const auto p = gcode::parse_program(
      "G1 X5 F3000\nG1 X10 Y2 F3000\nG1 X15 Y-1 F2400\nG1 X20 F1200\n");
  const MotionPlan plan = plan_program(p, test_machine());
  const MotionSegment* prev = nullptr;
  for (const auto& item : plan.items) {
    if (item.type != PlanItemType::kMove) continue;
    if (prev != nullptr) {
      EXPECT_NEAR(prev->v_exit, item.move.v_entry, 1e-6);
    }
    prev = &item.move;
  }
}

TEST(PlanProgram, EveryProfileIsKinematicallyConsistent) {
  const auto p = gcode::parse_program(
      "G28\nG1 X30 Y10 F4800\nG1 X31 Y10.2 F4800\nG1 X10 Y40 F1200\n"
      "G4 P100\nG1 X0 Y0 F3600\n");
  const MotionPlan plan = plan_program(p, test_machine());
  for (const auto& item : plan.items) {
    if (item.type != PlanItemType::kMove) continue;
    const auto& s = item.move;
    EXPECT_NEAR(s.distance_at(s.duration()), s.length, 1e-6);
    EXPECT_GE(s.v_cruise, std::max(s.v_entry, s.v_exit) - 1e-9);
    EXPECT_GE(s.t_accel, -1e-12);
    EXPECT_GE(s.t_cruise, -1e-12);
    EXPECT_GE(s.t_decel, -1e-12);
  }
}

TEST(PlanProgram, FeedratesAreClampedToMachine) {
  const auto p = gcode::parse_program("G1 X100 F60000\n");  // 1000 mm/s!
  MachineConfig m = test_machine();
  const MotionPlan plan = plan_program(p, m);
  EXPECT_LE(plan.items[0].move.v_cruise, m.max_velocity + 1e-9);
}

TEST(PlanProgram, ZMovesUseZVelocityLimit) {
  const auto p = gcode::parse_program("G1 Z50 F60000\n");
  MachineConfig m = test_machine();
  const MotionPlan plan = plan_program(p, m);
  EXPECT_LE(plan.items[0].move.v_cruise, m.max_z_velocity + 1e-9);
}

TEST(PlanProgram, DwellAndThermalItems) {
  const auto p = gcode::parse_program(
      "M140 S60\nM190 S60\nM104 S200\nM109 S200\nG4 P500\nM106 S255\nM107\n");
  const MotionPlan plan = plan_program(p, test_machine());
  ASSERT_EQ(plan.items.size(), 7u);
  EXPECT_EQ(plan.items[0].type, PlanItemType::kSetBedTemp);
  EXPECT_EQ(plan.items[1].type, PlanItemType::kWaitBedTemp);
  EXPECT_EQ(plan.items[2].type, PlanItemType::kSetHotendTemp);
  EXPECT_EQ(plan.items[3].type, PlanItemType::kWaitHotendTemp);
  EXPECT_EQ(plan.items[4].type, PlanItemType::kDwell);
  EXPECT_NEAR(plan.items[4].value, 0.5, 1e-9);
  EXPECT_EQ(plan.items[5].type, PlanItemType::kFan);
  EXPECT_NEAR(plan.items[5].value, 1.0, 1e-9);
  EXPECT_EQ(plan.items[6].type, PlanItemType::kFan);
  EXPECT_NEAR(plan.items[6].value, 0.0, 1e-9);
}

TEST(PlanProgram, LayerMarkersTracked) {
  const auto p = gcode::parse_program(
      ";LAYER:0\nG1 Z0.2 F600\nG1 X5 E1 F1200\n;LAYER:1\nG1 Z0.4 F600\n");
  const MotionPlan plan = plan_program(p, test_machine());
  EXPECT_EQ(plan.layer_count, 2u);
  std::size_t markers = 0;
  for (const auto& item : plan.items) {
    if (item.type == PlanItemType::kLayerMarker) ++markers;
  }
  EXPECT_EQ(markers, 2u);
}

TEST(PlanProgram, EOnlyMoveGetsDuration) {
  const auto p = gcode::parse_program("G1 E5 F1800\n");  // 5 mm retractionish
  const MotionPlan plan = plan_program(p, test_machine());
  ASSERT_EQ(plan.items.size(), 1u);
  const auto& s = plan.items[0].move;
  EXPECT_GT(s.duration(), 0.0);
  EXPECT_NEAR(s.e1 - s.e0, 5.0, 1e-9);
  EXPECT_EQ(s.p0, s.p1);
}

TEST(PlanProgram, NominalDurationScalesWithSpeed) {
  const auto fast = gcode::parse_program("G1 X100 F6000\n");
  const auto slow = gcode::parse_program("G1 X100 F3000\n");
  const double t_fast =
      plan_program(fast, test_machine()).nominal_motion_duration();
  const double t_slow =
      plan_program(slow, test_machine()).nominal_motion_duration();
  EXPECT_GT(t_slow, t_fast * 1.5);
}

TEST(PlanProgram, HomeSynthesizesMove) {
  const auto p = gcode::parse_program("G1 X50 Y50 F6000\nG28\n");
  const MotionPlan plan = plan_program(p, test_machine());
  ASSERT_EQ(plan.items.size(), 2u);
  const auto& home = plan.items[1].move;
  EXPECT_NEAR(home.p1[0], 0.0, 1e-9);
  EXPECT_NEAR(home.p1[1], 0.0, 1e-9);
}

}  // namespace
}  // namespace nsync::printer
