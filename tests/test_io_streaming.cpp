// Tests for signal serialization (NSIG / CSV) and the streaming STFT.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "dsp/streaming_stft.hpp"
#include "signal/io.hpp"
#include "signal/rng.hpp"

namespace nsync {
namespace {

using signal::Rng;
using signal::Signal;
using signal::SignalView;

Signal random_signal(std::size_t frames, std::size_t channels,
                     std::uint64_t seed, double fs = 1000.0) {
  Rng rng(seed);
  Signal s(frames, channels, fs);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      s(n, c) = rng.normal();
    }
  }
  return s;
}

TEST(SignalIo, BinaryRoundTripIsExact) {
  const Signal s = random_signal(333, 5, 1, 48000.0);
  std::stringstream buf;
  signal::write_signal(buf, s);
  const Signal back = signal::read_signal(buf);
  ASSERT_EQ(back.frames(), s.frames());
  ASSERT_EQ(back.channels(), s.channels());
  EXPECT_DOUBLE_EQ(back.sample_rate(), s.sample_rate());
  for (std::size_t n = 0; n < s.frames(); ++n) {
    for (std::size_t c = 0; c < s.channels(); ++c) {
      EXPECT_DOUBLE_EQ(back(n, c), s(n, c));
    }
  }
}

TEST(SignalIo, RejectsGarbage) {
  std::stringstream bad("definitely not an NSIG file");
  EXPECT_THROW(signal::read_signal(bad), std::runtime_error);
}

TEST(SignalIo, RejectsTruncation) {
  const Signal s = random_signal(100, 2, 2);
  std::stringstream buf;
  signal::write_signal(buf, s);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(signal::read_signal(cut), std::runtime_error);
}

TEST(SignalIo, FileRoundTrip) {
  const Signal s = random_signal(64, 3, 3);
  const std::string path = ::testing::TempDir() + "/nsync_io_test.nsig";
  signal::save_signal(path, s);
  const Signal back = signal::load_signal(path);
  EXPECT_EQ(back.frames(), 64u);
  std::remove(path.c_str());
  EXPECT_THROW(signal::load_signal("/nonexistent/dir/x.nsig"),
               std::runtime_error);
}

TEST(SignalIo, CsvHasHeaderAndRows) {
  Signal s = Signal::from_channels({{1.0, 2.0}, {3.0, 4.0}}, 10.0);
  std::stringstream out;
  signal::write_csv(out, s);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "t,ch0,ch1");
  std::getline(out, line);
  EXPECT_EQ(line, "0,1,3");
  std::getline(out, line);
  EXPECT_EQ(line, "0.1,2,4");
}

TEST(StreamingStft, MatchesOfflineSpectrogramExactly) {
  const Signal s = random_signal(4096, 2, 4);
  dsp::StftConfig cfg;
  cfg.delta_f = 20.0;  // 50-sample window at 1 kHz
  cfg.delta_t = 0.02;
  const Signal offline = dsp::spectrogram(s, cfg);

  dsp::StreamingStft stream(cfg, s.sample_rate(), s.channels());
  // Push in ragged chunks.
  std::size_t pos = 0;
  for (std::size_t chunk : {7u, 100u, 23u, 1000u, 49u, 2000u, 917u}) {
    const std::size_t end = std::min(pos + chunk, s.frames());
    stream.push(SignalView(s).slice(pos, end));
    pos = end;
  }
  stream.push(SignalView(s).slice(pos, s.frames()));

  const Signal& live = stream.spectrogram();
  ASSERT_EQ(live.frames(), offline.frames());
  ASSERT_EQ(live.channels(), offline.channels());
  for (std::size_t n = 0; n < live.frames(); ++n) {
    for (std::size_t c = 0; c < live.channels(); ++c) {
      EXPECT_DOUBLE_EQ(live(n, c), offline(n, c))
          << "column " << n << " channel " << c;
    }
  }
  EXPECT_DOUBLE_EQ(live.sample_rate(), offline.sample_rate());
}

TEST(StreamingStft, EmitsColumnsIncrementally) {
  dsp::StftConfig cfg;
  cfg.delta_f = 10.0;  // 100-sample window
  cfg.delta_t = 0.05;  // 50-sample hop
  dsp::StreamingStft stream(cfg, 1000.0, 1);
  EXPECT_EQ(stream.window_samples(), 100u);
  EXPECT_EQ(stream.hop_samples(), 50u);

  const Signal part = random_signal(99, 1, 5);
  EXPECT_EQ(stream.push(part), 0u);  // one short of a full window
  const Signal one = random_signal(1, 1, 6);
  EXPECT_EQ(stream.push(one), 1u);
  const Signal fifty = random_signal(50, 1, 7);
  EXPECT_EQ(stream.push(fifty), 1u);
  EXPECT_EQ(stream.columns(), 2u);
}

TEST(StreamingStft, ChannelMismatchThrows) {
  dsp::StftConfig cfg;
  dsp::StreamingStft stream(cfg, 1000.0, 2);
  const Signal wrong = random_signal(10, 3, 8);
  EXPECT_THROW(stream.push(wrong), std::invalid_argument);
  EXPECT_THROW(dsp::StreamingStft(cfg, 1000.0, 0), std::invalid_argument);
}

TEST(StreamingStft, LogMagnitudeMatchesOffline) {
  const Signal s = random_signal(1024, 1, 9);
  dsp::StftConfig cfg;
  cfg.delta_f = 20.0;
  cfg.delta_t = 0.02;
  cfg.log_magnitude = true;
  const Signal offline = dsp::spectrogram(s, cfg);
  dsp::StreamingStft stream(cfg, s.sample_rate(), 1);
  stream.push(s);
  ASSERT_EQ(stream.columns(), offline.frames());
  for (std::size_t n = 0; n < offline.frames(); ++n) {
    EXPECT_DOUBLE_EQ(stream.spectrogram()(n, 3), offline(n, 3));
  }
}

}  // namespace
}  // namespace nsync
