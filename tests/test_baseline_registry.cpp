// Tests for the per-device baseline registry: resolve/fold semantics, the
// anti-poisoning state machine (dwell, bounded step, one-sided drift
// envelope, eligibility freezing), the NBRG codec (round-trip, typed
// rejection of truncated/corrupt/version-bumped/policy-mismatched
// payloads), and the engine-level guarantees — an attacked print never
// moves the baseline, benign feature maxima are chunking-invariant, and
// adapted thresholds survive a serialize/restore cycle bitwise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/discriminator.hpp"
#include "core/nsync.hpp"
#include "engine/baseline_registry.hpp"
#include "engine/monitor_engine.hpp"
#include "signal/checkpoint.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace nsync {
namespace {

using nsync::core::FeatureMaxima;
using nsync::core::NsyncConfig;
using nsync::core::NsyncIds;
using nsync::core::RealtimeMonitor;
using nsync::core::SyncMethod;
using nsync::core::Thresholds;
using nsync::engine::AdaptationPolicy;
using nsync::engine::BaselineRegistry;
using nsync::engine::DeviceBaseline;
using nsync::engine::MonitorEngine;
using nsync::engine::MonitorEngineOptions;
using nsync::engine::SessionSpec;
using nsync::signal::ByteReader;
using nsync::signal::ByteWriter;
using nsync::signal::CheckpointError;
using nsync::signal::CheckpointErrorKind;
using nsync::signal::Rng;
using nsync::signal::Signal;

FeatureMaxima maxima(double c, double h, double v) {
  FeatureMaxima m;
  m.c_max = c;
  m.h_max = h;
  m.v_max = v;
  return m;
}

Thresholds thresholds(double c, double h, double v) {
  Thresholds t;
  t.c_c = c;
  t.h_c = h;
  t.v_c = v;
  return t;
}

/// Policy that reacts on the first fold (no dwell) so single folds are
/// observable; tests that exercise the dwell set min_prints themselves.
AdaptationPolicy eager_policy() {
  AdaptationPolicy p;
  p.history = 4;
  p.min_prints = 1;
  p.max_step = 0.10;
  p.max_drift = 0.5;
  p.r = 0.0;
  return p;
}

// ---------------------------------------------------------------------------
// Resolve / fold semantics

TEST(BaselineRegistry, ResolveSeedsAnchorAndServesCurrent) {
  BaselineRegistry reg(eager_policy());
  const Thresholds trained = thresholds(1.0, 2.0, 3.0);
  const Thresholds first = reg.resolve("mk3", "acc", trained);
  EXPECT_EQ(first.c_c, 1.0);
  EXPECT_EQ(first.h_c, 2.0);
  EXPECT_EQ(first.v_c, 3.0);

  // Later resolves ignore the caller's trained values: the registry owns
  // the calibration after first contact.
  const Thresholds second = reg.resolve("mk3", "acc", thresholds(9, 9, 9));
  EXPECT_EQ(second.c_c, 1.0);
  EXPECT_EQ(second.h_c, 2.0);
  EXPECT_EQ(second.v_c, 3.0);

  const DeviceBaseline b = reg.baseline("mk3", "acc");
  EXPECT_EQ(b.anchor.v_c, 3.0);
  EXPECT_EQ(b.current.v_c, 3.0);
  EXPECT_EQ(b.prints, 0u);
  EXPECT_EQ(b.frozen, 0u);
}

TEST(BaselineRegistry, DwellBlocksEarlyMovement) {
  AdaptationPolicy p = eager_policy();
  p.min_prints = 3;
  BaselineRegistry reg(p);
  reg.resolve("mk3", "acc", thresholds(1, 1, 1));
  EXPECT_TRUE(reg.fold("mk3", "acc", maxima(2, 2, 2), true));
  EXPECT_TRUE(reg.fold("mk3", "acc", maxima(2, 2, 2), true));
  // Two eligible folds < min_prints: accepted into the ring, no movement.
  EXPECT_EQ(reg.baseline("mk3", "acc").current.v_c, 1.0);
  EXPECT_TRUE(reg.fold("mk3", "acc", maxima(2, 2, 2), true));
  EXPECT_GT(reg.baseline("mk3", "acc").current.v_c, 1.0);
}

TEST(BaselineRegistry, BoundedStepTowardRisingTarget) {
  BaselineRegistry reg(eager_policy());
  reg.resolve("mk3", "acc", thresholds(1, 1, 1));
  double prev = 1.0;
  for (int i = 0; i < 3; ++i) {
    reg.fold("mk3", "acc", maxima(1.4, 1.4, 1.4), true);
    const double cur = reg.baseline("mk3", "acc").current.v_c;
    EXPECT_GT(cur, prev);
    // One fold moves at most max_step relative to the larger of current
    // and anchor.
    EXPECT_LE(cur, prev + 0.10 * std::max(prev, 1.0) + 1e-12);
    prev = cur;
  }
}

TEST(BaselineRegistry, NeverAdaptsBelowAnchor) {
  BaselineRegistry reg(eager_policy());
  reg.resolve("mk3", "acc", thresholds(1, 1, 1));
  // A run of unusually quiet prints re-learns a target far below the
  // factory calibration; the one-sided envelope must refuse to tighten.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(reg.fold("mk3", "acc", maxima(0.2, 0.2, 0.2), true));
  }
  const DeviceBaseline b = reg.baseline("mk3", "acc");
  EXPECT_EQ(b.current.c_c, 1.0);
  EXPECT_EQ(b.current.h_c, 1.0);
  EXPECT_EQ(b.current.v_c, 1.0);
  EXPECT_EQ(b.prints, 10u);
}

TEST(BaselineRegistry, SlowDriftAttackCannotEscapeEnvelope) {
  // Adversarial scenario: an attacker escalates "benign looking" prints a
  // few percent at a time, hoping adaptation follows until real attacks
  // sit below the threshold.  The envelope caps the excursion at
  // anchor*(1+max_drift), so a feature past the envelope still alarms no
  // matter how patient the attacker is.
  BaselineRegistry reg(eager_policy());
  reg.resolve("mk3", "acc", thresholds(1, 1, 1));
  double level = 1.0;
  for (int i = 0; i < 60; ++i) {
    level *= 1.05;
    reg.fold("mk3", "acc", maxima(level, level, level), true);
  }
  const DeviceBaseline b = reg.baseline("mk3", "acc");
  EXPECT_LE(b.current.v_c, 1.5);
  EXPECT_GE(b.current.v_c, 1.5 - 1e-9);  // pinned at the envelope edge
  // The attacker spent 60 prints and the threshold still alarms on any
  // feature beyond the bounded envelope (strict > comparison).
  EXPECT_GT(1.6, b.current.v_c);
  // The anchor never moved.
  EXPECT_EQ(b.anchor.v_c, 1.0);
}

TEST(BaselineRegistry, IneligibleFoldsFreezeStatistics) {
  BaselineRegistry reg(eager_policy());
  reg.resolve("mk3", "acc", thresholds(1, 1, 1));
  EXPECT_FALSE(reg.fold("mk3", "acc", maxima(5, 5, 5), false));
  EXPECT_FALSE(reg.fold("mk3", "acc", maxima(5, 5, 5), false));
  const DeviceBaseline b = reg.baseline("mk3", "acc");
  EXPECT_EQ(b.frozen, 2u);
  EXPECT_EQ(b.prints, 0u);
  EXPECT_TRUE(b.recent.empty());
  EXPECT_EQ(b.current.v_c, 1.0);
}

TEST(BaselineRegistry, NonFiniteMaximaAreFrozenNotFolded) {
  BaselineRegistry reg(eager_policy());
  reg.resolve("mk3", "acc", thresholds(1, 1, 1));
  FeatureMaxima bad = maxima(1, 1, 1);
  bad.v_max = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(reg.fold("mk3", "acc", bad, true));
  EXPECT_EQ(reg.baseline("mk3", "acc").frozen, 1u);
}

TEST(BaselineRegistry, ZeroAnchorComponentStaysPinned) {
  BaselineRegistry reg(eager_policy());
  reg.resolve("mk3", "acc", thresholds(0.0, 1.0, 1.0));
  for (int i = 0; i < 5; ++i) {
    reg.fold("mk3", "acc", maxima(0.7, 1.2, 1.2), true);
  }
  const DeviceBaseline b = reg.baseline("mk3", "acc");
  EXPECT_EQ(b.current.c_c, 0.0);  // empty envelope: pinned at 0
  EXPECT_GT(b.current.h_c, 1.0);
}

TEST(BaselineRegistry, FoldUnknownKeyThrows) {
  BaselineRegistry reg(eager_policy());
  EXPECT_THROW(reg.fold("never", "seen", maxima(1, 1, 1), true),
               std::out_of_range);
  EXPECT_THROW(reg.baseline("never", "seen"), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Codec

/// A registry with two keys and some folded history.
BaselineRegistry populated_registry(const AdaptationPolicy& p) {
  BaselineRegistry reg(p);
  reg.resolve("mk3", "acc", thresholds(1.0, 2.0, 3.0));
  reg.resolve("mk4", "aud", thresholds(0.5, 0.25, 0.125));
  reg.fold("mk3", "acc", maxima(1.1, 2.1, 3.1), true);
  reg.fold("mk3", "acc", maxima(1.2, 2.2, 3.2), true);
  reg.fold("mk3", "acc", maxima(5, 5, 5), false);
  reg.fold("mk4", "aud", maxima(0.6, 0.3, 0.2), true);
  return reg;
}

void expect_same(const BaselineRegistry& a, const BaselineRegistry& b) {
  ASSERT_EQ(a.keys(), b.keys());
  for (const auto& [model, profile] : a.keys()) {
    const DeviceBaseline x = a.baseline(model, profile);
    const DeviceBaseline y = b.baseline(model, profile);
    EXPECT_EQ(x.anchor.c_c, y.anchor.c_c);
    EXPECT_EQ(x.anchor.h_c, y.anchor.h_c);
    EXPECT_EQ(x.anchor.v_c, y.anchor.v_c);
    EXPECT_EQ(x.current.c_c, y.current.c_c);
    EXPECT_EQ(x.current.h_c, y.current.h_c);
    EXPECT_EQ(x.current.v_c, y.current.v_c);
    EXPECT_EQ(x.prints, y.prints);
    EXPECT_EQ(x.frozen, y.frozen);
    ASSERT_EQ(x.recent.size(), y.recent.size());
    for (std::size_t i = 0; i < x.recent.size(); ++i) {
      EXPECT_EQ(x.recent[i].c_max, y.recent[i].c_max);
      EXPECT_EQ(x.recent[i].h_max, y.recent[i].h_max);
      EXPECT_EQ(x.recent[i].v_max, y.recent[i].v_max);
    }
  }
}

TEST(BaselineRegistryCodec, StateRoundTripsThroughCodec) {
  const AdaptationPolicy p = eager_policy();
  const BaselineRegistry reg = populated_registry(p);
  ByteWriter w;
  reg.save_state(w);

  BaselineRegistry restored(p);
  ByteReader r(w.data());
  restored.restore_state(r);
  expect_same(reg, restored);
}

TEST(BaselineRegistryCodec, FileRoundTrips) {
  const std::string path = ::testing::TempDir() + "registry_roundtrip.nbrg";
  const AdaptationPolicy p = eager_policy();
  const BaselineRegistry reg = populated_registry(p);
  reg.save(path);
  const BaselineRegistry loaded = BaselineRegistry::load(path, p);
  expect_same(reg, loaded);
  std::filesystem::remove(path);
}

TEST(BaselineRegistryCodec, TruncatedPayloadRejectedTyped) {
  const AdaptationPolicy p = eager_policy();
  const BaselineRegistry reg = populated_registry(p);
  ByteWriter w;
  reg.save_state(w);
  const std::span<const std::uint8_t> full = w.data();
  for (const std::size_t keep : {full.size() / 4, full.size() / 2,
                                 full.size() - 3}) {
    BaselineRegistry target(p);
    ByteReader r(full.subspan(0, keep));
    EXPECT_THROW(target.restore_state(r), CheckpointError) << keep;
  }
}

TEST(BaselineRegistryCodec, CorruptCountRejectedAndTargetUnchanged) {
  const AdaptationPolicy p = eager_policy();
  const BaselineRegistry reg = populated_registry(p);
  ByteWriter w;
  reg.save_state(w);
  std::vector<std::uint8_t> bytes(w.data().begin(), w.data().end());
  // Section header is u32 id | u64 length; the payload starts with a u32
  // format version then the 40-byte policy fingerprint, so the baseline
  // count sits at offset 12 + 4 + 40.  An absurd count must be rejected
  // before any allocation.
  bytes[12 + 4 + 40 + 7] = 0xFF;
  BaselineRegistry target = populated_registry(p);
  ByteReader r(bytes);
  EXPECT_THROW(target.restore_state(r), CheckpointError);
  // The failed restore left the target exactly as it was.
  expect_same(target, populated_registry(p));
}

TEST(BaselineRegistryCodec, VersionBumpRejected) {
  const AdaptationPolicy p = eager_policy();
  const BaselineRegistry reg = populated_registry(p);
  ByteWriter w;
  reg.save_state(w);
  std::vector<std::uint8_t> bytes(w.data().begin(), w.data().end());
  bytes[12] += 1;  // format version u32 right after the section header
  BaselineRegistry target(p);
  ByteReader r(bytes);
  try {
    target.restore_state(r);
    FAIL() << "version bump must be rejected";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kBadVersion);
  }
}

TEST(BaselineRegistryCodec, PolicyMismatchRejected) {
  const AdaptationPolicy p = eager_policy();
  const BaselineRegistry reg = populated_registry(p);
  ByteWriter w;
  reg.save_state(w);

  AdaptationPolicy other = p;
  other.max_drift = 0.25;
  BaselineRegistry target(other);
  ByteReader r(w.data());
  try {
    target.restore_state(r);
    FAIL() << "policy mismatch must be rejected";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointErrorKind::kMismatch);
  }
}

// ---------------------------------------------------------------------------
// Engine-level guarantees

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 1, 100.0);
  double lp = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    s(n, 0) = lp;
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = b;
  for (std::size_t n = 0; n < a.frames(); ++n) {
    a(n, 0) += rng.normal(0.0, 0.05);
  }
  return a;
}

Signal attack_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 77);
  double lp = 0.0;
  for (std::size_t n = a.frames() / 3; n < a.frames(); ++n) {
    lp += 0.35 * (rng.normal() - lp);
    a(n, 0) = lp;
  }
  return a;
}

NsyncConfig engine_config() {
  NsyncConfig cfg;
  cfg.sync = SyncMethod::kDwm;
  cfg.dwm.n_win = 32;
  cfg.dwm.n_hop = 16;
  cfg.dwm.n_ext = 12;
  cfg.dwm.n_sigma = 6.0;
  cfg.metric = core::DistanceMetric::kEuclidean;
  // Wide margin: these tests exercise registry mechanics, not calibration
  // statistics, so benign prints must clear the factory envelope reliably.
  cfg.r = 2.0;
  return cfg;
}

struct EngineRig {
  Signal reference;
  NsyncConfig cfg;
  Thresholds factory;

  EngineRig() : reference(make_reference(600, 11)), cfg(engine_config()) {
    NsyncIds ids(reference, cfg);
    std::vector<Signal> train;
    for (std::uint64_t s = 0; s < 8; ++s) {
      train.push_back(benign_observation(reference, 100 + s));
    }
    ids.fit(train);
    factory = ids.thresholds();
  }

  SessionSpec spec(const std::string& name) const {
    SessionSpec sp;
    sp.name = name;
    sp.model = "mk3";
    sp.channels.push_back({"acc", reference, cfg, factory});
    return sp;
  }

  /// Admits, streams, snapshots and evicts one print; returns intrusion.
  static bool run_print(MonitorEngine& eng, const SessionSpec& sp,
                        const Signal& obs) {
    const std::size_t id = eng.add_session(sp);
    eng.feed(id, "acc", obs.view());
    eng.poll_session(id);
    const bool intrusion = eng.snapshot(id).intrusion;
    eng.evict_session(id);
    return intrusion;
  }
};

TEST(BaselineRegistryEngine, AttackedPrintNeverPoisonsBaseline) {
  EngineRig rig;
  MonitorEngineOptions opts;
  opts.baseline.adaptive = true;
  opts.baseline.policy = eager_policy();
  MonitorEngine eng(opts);

  EXPECT_FALSE(EngineRig::run_print(eng, rig.spec("p0"),
                                    benign_observation(rig.reference, 500)));
  const DeviceBaseline after_benign =
      eng.baseline_registry()->baseline("mk3", "acc");
  EXPECT_EQ(after_benign.prints, 1u);
  EXPECT_EQ(after_benign.frozen, 0u);

  EXPECT_TRUE(EngineRig::run_print(eng, rig.spec("p1"),
                                   attack_observation(rig.reference, 501)));
  const DeviceBaseline after_attack =
      eng.baseline_registry()->baseline("mk3", "acc");
  // The attacked print froze: statistics and thresholds are untouched.
  EXPECT_EQ(after_attack.prints, 1u);
  EXPECT_EQ(after_attack.frozen, 1u);
  EXPECT_EQ(after_attack.current.c_c, after_benign.current.c_c);
  EXPECT_EQ(after_attack.current.h_c, after_benign.current.h_c);
  EXPECT_EQ(after_attack.current.v_c, after_benign.current.v_c);
  // And detection kept working on the print after the attack.
  EXPECT_FALSE(EngineRig::run_print(eng, rig.spec("p2"),
                                    benign_observation(rig.reference, 502)));
}

TEST(BaselineRegistryEngine, BenignMaximaChunkInvariant) {
  EngineRig rig;
  const Signal obs = benign_observation(rig.reference, 600);

  RealtimeMonitor whole(rig.reference, rig.cfg, rig.factory);
  whole.push(obs.view());

  RealtimeMonitor chunked(rig.reference, rig.cfg, rig.factory);
  for (std::size_t n = 0; n < obs.frames(); n += 7) {
    const std::size_t end = std::min(n + 7, obs.frames());
    chunked.push(obs.view().slice(n, end));
  }

  EXPECT_EQ(whole.benign_windows(), chunked.benign_windows());
  EXPECT_EQ(whole.benign_feature_maxima().c_max,
            chunked.benign_feature_maxima().c_max);
  EXPECT_EQ(whole.benign_feature_maxima().h_max,
            chunked.benign_feature_maxima().h_max);
  EXPECT_EQ(whole.benign_feature_maxima().v_max,
            chunked.benign_feature_maxima().v_max);
}

TEST(BaselineRegistryEngine, AdaptedThresholdsSurviveSerializeRestore) {
  EngineRig rig;
  MonitorEngineOptions opts;
  opts.baseline.adaptive = true;
  opts.baseline.policy = eager_policy();
  MonitorEngine eng(opts);
  for (std::uint64_t p = 0; p < 3; ++p) {
    EngineRig::run_print(eng, rig.spec("p" + std::to_string(p)),
                         benign_observation(rig.reference, 700 + p));
  }
  const DeviceBaseline before =
      eng.baseline_registry()->baseline("mk3", "acc");

  const std::vector<std::uint8_t> payload = eng.serialize();
  MonitorEngine restored = MonitorEngine::restore_from_bytes(payload, opts);
  ASSERT_NE(restored.baseline_registry(), nullptr);
  const DeviceBaseline after =
      restored.baseline_registry()->baseline("mk3", "acc");
  EXPECT_EQ(before.current.c_c, after.current.c_c);
  EXPECT_EQ(before.current.h_c, after.current.h_c);
  EXPECT_EQ(before.current.v_c, after.current.v_c);
  EXPECT_EQ(before.prints, after.prints);
  EXPECT_EQ(before.frozen, after.frozen);

  // A new print admitted on either engine resolves identical thresholds.
  const std::size_t a = eng.add_session(rig.spec("probe"));
  const std::size_t b = restored.add_session(rig.spec("probe"));
  const auto ta = eng.snapshot(a).channels.at(0).thresholds;
  const auto tb = restored.snapshot(b).channels.at(0).thresholds;
  EXPECT_EQ(ta.c_c, tb.c_c);
  EXPECT_EQ(ta.h_c, tb.h_c);
  EXPECT_EQ(ta.v_c, tb.v_c);
}

}  // namespace
}  // namespace nsync
