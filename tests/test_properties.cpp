// Cross-module property tests: randomized G-code programs through the
// planner, slicer -> serializer -> parser round trips, and RNG guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gcode/attacks.hpp"
#include "gcode/parser.hpp"
#include "gcode/slicer.hpp"
#include "printer/planner.hpp"
#include "printer/simulator.hpp"
#include "signal/rng.hpp"

namespace nsync {
namespace {

using gcode::Command;
using gcode::CommandType;
using gcode::Program;

// ------------------------------------------------------------------ Rng --

TEST(Rng, DeterministicAcrossInstances) {
  signal::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, ForkDecorrelatesStreams) {
  signal::Rng parent(7);
  signal::Rng c1 = parent.fork();
  signal::Rng c2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 200; ++i) {
    if (c1.uniform_int(0, 1 << 20) == c2.uniform_int(0, 1 << 20)) ++equal;
  }
  EXPECT_LT(equal, 3);  // forked streams must not track each other
}

TEST(Rng, DistributionSanity) {
  signal::Rng rng(99);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

// ------------------------------------------------------ random programs --

Program random_program(std::uint64_t seed, std::size_t moves) {
  signal::Rng rng(seed);
  std::vector<Command> cmds;
  double x = 50.0, y = 50.0, e = 0.0;
  for (std::size_t i = 0; i < moves; ++i) {
    if (rng.bernoulli(0.06)) {
      Command dwell;
      dwell.type = CommandType::kDwell;
      dwell.p = rng.uniform(10.0, 200.0);
      cmds.push_back(dwell);
      continue;
    }
    Command c;
    c.type = rng.bernoulli(0.7) ? CommandType::kLinearMove
                                : CommandType::kRapidMove;
    x = std::clamp(x + rng.normal(0.0, 8.0), 0.0, 120.0);
    y = std::clamp(y + rng.normal(0.0, 8.0), 0.0, 120.0);
    c.x = x;
    c.y = y;
    if (c.type == CommandType::kLinearMove && rng.bernoulli(0.8)) {
      e += rng.uniform(0.01, 0.3);
      c.e = e;
    }
    c.f = rng.uniform(600.0, 9000.0);
    cmds.push_back(c);
  }
  return Program(std::move(cmds));
}

class RandomProgramPlanning : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomProgramPlanning, PlansAreAlwaysConsistent) {
  const Program p = random_program(GetParam(), 120);
  printer::MachineConfig m = printer::ultimaker3();
  m.time_noise = printer::TimeNoiseConfig::none();
  const printer::MotionPlan plan = plan_program(p, m);

  const printer::MotionSegment* prev = nullptr;
  double total = 0.0;
  for (const auto& item : plan.items) {
    if (item.type != printer::PlanItemType::kMove) {
      prev = nullptr;
      continue;
    }
    const auto& s = item.move;
    // Profile covers exactly the path length.
    EXPECT_NEAR(s.distance_at(s.duration()), s.length, 1e-6);
    // Cruise dominates entry/exit.
    EXPECT_GE(s.v_cruise + 1e-9, s.v_entry);
    EXPECT_GE(s.v_cruise + 1e-9, s.v_exit);
    // Machine limits hold.
    EXPECT_LE(s.v_cruise, m.max_velocity + 1e-6);
    // Junction continuity.
    if (prev != nullptr) {
      EXPECT_NEAR(prev->v_exit, s.v_entry, 1e-6);
    }
    prev = &s;
    total += s.duration();
  }
  EXPECT_GT(total, 0.0);
  EXPECT_TRUE(std::isfinite(plan.nominal_motion_duration()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramPlanning,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class RandomProgramExecution : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomProgramExecution, NoiseNeverBreaksGeometry) {
  const Program p = random_program(GetParam() + 100, 60);
  const printer::MachineConfig m = printer::ultimaker3();
  printer::ExecutorConfig exec;
  exec.sample_rate = 400.0;
  const auto trace = printer::simulate_print(p, m, exec, GetParam());
  // The trace must stay within the commanded envelope.
  for (std::size_t i = 0; i < trace.samples(); ++i) {
    EXPECT_GE(trace.x[i], -1.0);
    EXPECT_LE(trace.x[i], 121.0);
    EXPECT_TRUE(std::isfinite(trace.vx[i]));
    EXPECT_TRUE(std::isfinite(trace.ax[i]));
  }
  // Flow is only nonnegative (no retractions in these programs).
  for (double f : trace.flow) EXPECT_GE(f, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramExecution,
                         ::testing::Values(11, 22, 33, 44, 55));

// ----------------------------------------------------------- round trip --

class SlicerRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(SlicerRoundTrip, SerializeParsePreservesPlannedTiming) {
  gcode::SlicerConfig cfg;
  cfg.object_height = 0.6;
  cfg.layer_height = GetParam();
  const Program original = gcode::slice(gcode::circle_outline(6.0), cfg);
  const Program reparsed = gcode::parse_program(gcode::to_gcode(original));

  printer::MachineConfig m = printer::ultimaker3();
  m.time_noise = printer::TimeNoiseConfig::none();
  const double t1 =
      plan_program(original, m).nominal_motion_duration();
  const double t2 =
      plan_program(reparsed, m).nominal_motion_duration();
  // 5-decimal serialization keeps the plan essentially identical.
  EXPECT_NEAR(t1, t2, t1 * 1e-4);
  EXPECT_EQ(original.layer_starts().size(), reparsed.layer_starts().size());
}

INSTANTIATE_TEST_SUITE_P(LayerHeights, SlicerRoundTrip,
                         ::testing::Values(0.15, 0.2, 0.3));

TEST(AttackRoundTrip, MutatedProgramsSurviveSerialization) {
  gcode::SlicerConfig cfg;
  cfg.object_height = 0.6;
  const auto outline = gcode::gear_outline(8, 5.0, 6.5);
  const Program benign = gcode::slice(outline, cfg);
  for (gcode::AttackType a : gcode::all_attacks()) {
    const Program attacked = gcode::apply_attack(a, benign, outline, cfg);
    const Program reparsed = gcode::parse_program(gcode::to_gcode(attacked));
    EXPECT_EQ(attacked.size(), reparsed.size()) << gcode::attack_name(a);
    EXPECT_NEAR(attacked.stats().total_extrusion,
                reparsed.stats().total_extrusion, 1e-2)
        << gcode::attack_name(a);
  }
}

// ------------------------------------------------- end-to-end invariants --

TEST(EndToEnd, NoiselessTraceIsCanonicalTimeBase) {
  // A noiseless run must be strictly shorter or equal to the expected
  // duration of noisy runs on average (gaps only ever add time).
  gcode::SlicerConfig cfg;
  cfg.object_height = 0.4;
  const Program p = gcode::slice(gcode::circle_outline(6.0), cfg);
  const printer::MachineConfig m = printer::ultimaker3();
  printer::ExecutorConfig exec;
  exec.sample_rate = 400.0;
  const double quiet =
      printer::simulate_print_noiseless(p, m, exec).duration();
  double noisy_sum = 0.0;
  const int runs = 5;
  for (int s = 0; s < runs; ++s) {
    noisy_sum += printer::simulate_print(p, m, exec, 1000 + s).duration();
  }
  EXPECT_GT(noisy_sum / runs, quiet - 0.05);
}

}  // namespace
}  // namespace nsync
