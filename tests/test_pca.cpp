// Tests for the eigensolvers and PCA used by Belikovetsky's baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/pca.hpp"
#include "signal/rng.hpp"

namespace nsync::dsp {
namespace {

TEST(Jacobi, DiagonalMatrixIsItsOwnEigensystem) {
  Matrix m(3, 3);
  m(0, 0) = 3.0;
  m(1, 1) = 1.0;
  m(2, 2) = 2.0;
  const auto r = jacobi_eigen_symmetric(m);
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], 3.0, 1e-10);
  EXPECT_NEAR(r.values[1], 2.0, 1e-10);
  EXPECT_NEAR(r.values[2], 1.0, 1e-10);
}

TEST(Jacobi, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with eigenvectors
  // (1, 1)/sqrt(2) and (1, -1)/sqrt(2).
  Matrix m(2, 2);
  m(0, 0) = 2.0;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  m(1, 1) = 2.0;
  const auto r = jacobi_eigen_symmetric(m);
  EXPECT_NEAR(r.values[0], 3.0, 1e-10);
  EXPECT_NEAR(r.values[1], 1.0, 1e-10);
  EXPECT_NEAR(std::abs(r.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::abs(r.vectors(1, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(Jacobi, RejectsNonSquare) {
  Matrix m(2, 3);
  EXPECT_THROW(jacobi_eigen_symmetric(m), std::invalid_argument);
}

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  nsync::signal::Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
    }
  }
  // A^T A is symmetric positive semi-definite.
  Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a(k, i) * a(k, j);
      s(i, j) = acc;
    }
  }
  return s;
}

class EigenAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenAgreement, TopKMatchesJacobi) {
  const std::size_t n = GetParam();
  const Matrix m = random_spd(n, 42 + n);
  const auto full = jacobi_eigen_symmetric(m);
  const auto topk = top_k_eigen_symmetric(m, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(topk.values[j], full.values[j],
                1e-6 * std::max(1.0, full.values[0]))
        << "eigenvalue " << j << " of " << n << "x" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenAgreement,
                         ::testing::Values(4, 6, 10, 16));

TEST(TopKEigen, EigenvectorResidualIsSmall) {
  const Matrix m = random_spd(12, 3);
  const auto r = top_k_eigen_symmetric(m, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    // || A v - lambda v || should be small.
    double res = 0.0, vnorm = 0.0;
    for (std::size_t i = 0; i < 12; ++i) {
      double av = 0.0;
      for (std::size_t k = 0; k < 12; ++k) av += m(i, k) * r.vectors(k, j);
      const double d = av - r.values[j] * r.vectors(i, j);
      res += d * d;
      vnorm += r.vectors(i, j) * r.vectors(i, j);
    }
    EXPECT_NEAR(vnorm, 1.0, 1e-6);
    EXPECT_LT(std::sqrt(res), 1e-4 * std::max(1.0, r.values[0]));
  }
}

TEST(TopKEigen, RejectsBadK) {
  const Matrix m = random_spd(4, 1);
  EXPECT_THROW(top_k_eigen_symmetric(m, 0), std::invalid_argument);
  EXPECT_THROW(top_k_eigen_symmetric(m, 5), std::invalid_argument);
}

nsync::signal::Signal correlated_signal(std::size_t frames,
                                        std::uint64_t seed) {
  // Three latent factors spread over eight channels plus small noise: the
  // top-3 PCA should capture nearly all variance.
  nsync::signal::Rng rng(seed);
  nsync::signal::Signal s(frames, 8, 100.0);
  for (std::size_t n = 0; n < frames; ++n) {
    const double f0 = rng.normal(0.0, 3.0);
    const double f1 = rng.normal(0.0, 2.0);
    const double f2 = rng.normal(0.0, 1.0);
    for (std::size_t c = 0; c < 8; ++c) {
      const double w0 = std::sin(static_cast<double>(c));
      const double w1 = std::cos(static_cast<double>(c) * 1.3);
      const double w2 = std::sin(static_cast<double>(c) * 2.1 + 0.5);
      s(n, c) = w0 * f0 + w1 * f1 + w2 * f2 + rng.normal(0.0, 0.01);
    }
  }
  return s;
}

TEST(Pca, CapturesLowRankStructure) {
  const auto s = correlated_signal(500, 11);
  const Pca model = Pca::fit(s, 3);
  EXPECT_EQ(model.components(), 3u);
  EXPECT_EQ(model.input_channels(), 8u);
  // Explained variance sorted descending.
  const auto& ev = model.explained_variance();
  EXPECT_GE(ev[0], ev[1]);
  EXPECT_GE(ev[1], ev[2]);
  // Three factors -> third component still carries real variance, and a
  // hypothetical fourth would not; compare against total channel variance.
  EXPECT_GT(ev[2], 0.01);
}

TEST(Pca, TransformOutputIsDecorrelated) {
  const auto s = correlated_signal(800, 12);
  const Pca model = Pca::fit(s, 3);
  const auto t = model.transform(s);
  EXPECT_EQ(t.channels(), 3u);
  EXPECT_EQ(t.frames(), s.frames());
  // Cross-covariance between distinct PCA outputs should be ~0.
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a + 1; b < 3; ++b) {
      double acc = 0.0;
      for (std::size_t n = 0; n < t.frames(); ++n) acc += t(n, a) * t(n, b);
      acc /= static_cast<double>(t.frames());
      const double scale = std::sqrt(model.explained_variance()[a] *
                                     model.explained_variance()[b]);
      EXPECT_LT(std::abs(acc), 0.05 * scale) << a << "," << b;
    }
  }
}

TEST(Pca, TransformRejectsChannelMismatch) {
  const auto s = correlated_signal(100, 13);
  const Pca model = Pca::fit(s, 2);
  nsync::signal::Signal other(10, 5, 100.0);
  EXPECT_THROW(model.transform(other), std::invalid_argument);
}

TEST(Pca, FitRejectsDegenerateInput) {
  nsync::signal::Signal s(1, 4, 100.0);
  EXPECT_THROW(Pca::fit(s, 2), std::invalid_argument);
  nsync::signal::Signal s2(10, 4, 100.0);
  EXPECT_THROW(Pca::fit(s2, 0), std::invalid_argument);
  EXPECT_THROW(Pca::fit(s2, 5), std::invalid_argument);
}

}  // namespace
}  // namespace nsync::dsp
