// Tests for window functions and the spectrogram pipeline (Table III).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/stft.hpp"
#include "dsp/windows.hpp"
#include "signal/signal.hpp"

namespace nsync::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Windows, ParseNames) {
  EXPECT_EQ(parse_window_type("boxcar"), WindowType::kBoxcar);
  EXPECT_EQ(parse_window_type("Blackman-Harris"), WindowType::kBlackmanHarris);
  EXPECT_EQ(parse_window_type("BH"), WindowType::kBlackmanHarris);
  EXPECT_EQ(parse_window_type("HANN"), WindowType::kHann);
  EXPECT_EQ(parse_window_type("gauss"), WindowType::kGaussian);
  EXPECT_THROW(parse_window_type("kaiser"), std::invalid_argument);
}

TEST(Windows, NamesRoundTrip) {
  for (auto t : {WindowType::kBoxcar, WindowType::kHann,
                 WindowType::kBlackmanHarris, WindowType::kGaussian}) {
    EXPECT_EQ(parse_window_type(window_type_name(t)), t);
  }
}

TEST(Windows, BoxcarIsAllOnes) {
  const auto w = make_window(WindowType::kBoxcar, 8);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0);
}

class WindowSymmetry : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowSymmetry, SymmetricAndBounded) {
  const auto w = make_window(GetParam(), 65);
  ASSERT_EQ(w.size(), 65u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12) << "i=" << i;
    EXPECT_GE(w[i], -1e-12);
    EXPECT_LE(w[i], 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WindowSymmetry,
                         ::testing::Values(WindowType::kBoxcar,
                                           WindowType::kHann,
                                           WindowType::kBlackmanHarris,
                                           WindowType::kGaussian));

TEST(Windows, HannEndpointsNearZeroCenterOne) {
  const auto w = make_window(WindowType::kHann, 33);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[16], 1.0, 1e-12);
}

TEST(Windows, GaussianPeaksAtCenter) {
  const auto w = gaussian_window(21, 3.0);
  EXPECT_NEAR(w[10], 1.0, 1e-12);
  EXPECT_LT(w.front(), w[10]);
  EXPECT_THROW(gaussian_window(5, 0.0), std::invalid_argument);
}

TEST(Windows, TrivialLengths) {
  EXPECT_EQ(make_window(WindowType::kHann, 0).size(), 0u);
  const auto w1 = make_window(WindowType::kBlackmanHarris, 1);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_DOUBLE_EQ(w1[0], 1.0);
}

TEST(Stft, GeometryMatchesTableIII) {
  // ACC at the paper's 4 kHz with delta_f = 20 Hz -> 200-sample window,
  // 101 bins; delta_t = 1/80 s -> 50-sample hop; 6 channels -> 606 output
  // channels (Table III: 101 x 6).
  StftConfig cfg;
  cfg.delta_f = 20.0;
  cfg.delta_t = 1.0 / 80.0;
  EXPECT_EQ(stft_window_samples(cfg, 4000.0), 200u);
  EXPECT_EQ(stft_bins(cfg, 4000.0), 101u);
  EXPECT_EQ(stft_hop_samples(cfg, 4000.0), 50u);

  nsync::signal::Signal s(4000, 6, 4000.0);
  const auto spec = spectrogram(s, cfg);
  EXPECT_EQ(spec.channels(), 606u);
  EXPECT_DOUBLE_EQ(spec.sample_rate(), 80.0);
}

TEST(Stft, ToneLandsInCorrectBin) {
  const double fs = 1000.0;
  const double tone = 100.0;
  nsync::signal::Signal s(4000, 1, fs);
  for (std::size_t n = 0; n < s.frames(); ++n) {
    s(n, 0) = std::sin(2.0 * kPi * tone * static_cast<double>(n) / fs);
  }
  StftConfig cfg;
  cfg.delta_f = 10.0;  // window = 100 samples, bins every 10 Hz
  cfg.delta_t = 0.05;
  const auto spec = spectrogram(s, cfg);
  // Expected peak bin: tone / delta_f = 10.
  for (std::size_t col = 1; col + 1 < spec.frames(); ++col) {
    std::size_t best = 0;
    for (std::size_t k = 0; k < spec.channels(); ++k) {
      if (spec(col, k) > spec(col, best)) best = k;
    }
    EXPECT_EQ(best, 10u) << "column " << col;
  }
}

TEST(Stft, SpectrogramIsTimeShiftTolerantPerColumn) {
  // The magnitude spectrum of a stationary tone does not depend on the
  // phase at which the window lands — the property that makes spectrograms
  // useful for comparing signals with small misalignment.
  const double fs = 1000.0;
  nsync::signal::Signal s(2048, 1, fs);
  for (std::size_t n = 0; n < s.frames(); ++n) {
    s(n, 0) = std::sin(2.0 * kPi * 50.0 * static_cast<double>(n) / fs);
  }
  StftConfig cfg;
  cfg.delta_f = 10.0;
  cfg.delta_t = 0.013;  // deliberately not phase-locked to the tone
  const auto spec = spectrogram(s, cfg);
  const std::size_t bin = 5;
  for (std::size_t col = 1; col + 1 < spec.frames(); ++col) {
    EXPECT_NEAR(spec(col, bin), spec(1, bin), 0.02 * spec(1, bin));
  }
}

TEST(Stft, LogMagnitudeCompresses) {
  nsync::signal::Signal s(512, 1, 1000.0);
  for (std::size_t n = 0; n < s.frames(); ++n) {
    s(n, 0) = 100.0 * std::sin(2.0 * kPi * 100.0 * static_cast<double>(n) /
                               1000.0);
  }
  StftConfig lin;
  lin.delta_f = 10.0;
  lin.delta_t = 0.05;
  StftConfig log = lin;
  log.log_magnitude = true;
  const auto a = spectrogram(s, lin);
  const auto b = spectrogram(s, log);
  double max_lin = 0.0, max_log = 0.0;
  for (std::size_t k = 0; k < a.channels(); ++k) {
    max_lin = std::max(max_lin, a(0, k));
    max_log = std::max(max_log, b(0, k));
  }
  EXPECT_GT(max_lin, 100.0);
  EXPECT_LT(max_log, 12.0);
  EXPECT_NEAR(max_log, std::log1p(max_lin), 1e-9);
}

TEST(Stft, ErrorsOnShortSignalOrBadConfig) {
  nsync::signal::Signal s(10, 1, 1000.0);
  StftConfig cfg;
  cfg.delta_f = 10.0;  // needs a 100-sample window
  cfg.delta_t = 0.01;
  EXPECT_THROW(spectrogram(s, cfg), std::invalid_argument);
  StftConfig bad;
  bad.delta_f = -1.0;
  EXPECT_THROW(stft_window_samples(bad, 1000.0), std::invalid_argument);
}

}  // namespace
}  // namespace nsync::dsp
