// Tests for the multi-channel fusion extension.
#include <gtest/gtest.h>

#include "core/fusion.hpp"
#include "signal/rng.hpp"

namespace nsync::core {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;

Signal band_noise(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

Signal observe(const Signal& b, std::uint64_t seed, bool tampered) {
  Rng rng(seed);
  Signal a = b;
  for (std::size_t n = 0; n < a.frames(); ++n) {
    for (std::size_t c = 0; c < a.channels(); ++c) {
      a(n, c) += rng.normal(0.0, 0.02);
    }
  }
  if (tampered) {
    double lp = 0.0;
    for (std::size_t n = a.frames() / 3; n < 2 * a.frames() / 3; ++n) {
      lp += 0.35 * (rng.normal() - lp);
      for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
    }
  }
  return a;
}

NsyncConfig small_config() {
  NsyncConfig cfg;
  cfg.sync = SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.r = 0.3;
  return cfg;
}

class FusionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ref_a_ = band_noise(1000, 1);
    ref_b_ = band_noise(1000, 2);
    for (std::uint64_t s = 0; s < 5; ++s) {
      FusionIds::SignalMap run;
      run["A"] = observe(ref_a_, 100 + s, false);
      run["B"] = observe(ref_b_, 200 + s, false);
      train_.push_back(std::move(run));
    }
  }

  FusionIds make(FusionRule rule) {
    FusionIds ids(rule);
    ids.add_channel("A", ref_a_, small_config());
    ids.add_channel("B", ref_b_, small_config());
    ids.fit(train_);
    return ids;
  }

  Signal ref_a_, ref_b_;
  std::vector<FusionIds::SignalMap> train_;
};

TEST_F(FusionFixture, RegistrationAndIntrospection) {
  FusionIds ids(FusionRule::kAny);
  ids.add_channel("A", ref_a_, small_config());
  EXPECT_EQ(ids.channels(), 1u);
  EXPECT_THROW(ids.add_channel("A", ref_a_, small_config()),
               std::invalid_argument);
  EXPECT_THROW(ids.member("Z"), std::invalid_argument);
  EXPECT_EQ(fusion_rule_name(FusionRule::kMajority), "majority");
}

TEST_F(FusionFixture, BenignPassesAllRules) {
  for (FusionRule rule :
       {FusionRule::kAny, FusionRule::kMajority, FusionRule::kAll}) {
    FusionIds ids = make(rule);
    FusionIds::SignalMap obs;
    obs["A"] = observe(ref_a_, 900, false);
    obs["B"] = observe(ref_b_, 901, false);
    EXPECT_FALSE(ids.detect(obs).intrusion) << fusion_rule_name(rule);
  }
}

TEST_F(FusionFixture, AttackOnBothChannelsCaughtByAllRules) {
  for (FusionRule rule :
       {FusionRule::kAny, FusionRule::kMajority, FusionRule::kAll}) {
    FusionIds ids = make(rule);
    FusionIds::SignalMap obs;
    obs["A"] = observe(ref_a_, 902, true);
    obs["B"] = observe(ref_b_, 903, true);
    const FusionDetection d = ids.detect(obs);
    EXPECT_TRUE(d.intrusion) << fusion_rule_name(rule);
    EXPECT_EQ(d.alarming_channels, 2u);
    EXPECT_EQ(d.per_channel.size(), 2u);
  }
}

TEST_F(FusionFixture, SingleChannelLeakSplitsTheRules) {
  // Attack visible on channel A only (channel B's observation is benign):
  // kAny fires, kAll does not; with two channels, majority (> half) does
  // not fire either.
  FusionIds::SignalMap obs;
  obs["A"] = observe(ref_a_, 904, true);
  obs["B"] = observe(ref_b_, 905, false);
  EXPECT_TRUE(make(FusionRule::kAny).detect(obs).intrusion);
  EXPECT_FALSE(make(FusionRule::kAll).detect(obs).intrusion);
  EXPECT_FALSE(make(FusionRule::kMajority).detect(obs).intrusion);
}

TEST_F(FusionFixture, MissingChannelThrows) {
  FusionIds ids = make(FusionRule::kAny);
  FusionIds::SignalMap incomplete;
  incomplete["A"] = observe(ref_a_, 906, false);
  EXPECT_THROW(ids.detect(incomplete), std::invalid_argument);

  FusionIds unfit(FusionRule::kAny);
  unfit.add_channel("A", ref_a_, small_config());
  std::vector<FusionIds::SignalMap> bad_train = {{}};
  EXPECT_THROW(unfit.fit(bad_train), std::invalid_argument);
}

TEST_F(FusionFixture, EmptyFusionRejected) {
  FusionIds ids(FusionRule::kAny);
  std::vector<FusionIds::SignalMap> empty_train = {};
  EXPECT_THROW(ids.fit(empty_train), std::logic_error);
  FusionIds::SignalMap obs;
  EXPECT_THROW(ids.detect(obs), std::logic_error);
}

}  // namespace
}  // namespace nsync::core
