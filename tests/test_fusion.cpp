// Tests for the multi-channel fusion extension.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/fusion.hpp"
#include "signal/rng.hpp"

namespace nsync::core {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;

Signal band_noise(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

Signal observe(const Signal& b, std::uint64_t seed, bool tampered) {
  Rng rng(seed);
  Signal a = b;
  for (std::size_t n = 0; n < a.frames(); ++n) {
    for (std::size_t c = 0; c < a.channels(); ++c) {
      a(n, c) += rng.normal(0.0, 0.02);
    }
  }
  if (tampered) {
    double lp = 0.0;
    for (std::size_t n = a.frames() / 3; n < 2 * a.frames() / 3; ++n) {
      lp += 0.35 * (rng.normal() - lp);
      for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
    }
  }
  return a;
}

NsyncConfig small_config() {
  NsyncConfig cfg;
  cfg.sync = SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.r = 0.3;
  return cfg;
}

class FusionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ref_a_ = band_noise(1000, 1);
    ref_b_ = band_noise(1000, 2);
    for (std::uint64_t s = 0; s < 5; ++s) {
      FusionIds::SignalMap run;
      run["A"] = observe(ref_a_, 100 + s, false);
      run["B"] = observe(ref_b_, 200 + s, false);
      train_.push_back(std::move(run));
    }
  }

  FusionIds make(FusionRule rule) {
    FusionIds ids(rule);
    ids.add_channel("A", ref_a_, small_config());
    ids.add_channel("B", ref_b_, small_config());
    ids.fit(train_);
    return ids;
  }

  Signal ref_a_, ref_b_;
  std::vector<FusionIds::SignalMap> train_;
};

TEST_F(FusionFixture, RegistrationAndIntrospection) {
  FusionIds ids(FusionRule::kAny);
  ids.add_channel("A", ref_a_, small_config());
  EXPECT_EQ(ids.channels(), 1u);
  EXPECT_THROW(ids.add_channel("A", ref_a_, small_config()),
               std::invalid_argument);
  EXPECT_THROW(ids.member("Z"), std::invalid_argument);
  EXPECT_EQ(fusion_rule_name(FusionRule::kMajority), "majority");
}

TEST_F(FusionFixture, BenignPassesAllRules) {
  for (FusionRule rule :
       {FusionRule::kAny, FusionRule::kMajority, FusionRule::kAll}) {
    FusionIds ids = make(rule);
    FusionIds::SignalMap obs;
    obs["A"] = observe(ref_a_, 900, false);
    obs["B"] = observe(ref_b_, 901, false);
    EXPECT_FALSE(ids.detect(obs).intrusion) << fusion_rule_name(rule);
  }
}

TEST_F(FusionFixture, AttackOnBothChannelsCaughtByAllRules) {
  for (FusionRule rule :
       {FusionRule::kAny, FusionRule::kMajority, FusionRule::kAll}) {
    FusionIds ids = make(rule);
    FusionIds::SignalMap obs;
    obs["A"] = observe(ref_a_, 902, true);
    obs["B"] = observe(ref_b_, 903, true);
    const FusionDetection d = ids.detect(obs);
    EXPECT_TRUE(d.intrusion) << fusion_rule_name(rule);
    EXPECT_EQ(d.alarming_channels, 2u);
    EXPECT_EQ(d.per_channel.size(), 2u);
  }
}

TEST_F(FusionFixture, SingleChannelLeakSplitsTheRules) {
  // Attack visible on channel A only (channel B's observation is benign):
  // kAny fires, kAll does not; with two channels, majority (> half) does
  // not fire either.
  FusionIds::SignalMap obs;
  obs["A"] = observe(ref_a_, 904, true);
  obs["B"] = observe(ref_b_, 905, false);
  EXPECT_TRUE(make(FusionRule::kAny).detect(obs).intrusion);
  EXPECT_FALSE(make(FusionRule::kAll).detect(obs).intrusion);
  EXPECT_FALSE(make(FusionRule::kMajority).detect(obs).intrusion);
}

TEST_F(FusionFixture, MissingChannelThrows) {
  FusionIds ids = make(FusionRule::kAny);
  FusionIds::SignalMap incomplete;
  incomplete["A"] = observe(ref_a_, 906, false);
  EXPECT_THROW(ids.detect(incomplete), std::invalid_argument);

  FusionIds unfit(FusionRule::kAny);
  unfit.add_channel("A", ref_a_, small_config());
  std::vector<FusionIds::SignalMap> bad_train = {{}};
  EXPECT_THROW(unfit.fit(bad_train), std::invalid_argument);
}

TEST_F(FusionFixture, EmptyFusionRejected) {
  FusionIds ids(FusionRule::kAny);
  std::vector<FusionIds::SignalMap> empty_train = {};
  EXPECT_THROW(ids.fit(empty_train), std::logic_error);
  FusionIds::SignalMap obs;
  EXPECT_THROW(ids.detect(obs), std::logic_error);
}

// ---------------------------------------------------------------------------
// Rule parsing

TEST(FusionRuleParsing, RoundTripsEveryRule) {
  for (FusionRule rule :
       {FusionRule::kAny, FusionRule::kMajority, FusionRule::kAll}) {
    EXPECT_EQ(parse_fusion_rule(fusion_rule_name(rule)), rule);
  }
}

TEST(FusionRuleParsing, RejectsUnknownNamesListingTheValidSet) {
  try {
    (void)parse_fusion_rule("bogus");
    FAIL() << "unknown rule accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
    for (const char* valid : {"any", "majority", "all"}) {
      EXPECT_NE(what.find(valid), std::string::npos)
          << "valid set missing '" << valid << "': " << what;
    }
  }
  EXPECT_THROW((void)parse_fusion_rule(""), std::invalid_argument);
  EXPECT_THROW((void)parse_fusion_rule("ANY"), std::invalid_argument);
  EXPECT_THROW((void)parse_fusion_rule("weighted"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Channel anomaly scores

TEST(ChannelScoreMath, ThresholdRatioEdgeCases) {
  EXPECT_EQ(threshold_ratio(2.0, 4.0), 0.5);
  EXPECT_EQ(threshold_ratio(4.0, 4.0), 1.0);
  // NaN features are masked faulted windows: no evidence.
  EXPECT_EQ(threshold_ratio(std::nan(""), 1.0), 0.0);
  // Degenerate thresholds: positive evidence over t <= 0 scores the
  // ceiling (discriminate's strict `feature > threshold` alarms there),
  // no evidence scores zero.
  EXPECT_EQ(threshold_ratio(1.0, 0.0), kMaxChannelScore);
  EXPECT_EQ(threshold_ratio(0.0, 0.0), 0.0);
  // Extreme ratios clamp instead of overflowing telemetry doubles.
  EXPECT_EQ(threshold_ratio(1e308, 1e-3), kMaxChannelScore);
}

TEST(ChannelScoreMath, AgreesWithTheDiscriminator) {
  DetectionFeatures f;
  f.c_disp = {0.2, 0.9};
  f.h_dist_f = {0.1};
  f.v_dist_f = {0.5, 1.2, 0.3};
  Thresholds t;
  t.c_c = 1.0;
  t.h_c = 1.0;
  t.v_c = 2.0;
  // Peak ratio 0.9 (c_disp[1]); strictly below 1 and no alarm.
  EXPECT_EQ(channel_score(f, t), 0.9);
  EXPECT_FALSE(discriminate(f, t).intrusion);
  // Push one feature past its critical value: score > 1 iff alarm.
  f.v_dist_f.push_back(3.0);  // ratio 1.5
  EXPECT_EQ(channel_score(f, t), 1.5);
  EXPECT_TRUE(discriminate(f, t).intrusion);
}

TEST_F(FusionFixture, DetectAnalysesNamesTheOffendingChannel) {
  FusionIds ids = make(FusionRule::kAny);
  std::map<std::string, Analysis> analyses;
  analyses.emplace("A", ids.member("A").analyze(observe(ref_a_, 910, false)));
  try {
    (void)ids.detect_analyses(analyses);
    FAIL() << "missing channel accepted";
  } catch (const FusionChannelError& e) {
    EXPECT_EQ(e.kind(), FusionChannelError::Kind::kMissing);
    EXPECT_EQ(e.channel(), "B");
  }
  analyses.emplace("B", ids.member("B").analyze(observe(ref_b_, 911, false)));
  analyses.emplace("Z", ids.member("A").analyze(observe(ref_a_, 912, false)));
  try {
    (void)ids.detect_analyses(analyses);
    FAIL() << "unknown extra channel accepted";
  } catch (const FusionChannelError& e) {
    EXPECT_EQ(e.kind(), FusionChannelError::Kind::kUnknown);
    EXPECT_EQ(e.channel(), "Z");
  }
  analyses.erase("Z");
  EXPECT_NO_THROW((void)ids.detect_analyses(analyses));
}

// ---------------------------------------------------------------------------
// VotingPolicy

TEST(VotingPolicyEvaluate, MatchesFusedIntrusionOverEveryCombination) {
  // Exhaustive 3-channel sweep: every alarm/health combination must fuse
  // exactly as the historical fused_intrusion() vote, with offline
  // channels excluded and equal weights over the online ones.
  const ChannelHealth kStates[] = {ChannelHealth::kHealthy,
                                   ChannelHealth::kDegraded,
                                   ChannelHealth::kOffline};
  for (FusionRule rule :
       {FusionRule::kAny, FusionRule::kMajority, FusionRule::kAll}) {
    const VotingPolicy policy(rule);
    for (int mask = 0; mask < 8; ++mask) {
      for (int h0 = 0; h0 < 3; ++h0) {
        for (int h1 = 0; h1 < 3; ++h1) {
          for (int h2 = 0; h2 < 3; ++h2) {
            const int hs[] = {h0, h1, h2};
            std::vector<ChannelScore> channels;
            std::size_t online = 0, alarming = 0;
            for (int k = 0; k < 3; ++k) {
              ChannelScore c;
              c.name = std::string(1, static_cast<char>('A' + k));
              c.alarm = (mask >> k) & 1;
              c.score = c.alarm ? 2.0 : 0.5;
              c.first_alarm_window = c.alarm ? 10 + k : -1;
              c.health = kStates[hs[k]];
              if (c.health != ChannelHealth::kOffline) {
                ++online;
                if (c.alarm) ++alarming;
              }
              channels.push_back(std::move(c));
            }
            const FusedVerdict v = policy.evaluate(channels);
            EXPECT_EQ(v.intrusion, fused_intrusion(rule, alarming, online));
            EXPECT_EQ(v.alarming_channels, alarming);
            EXPECT_EQ(v.online_channels, online);
            const double expect_score =
                online > 0 ? static_cast<double>(alarming) /
                                 static_cast<double>(online)
                           : 0.0;
            EXPECT_EQ(v.score, expect_score);
            for (const ChannelContribution& c : v.channels) {
              EXPECT_EQ(c.weight, c.health == ChannelHealth::kOffline
                                      ? 0.0
                                      : 1.0 / static_cast<double>(online));
            }
          }
        }
      }
    }
  }
}

TEST(VotingPolicyEvaluate, FirstAlarmWindowIsEarliestAlarmingOnline) {
  const VotingPolicy policy(FusionRule::kAny);
  std::vector<ChannelScore> channels(3);
  channels[0] = {"A", 2.0, true, 40, ChannelHealth::kHealthy};
  channels[1] = {"B", 3.0, true, 7, ChannelHealth::kOffline};  // excluded
  channels[2] = {"C", 2.5, true, 21, ChannelHealth::kDegraded};
  const FusedVerdict v = policy.evaluate(channels);
  EXPECT_TRUE(v.intrusion);
  EXPECT_EQ(v.first_alarm_window, 21);
}

// ---------------------------------------------------------------------------
// WeightedPolicy

TEST(WeightedPolicyFit, LearnsNormalizedReliabilityWeights) {
  WeightedPolicy policy;
  EXPECT_FALSE(policy.trained());
  const std::vector<std::string> names = {"steady", "noisy"};
  // "steady" sits low and tight on benign runs; "noisy" rides high with a
  // wide spread — reliability weighting must prefer "steady".
  const std::vector<std::vector<double>> runs = {
      {0.10, 0.85}, {0.12, 0.30}, {0.11, 0.90}, {0.09, 0.45}, {0.10, 0.70}};
  policy.fit(names, runs);
  ASSERT_TRUE(policy.trained());
  ASSERT_EQ(policy.weights().size(), 2u);
  EXPECT_EQ(policy.weights()[0].first, "steady");
  EXPECT_EQ(policy.weights()[1].first, "noisy");
  EXPECT_NEAR(policy.weights()[0].second + policy.weights()[1].second, 1.0,
              1e-12);
  EXPECT_GT(policy.weights()[0].second, policy.weights()[1].second);
}

TEST(WeightedPolicyFit, CorrelationShrinksRedundantChannels) {
  // Three channels with identical benign mean/spread; A and B co-move
  // perfectly, C is independent — the shrinkage must leave C with more
  // weight than either redundant twin.
  const std::vector<std::string> names = {"A", "B", "C"};
  const std::vector<std::vector<double>> runs = {{0.1, 0.1, 0.3},
                                                 {0.3, 0.3, 0.1},
                                                 {0.2, 0.2, 0.2},
                                                 {0.3, 0.3, 0.2},
                                                 {0.1, 0.1, 0.2}};
  WeightedPolicy policy;
  policy.fit(names, runs);
  const auto& w = policy.weights();
  EXPECT_NEAR(w[0].second, w[1].second, 1e-12);  // symmetric twins
  EXPECT_GT(w[2].second, w[0].second);
}

TEST(WeightedPolicyFit, ValidatesItsCalibrationMatrix) {
  WeightedPolicy policy;
  const std::vector<std::string> names = {"A", "B"};
  EXPECT_THROW(policy.fit({}, {{0.1}, {0.2}}), std::invalid_argument);
  // A spread needs two points.
  EXPECT_THROW(policy.fit(names, {{0.1, 0.2}}), std::invalid_argument);
  // Ragged rows: one score column per channel.
  EXPECT_THROW(policy.fit(names, {{0.1, 0.2}, {0.1}}), std::invalid_argument);
  EXPECT_FALSE(policy.trained());
}

TEST(WeightedPolicyConfigValidation, RejectsOutOfRangeKnobs) {
  WeightedPolicyConfig bad;
  bad.threshold = 0.0;
  EXPECT_THROW(WeightedPolicy{bad}, std::invalid_argument);
  bad = {};
  bad.degraded_weight = 1.5;
  EXPECT_THROW(WeightedPolicy{bad}, std::invalid_argument);
  bad = {};
  bad.score_cap = 0.5;
  EXPECT_THROW(WeightedPolicy{bad}, std::invalid_argument);
  bad = {};
  bad.spread_floor = 0.0;
  EXPECT_THROW(WeightedPolicy{bad}, std::invalid_argument);
  // The restore constructor re-checks both config and weights.
  EXPECT_THROW(WeightedPolicy(WeightedPolicyConfig{}, {{"A", -0.25}}),
               std::invalid_argument);
  const WeightedPolicy restored(WeightedPolicyConfig{}, {{"A", 0.7},
                                                         {"B", 0.3}});
  EXPECT_TRUE(restored.trained());
  ASSERT_EQ(restored.weights().size(), 2u);
  EXPECT_EQ(restored.weights()[0].second, 0.7);
}

TEST(WeightedPolicyEvaluate, BenignScoresStayBelowTheDefaultThreshold) {
  // With no alarming channel the soft vote has zero vote mass and the
  // margin term is bounded by gain/cap (benign scores cannot exceed 1),
  // so the default threshold cannot be crossed without real alarm mass.
  const WeightedPolicy policy;  // untrained -> uniform weights
  std::vector<ChannelScore> channels(3);
  channels[0] = {"A", 0.99, false, -1, ChannelHealth::kHealthy};
  channels[1] = {"B", 0.80, false, -1, ChannelHealth::kHealthy};
  channels[2] = {"C", 1.00, false, -1, ChannelHealth::kDegraded};
  const FusedVerdict v = policy.evaluate(channels);
  EXPECT_FALSE(v.intrusion);
  EXPECT_LE(v.score,
            kWeightedRefineGain / policy.config().score_cap + 1e-12);
  double weight_total = 0.0;
  for (const ChannelContribution& c : v.channels) weight_total += c.weight;
  EXPECT_NEAR(weight_total, 1.0, 1e-12);
}

TEST(WeightedPolicyEvaluate, UnanimousAlarmsCrossTheThreshold) {
  const WeightedPolicy policy;
  std::vector<ChannelScore> channels(2);
  channels[0] = {"A", 2.0, true, 64, ChannelHealth::kHealthy};
  channels[1] = {"B", 3.0, true, 32, ChannelHealth::kHealthy};
  const FusedVerdict v = policy.evaluate(channels);
  EXPECT_TRUE(v.intrusion);
  EXPECT_GT(v.score, 1.0);  // full vote mass alone exceeds the threshold
  EXPECT_EQ(v.first_alarm_window, 32);
  EXPECT_EQ(v.alarming_channels, 2u);
}

TEST(WeightedPolicyEvaluate, OfflineChannelsAreExcludedEntirely) {
  // A dead sensor reporting a saturated score must not contribute: with
  // the only alarming channel offline, the fusion stays benign.
  const WeightedPolicy policy;
  std::vector<ChannelScore> channels(3);
  channels[0] = {"A", 0.2, false, -1, ChannelHealth::kHealthy};
  channels[1] = {"B", 0.3, false, -1, ChannelHealth::kHealthy};
  channels[2] = {"C", 1e9, true, 5, ChannelHealth::kOffline};
  const FusedVerdict v = policy.evaluate(channels);
  EXPECT_FALSE(v.intrusion);
  EXPECT_EQ(v.online_channels, 2u);
  EXPECT_EQ(v.alarming_channels, 0u);
  EXPECT_EQ(v.channels[2].weight, 0.0);
}

TEST(WeightedPolicyEvaluate, DegradedChannelsCarryLessOfTheVote) {
  WeightedPolicy policy;
  policy.fit(std::vector<std::string>{"A", "B"},
             {{0.1, 0.1}, {0.3, 0.3}, {0.2, 0.2}});
  // Equal learned weights; degrade B and its renormalized share drops.
  std::vector<ChannelScore> channels(2);
  channels[0] = {"A", 0.5, false, -1, ChannelHealth::kHealthy};
  channels[1] = {"B", 0.5, false, -1, ChannelHealth::kDegraded};
  const FusedVerdict v = policy.evaluate(channels);
  EXPECT_GT(v.channels[0].weight, v.channels[1].weight);
  EXPECT_NEAR(v.channels[0].weight + v.channels[1].weight, 1.0, 1e-12);
  EXPECT_NEAR(v.channels[1].weight / v.channels[0].weight,
              policy.config().degraded_weight, 1e-12);
}

TEST(WeightedPolicyEvaluate, ScoreCapBoundsASaturatedChannel) {
  // One saturated benign-side channel (sensor fault) must not drag the
  // fused score past the threshold on its own: the margin term clamps
  // per-channel scores at score_cap and the vote mass stays zero.
  const WeightedPolicy policy;
  std::vector<ChannelScore> channels(2);
  channels[0] = {"A", kMaxChannelScore, false, -1, ChannelHealth::kHealthy};
  channels[1] = {"B", 0.1, false, -1, ChannelHealth::kHealthy};
  const FusedVerdict v = policy.evaluate(channels);
  EXPECT_LE(v.score, kWeightedRefineGain + 1e-12);
  const double margin_mean =
      0.5 * (policy.config().score_cap + 0.1) / policy.config().score_cap;
  EXPECT_NEAR(v.score, kWeightedRefineGain * margin_mean, 1e-12);
}

TEST_F(FusionFixture, WeightedFusionEndToEnd) {
  EXPECT_THROW(FusionIds(std::shared_ptr<FusionPolicy>{}),
               std::invalid_argument);
  auto policy = std::make_shared<WeightedPolicy>();
  FusionIds ids{std::shared_ptr<FusionPolicy>(policy)};
  ids.add_channel("A", ref_a_, small_config());
  ids.add_channel("B", ref_b_, small_config());
  ids.fit(train_);
  EXPECT_TRUE(policy->trained());  // fit() trains the policy in place
  ASSERT_EQ(policy->weights().size(), 2u);
  EXPECT_EQ(ids.policy().name(), "weighted");

  FusionIds::SignalMap benign;
  benign["A"] = observe(ref_a_, 920, false);
  benign["B"] = observe(ref_b_, 921, false);
  const FusionDetection clean = ids.detect(benign);
  EXPECT_FALSE(clean.intrusion);
  EXPECT_EQ(clean.contributions.size(), 2u);

  FusionIds::SignalMap tampered;
  tampered["A"] = observe(ref_a_, 922, true);
  tampered["B"] = observe(ref_b_, 923, true);
  const FusionDetection hit = ids.detect(tampered);
  EXPECT_TRUE(hit.intrusion);
  EXPECT_GT(hit.fused_score, clean.fused_score);
}

}  // namespace
}  // namespace nsync::core
