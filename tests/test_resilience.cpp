// Fleet-service resilience: deadline I/O (idle reap, write deadline,
// admission cap), PING/PONG keepalive, idempotent re-attach, session
// lifecycle edges over the socket, deterministic reconnect backoff,
// shard-worker supervision (isolation, typed errors, restart from
// checkpoint), and a multi-client chaos soak asserting bitwise verdict
// parity through a fault-injecting proxy.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/fusion.hpp"
#include "core/nsync.hpp"
#include "engine/chaos_proxy.hpp"
#include "engine/fleet_server.hpp"
#include "engine/frame_queue.hpp"
#include "engine/monitor_engine.hpp"
#include "engine/resilient_client.hpp"
#include "engine/sharded_fleet.hpp"
#include "engine/wire_client.hpp"
#include "engine/wire_protocol.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using namespace nsync::engine;
using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

namespace {

constexpr std::size_t kFrames = 2048;
constexpr std::size_t kChunk = 160;

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
  }
  return a;
}

/// Same fixture shape as test_sharded_fleet: calibrated two-channel specs
/// plus deterministic streams, session `attack_session` tampered.
struct Fixture {
  std::vector<std::string> channels = {"ACC", "AUD"};
  std::vector<Signal> references;
  std::vector<core::Thresholds> thresholds;
  core::NsyncConfig cfg;
  std::vector<std::vector<Signal>> streams;  // [session][channel]

  explicit Fixture(std::size_t n_sessions, std::size_t attack_session = 1) {
    cfg.sync = core::SyncMethod::kDwm;
    cfg.dwm.n_win = 64;
    cfg.dwm.n_hop = 32;
    cfg.dwm.n_ext = 24;
    cfg.dwm.n_sigma = 12.0;
    cfg.dwm.eta = 0.2;
    for (std::size_t c = 0; c < channels.size(); ++c) {
      Signal ref = make_reference(kFrames, 7 + c);
      core::NsyncIds ids(ref, cfg);
      std::vector<Signal> train;
      for (std::uint64_t s = 0; s < 3; ++s) {
        train.push_back(benign_observation(ref, 20 * (s + 1) + c));
      }
      ids.fit(train);
      core::Thresholds th = ids.thresholds();
      th.c_c = std::max(3.0 * th.c_c, 64.0);
      th.h_c = std::max(3.0 * th.h_c, 8.0);
      th.v_c *= 3.0;
      thresholds.push_back(th);
      references.push_back(std::move(ref));
    }
    streams.resize(n_sessions);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < channels.size(); ++c) {
        streams[s].push_back(
            s == attack_session
                ? malicious_observation(references[c], 900 + 3 * s + c)
                : benign_observation(references[c], 900 + 3 * s + c));
      }
    }
  }

  [[nodiscard]] engine::SessionSpec spec(std::size_t s) const {
    engine::SessionSpec sp;
    sp.name = "printer-" + std::to_string(s);
    sp.rule = core::FusionRule::kAny;
    for (std::size_t c = 0; c < channels.size(); ++c) {
      engine::ChannelSpec ch;
      ch.name = channels[c];
      ch.reference = references[c];
      ch.config = cfg;
      ch.thresholds = thresholds[c];
      sp.channels.push_back(std::move(ch));
    }
    return sp;
  }

  [[nodiscard]] std::size_t sessions() const { return streams.size(); }
};

struct Verdict {
  std::string name;
  bool evicted = false;
  bool intrusion = false;
  std::ptrdiff_t first_alarm_window = -1;
  std::size_t windows = 0;
  std::size_t frames_fed = 0;
  std::vector<std::string> channel_state;

  bool operator==(const Verdict&) const = default;
};

Verdict to_verdict(const engine::SessionSnapshot& s) {
  Verdict v;
  v.name = s.name;
  v.evicted = s.evicted;
  v.intrusion = s.intrusion;
  v.first_alarm_window = s.first_alarm_window;
  v.windows = s.windows;
  v.frames_fed = s.frames_fed;
  for (const auto& c : s.channels) {
    v.channel_state.push_back(
        c.name + ":" + (c.detection.intrusion ? "1" : "0") +
        std::to_string(static_cast<int>(c.detection.by_c_disp)) +
        std::to_string(static_cast<int>(c.detection.by_h_dist)) +
        std::to_string(static_cast<int>(c.detection.by_v_dist)) + ":faw=" +
        std::to_string(c.detection.first_alarm_window) + ":health=" +
        std::to_string(static_cast<int>(c.health)) + ":w=" +
        std::to_string(c.windows) + ":f=" + std::to_string(c.frames_fed));
  }
  return v;
}

/// Clean-run ground truth: the same streams through one MonitorEngine.
std::vector<Verdict> run_monitor_engine(const Fixture& fx) {
  MonitorEngine eng;
  for (std::size_t s = 0; s < fx.sessions(); ++s) eng.add_session(fx.spec(s));
  std::vector<std::vector<std::size_t>> offsets(
      fx.sessions(), std::vector<std::size_t>(fx.channels.size(), 0));
  bool more = true;
  while (more) {
    more = false;
    for (std::size_t s = 0; s < fx.sessions(); ++s) {
      for (std::size_t c = 0; c < fx.channels.size(); ++c) {
        const Signal& sig = fx.streams[s][c];
        const std::size_t off = offsets[s][c];
        if (off >= sig.frames()) continue;
        const std::size_t hi = std::min(off + kChunk, sig.frames());
        eng.feed(s, fx.channels[c], SignalView(sig).slice(off, hi));
        offsets[s][c] = hi;
        if (hi < sig.frames()) more = true;
      }
    }
    eng.poll();
  }
  std::vector<Verdict> out;
  for (const auto& snap : eng.snapshots()) out.push_back(to_verdict(snap));
  return out;
}

std::string unique_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("nsync_resil_" + tag + "_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1))))
      .string();
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) : path_(unique_path(tag)) {
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// Spin-waits for `pred` to turn true; false on timeout.
template <typename Pred>
bool wait_for(Pred&& pred, std::chrono::milliseconds budget =
                               std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

}  // namespace

// --- Deterministic backoff --------------------------------------------------

TEST(Backoff, JitterScheduleIsSeededDeterministicAndBounded) {
  ResilientClientOptions opts;
  opts.backoff_base_ms = 10;
  opts.backoff_cap_ms = 400;
  opts.jitter_seed = 42;
  ResilientWireClient a(WireEndpoint{"/nonexistent", 0}, opts);
  ResilientWireClient b(WireEndpoint{"/nonexistent", 0}, opts);
  std::vector<std::uint32_t> sa, sb;
  for (std::size_t k = 0; k < 10; ++k) {
    sa.push_back(a.backoff_delay_ms(k));
    sb.push_back(b.backoff_delay_ms(k));
  }
  EXPECT_EQ(sa, sb) << "equal seeds must reproduce equal schedules";
  for (std::size_t k = 0; k < sa.size(); ++k) {
    const std::uint64_t d =
        std::min<std::uint64_t>(400, std::uint64_t{10} << std::min<std::size_t>(k, 20));
    EXPECT_GE(sa[k], d / 2) << "attempt " << k;
    EXPECT_LE(sa[k], d) << "attempt " << k;
  }
  // The exponential ramp saturates at the cap.
  EXPECT_LE(sa[9], 400u);

  opts.jitter_seed = 43;
  ResilientWireClient c(WireEndpoint{"/nonexistent", 0}, opts);
  std::vector<std::uint32_t> sc;
  for (std::size_t k = 0; k < 10; ++k) sc.push_back(c.backoff_delay_ms(k));
  EXPECT_NE(sa, sc) << "different seeds must decorrelate";
}

// --- Keepalive and admission ------------------------------------------------

TEST(Resilience, PingPongRoundTripsNonce) {
  const std::string sock = unique_path("ping") + ".sock";
  ShardedFleet fleet;
  FleetServerOptions sopts;
  sopts.uds_path = sock;
  FleetServer server(fleet, sopts);
  server.start();

  WireClient client = WireClient::connect_uds(sock);
  const wire::Pong pong = client.ping(0xFEEDFACECAFEBEEFull);
  EXPECT_EQ(pong.nonce, 0xFEEDFACECAFEBEEFull);
  // Frame-local: the stream stays usable afterwards.
  EXPECT_EQ(client.hello("after-ping").sessions, 0u);

  // PONG sent as a request is misuse, also frame-local.
  const wire::Message reply = client.request(wire::Pong{1});
  ASSERT_TRUE(std::holds_alternative<wire::Error>(reply));
  EXPECT_EQ(std::get<wire::Error>(reply).code, wire::ErrorCode::kBadType);
  EXPECT_EQ(client.ping(7).nonce, 7u);
  server.stop();
}

TEST(Resilience, IdleDeadlineReapsHalfOpenByteAtATimeClient) {
  const std::string sock = unique_path("idle") + ".sock";
  ShardedFleet fleet;
  FleetServerOptions sopts;
  sopts.uds_path = sock;
  sopts.idle_timeout_ms = 150;
  FleetServer server(fleet, sopts);
  server.start();

  // A half-open client: dribbles a few header bytes of a valid frame,
  // then goes silent forever.  Without the idle deadline this connection
  // would pin a server thread indefinitely.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, sock.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::vector<std::uint8_t> frame = wire::encode(wire::PollStats{});
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(::write(fd, frame.data() + i, 1), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // The server must reap us: read() sees EOF once the connection closes.
  std::uint8_t byte = 0;
  ssize_t n = -1;
  ASSERT_TRUE(wait_for([&] {
    n = ::recv(fd, &byte, 1, MSG_DONTWAIT);
    return n == 0;
  })) << "half-open client was not reaped by the idle deadline";
  ::close(fd);
  EXPECT_TRUE(wait_for([&] { return server.stats().idle_reaped >= 1; }));

  // A live client is unaffected as long as it keeps talking.
  WireClient client = WireClient::connect_uds(sock);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(client.ping(static_cast<std::uint64_t>(i)).nonce,
              static_cast<std::uint64_t>(i));
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  server.stop();
}

TEST(Resilience, AdmissionCapRejectsWithTypedBusyAndRetryAfter) {
  const std::string sock = unique_path("busy") + ".sock";
  ShardedFleet fleet;
  FleetServerOptions sopts;
  sopts.uds_path = sock;
  sopts.max_connections = 1;
  sopts.busy_retry_after_ms = 123;
  FleetServer server(fleet, sopts);
  server.start();

  auto first = std::make_unique<WireClient>(WireClient::connect_uds(sock));
  EXPECT_EQ(first->hello("holder").sessions, 0u);

  // Second connect is admitted at the socket level but answered with a
  // typed kBusy error carrying the retry-after hint, then closed.
  bool saw_busy = false;
  try {
    WireClient second = WireClient::connect_uds(sock);
    (void)second.hello("excess");
  } catch (const WireError& e) {
    saw_busy = true;
    EXPECT_EQ(e.code(), wire::ErrorCode::kBusy);
    EXPECT_EQ(e.retry_after_ms(), 123u);
  }
  ASSERT_TRUE(saw_busy);
  EXPECT_TRUE(
      wait_for([&] { return server.stats().connections_busy_rejected >= 1; }));

  // Once the holder leaves, the next connect is admitted (the resilient
  // client does exactly this dance automatically).
  first.reset();
  ResilientClientOptions copts;
  copts.backoff_base_ms = 20;
  copts.backoff_cap_ms = 100;
  copts.max_attempts = 20;
  ResilientWireClient retry(WireEndpoint{sock, 0}, copts);
  EXPECT_EQ(retry.connect_now().sessions, 0u);
  server.stop();
}

TEST(Resilience, WriteDeadlineClosesSlowConsumer) {
  ShardedFleet fleet;
  FleetServerOptions sopts;
  sopts.tcp_port = 0;  // kernel-assigned loopback port
  sopts.uds_path.clear();
  sopts.write_timeout_ms = 200;
  FleetServer server(fleet, sopts);
  server.start();

  // A slow consumer: tiny receive buffer, fires requests and never reads
  // a single reply.  Replies back up until the server's write cannot
  // complete within the deadline; the server must close us rather than
  // wedge the connection thread.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcv = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv, sizeof(rcv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.bound_tcp_port());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::vector<std::uint8_t> ping = wire::encode(wire::Ping{99});
  for (int i = 0; i < 200000; ++i) {
    const ssize_t w = ::send(fd, ping.data(), ping.size(), MSG_DONTWAIT);
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0) break;
  }
  EXPECT_TRUE(wait_for([&] { return server.stats().write_timeouts >= 1; },
                       std::chrono::milliseconds(10000)))
      << "server never timed out the slow consumer's reply write";
  ::close(fd);
  server.stop();
}

// --- Session lifecycle over the wire ----------------------------------------

TEST(Resilience, AddSessionReattachesByNameInsteadOfDuplicating) {
  const std::string sock = unique_path("reattach") + ".sock";
  Fixture fx(1, /*attack_session=*/99);
  ShardedFleetOptions fopts;
  fopts.shards = 2;
  ShardedFleet fleet(fopts);
  FleetServerOptions sopts;
  sopts.uds_path = sock;
  FleetServer server(fleet, sopts);
  server.start();

  WireClient c1 = WireClient::connect_uds(sock);
  const wire::AddSessionOk first = c1.add_session(fx.spec(0));

  // A reconnecting feeder re-issues the same registration: the server
  // re-attaches to the live session instead of creating a twin.
  WireClient c2 = WireClient::connect_uds(sock);
  const wire::AddSessionOk again = c2.add_session(fx.spec(0));
  EXPECT_EQ(again.session, first.session);
  EXPECT_EQ(again.shard, first.shard);
  EXPECT_EQ(c2.hello("count").sessions, 1u);

  // Eviction ends the name's liveness: the next registration is a fresh
  // session, not a resurrection.
  c2.evict(first.session);
  const wire::AddSessionOk fresh = c2.add_session(fx.spec(0));
  EXPECT_NE(fresh.session, first.session);
  server.stop();
}

TEST(Resilience, EvictThenFeedAndDoubleEvictAreFrameLocalTypedErrors) {
  const std::string sock = unique_path("lifecycle") + ".sock";
  Fixture fx(1, /*attack_session=*/99);
  ShardedFleet fleet;
  FleetServerOptions sopts;
  sopts.uds_path = sock;
  FleetServer server(fleet, sopts);
  server.start();

  WireClient client = WireClient::connect_uds(sock);
  const wire::AddSessionOk ok = client.add_session(fx.spec(0));
  client.evict(ok.session);

  // Double EVICT: typed kEvicted, not a poisoned stream.
  try {
    client.evict(ok.session);
    FAIL() << "double evict must be a typed error";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), wire::ErrorCode::kEvicted);
  }
  // EVICT-then-FEED: same discipline.
  Signal frames(64, 2, 100.0);
  try {
    (void)client.feed(ok.session, "ACC", frames);
    FAIL() << "feeding an evicted session must be a typed error";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), wire::ErrorCode::kEvicted);
  }
  // The connection survived all of it.
  EXPECT_EQ(client.ping(3).nonce, 3u);
  EXPECT_EQ(client.hello("still-alive").sessions, 1u);
  server.stop();
}

// --- Reconnect with idempotent resync ---------------------------------------

TEST(Resilience, ReconnectResyncKeepsVerdictsBitwiseIdentical) {
  const std::string backend = unique_path("resync_backend") + ".sock";
  const std::string front = unique_path("resync_front") + ".sock";
  Fixture fx(2, /*attack_session=*/1);
  const std::vector<Verdict> expected = run_monitor_engine(fx);

  ShardedFleetOptions fopts;
  fopts.shards = 2;
  ShardedFleet fleet(fopts);
  FleetServerOptions sopts;
  sopts.uds_path = backend;
  FleetServer server(fleet, sopts);
  server.start();

  // Clean relay (no random faults) — we cut it by hand mid-stream.
  ChaosProxyOptions popts;
  popts.listen_uds = front;
  popts.backend_uds = backend;
  popts.max_chunk = 512;
  ChaosProxy proxy(popts);
  proxy.start();

  ResilientClientOptions copts;
  copts.client_name = "resync-test";
  copts.max_attempts = 20;
  copts.backoff_base_ms = 1;
  copts.backoff_cap_ms = 20;
  ResilientWireClient client(WireEndpoint{front, 0}, copts);
  std::vector<std::uint64_t> handles;
  for (std::size_t s = 0; s < fx.sessions(); ++s) {
    handles.push_back(client.add_session(fx.spec(s)));
  }

  std::vector<std::vector<std::size_t>> offsets(
      fx.sessions(), std::vector<std::size_t>(fx.channels.size(), 0));
  bool more = true;
  std::size_t rounds = 0;
  while (more) {
    more = false;
    // Two hard cuts mid-stream: every in-flight call sees its connection
    // die and must reconnect, re-attach and resync its cursor.
    if (rounds == 3 || rounds == 7) proxy.kill_active();
    ++rounds;
    for (std::size_t s = 0; s < fx.sessions(); ++s) {
      for (std::size_t c = 0; c < fx.channels.size(); ++c) {
        const Signal& sig = fx.streams[s][c];
        const std::size_t off = offsets[s][c];
        if (off >= sig.frames()) continue;
        const std::size_t hi = std::min(off + kChunk, sig.frames());
        const auto out = client.feed(handles[s], fx.channels[c],
                                     SignalView(sig).slice(off, hi), off);
        ASSERT_FALSE(out.rewound) << "server never lost state in this test";
        offsets[s][c] = out.cursor;
        if (out.cursor < sig.frames()) more = true;
      }
    }
  }
  ASSERT_TRUE(wait_for([&] {
    const wire::Stats st = client.poll_stats(false);
    return st.queued_frames == 0 && st.busy == 0;
  }));
  fleet.flush();

  EXPECT_GE(client.telemetry().reconnects, 1u)
      << "the cuts must have forced at least one reconnect";
  std::vector<Verdict> got;
  for (const auto& snap : fleet.snapshots()) got.push_back(to_verdict(snap));
  EXPECT_EQ(got, expected)
      << "reconnect + resync must not double-count or skip frames";
  proxy.stop();
  server.stop();
}

// --- Multi-client chaos soak ------------------------------------------------

TEST(ChaosSoak, MultiClientVerdictParityUnderSeededChaos) {
  const std::string backend = unique_path("chaos_backend") + ".sock";
  const std::string front = unique_path("chaos_front") + ".sock";
  constexpr std::size_t kSessions = 3;
  Fixture fx(kSessions, /*attack_session=*/1);
  const std::vector<Verdict> expected = run_monitor_engine(fx);

  ShardedFleetOptions fopts;
  fopts.shards = 2;
  ShardedFleet fleet(fopts);
  FleetServerOptions sopts;
  sopts.uds_path = backend;
  sopts.idle_timeout_ms = 10000;
  FleetServer server(fleet, sopts);
  server.start();

  ChaosProxyOptions popts;
  popts.listen_uds = front;
  popts.backend_uds = backend;
  popts.seed = 20260809;
  popts.drop_prob = 0.02;   // seeded mid-frame disconnects
  popts.delay_prob = 0.10;  // delayed reads
  popts.max_delay_ms = 2;
  popts.max_chunk = 512;    // partial writes everywhere
  ChaosProxy proxy(popts);
  proxy.start();

  // One independent client (own connection, own backoff stream) per
  // session, all hammering the proxy concurrently.
  std::vector<std::thread> feeders;
  std::vector<std::string> failures(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    feeders.emplace_back([&, s] {
      try {
        ResilientClientOptions copts;
        copts.client_name = "chaos-" + std::to_string(s);
        copts.max_attempts = 100;
        copts.backoff_base_ms = 1;
        copts.backoff_cap_ms = 20;
        copts.jitter_seed = 1000 + s;
        ResilientWireClient client(WireEndpoint{front, 0}, copts);
        const std::uint64_t handle = client.add_session(fx.spec(s));
        std::vector<std::size_t> offsets(fx.channels.size(), 0);
        bool more = true;
        while (more) {
          more = false;
          for (std::size_t c = 0; c < fx.channels.size(); ++c) {
            const Signal& sig = fx.streams[s][c];
            const std::size_t off = offsets[c];
            if (off >= sig.frames()) continue;
            const std::size_t hi = std::min(off + kChunk, sig.frames());
            const auto out = client.feed(handle, fx.channels[c],
                                         SignalView(sig).slice(off, hi), off);
            offsets[c] = out.cursor;
            if (out.cursor < sig.frames()) more = true;
          }
        }
      } catch (const std::exception& e) {
        failures[s] = e.what();
      }
    });
  }
  for (auto& t : feeders) t.join();
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(failures[s], "") << "feeder " << s << " died";
  }
  fleet.flush();

  std::vector<Verdict> got;
  for (const auto& snap : fleet.snapshots()) got.push_back(to_verdict(snap));
  // Concurrent clients race on admission order, so server session ids (and
  // snapshot order) are nondeterministic; per-session verdicts are not.
  const auto by_name = [](const Verdict& a, const Verdict& b) {
    return a.name < b.name;
  };
  std::sort(got.begin(), got.end(), by_name);
  std::vector<Verdict> want = expected;
  std::sort(want.begin(), want.end(), by_name);
  EXPECT_EQ(got, want)
      << "verdicts must be bitwise identical to an uninterrupted run";
  proxy.stop();
  server.stop();
}

// --- Shard-worker supervision -----------------------------------------------

TEST(Supervision, ShardFailureIsIsolatedAndTyped) {
  constexpr std::size_t kSessions = 4;  // ids 0,2 -> shard 0; 1,3 -> shard 1
  Fixture fx(kSessions, /*attack_session=*/1);
  const std::vector<Verdict> expected = run_monitor_engine(fx);

  std::atomic<std::uint64_t> shard0_batches{0};
  ShardedFleetOptions fopts;
  fopts.shards = 2;
  fopts.worker_fault_hook = [&](std::size_t shard, const FrameBatch&) {
    if (shard == 0 && shard0_batches.fetch_add(1) + 1 == 3) {
      throw std::runtime_error("injected shard fault");
    }
  };
  ShardedFleet fleet(fopts);
  std::vector<std::size_t> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    ids.push_back(fleet.add_session(fx.spec(s)));
  }

  // Feed everything; shard 0 dies early, shard 1 must keep serving.  The
  // queues are deep enough that the whole stream may be enqueued before the
  // worker reaches the poisoned batch, so the loop merely *tolerates*
  // kShardFailed; the typed status is asserted directly below once the
  // failure has landed.
  bool saw_shard_failed = false;
  std::vector<std::vector<std::size_t>> offsets(
      kSessions, std::vector<std::size_t>(fx.channels.size(), 0));
  bool more = true;
  while (more) {
    more = false;
    for (std::size_t s = 0; s < kSessions; ++s) {
      for (std::size_t c = 0; c < fx.channels.size(); ++c) {
        const Signal& sig = fx.streams[s][c];
        const std::size_t off = offsets[s][c];
        if (off >= sig.frames()) continue;
        const std::size_t hi = std::min(off + kChunk, sig.frames());
        const engine::FeedResult r =
            fleet.feed(ids[s], fx.channels[c], SignalView(sig).slice(off, hi));
        if (r.status == FeedStatus::kShardFailed) {
          EXPECT_EQ(s % 2, 0u) << "only shard 0 sessions may fail";
          saw_shard_failed = true;
          offsets[s][c] = sig.frames();  // stop feeding the dead shard
          continue;
        }
        ASSERT_EQ(r.status, FeedStatus::kOk);
        offsets[s][c] = hi;
        if (hi < sig.frames()) more = true;
      }
    }
  }
  // The failure is typed end-to-end: engine status and wire error code.
  ASSERT_TRUE(wait_for([&] { return fleet.stats().failed_shards == 1; }));
  {
    wire::Feed f;
    f.session = ids[0];
    f.channel = fx.channels[0];
    f.frames = Signal(8, 2, 100.0);
    const wire::Message reply = FleetServer::handle(fleet, f);
    ASSERT_TRUE(std::holds_alternative<wire::Error>(reply));
    EXPECT_EQ(std::get<wire::Error>(reply).code,
              wire::ErrorCode::kShardFailed);
  }
  {
    const engine::FeedResult late = fleet.feed(
        ids[0], fx.channels[0], SignalView(fx.streams[0][0]).slice(0, 8));
    EXPECT_EQ(late.status, FeedStatus::kShardFailed);
  }
  (void)saw_shard_failed;

  // flush() must not hang on the dead shard's queue.
  fleet.flush();
  const engine::FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.failed_shards, 1u);
  ASSERT_EQ(stats.per_shard.size(), 2u);
  EXPECT_TRUE(stats.per_shard[0].failed);
  EXPECT_EQ(stats.per_shard[0].failure_reason, "injected shard fault");
  EXPECT_FALSE(stats.per_shard[1].failed);

  // Shard 1's sessions are bitwise unaffected by shard 0's death.
  EXPECT_EQ(to_verdict(fleet.snapshot(ids[1])), expected[1]);
  EXPECT_EQ(to_verdict(fleet.snapshot(ids[3])), expected[3]);
}

TEST(Supervision, RestartFromCheckpointRecoversBitwise) {
  constexpr std::size_t kSessions = 4;
  Fixture fx(kSessions, /*attack_session=*/1);
  const std::vector<Verdict> expected = run_monitor_engine(fx);
  TempDir ckpt("supervision_ckpt");

  // The fault is armed by the test at a quiescent point, so exactly one
  // batch is lost to the failure and no stale-offset feed can race the
  // restart (a live feeder handles that case by resyncing, as the
  // ReconnectResync and ChaosSoak tests pin — here we want the restart
  // itself to be deterministic).
  std::atomic<bool> armed{false};
  std::atomic<bool> thrown{false};
  ShardedFleetOptions fopts;
  fopts.shards = 2;
  fopts.checkpoint_dir = ckpt.str();
  fopts.checkpoint_every_polls = 1;
  fopts.supervision.restart_from_checkpoint = true;
  fopts.supervision.max_restarts = 3;
  fopts.worker_fault_hook = [&](std::size_t shard, const FrameBatch&) {
    if (shard == 0 && armed.load() && !thrown.exchange(true)) {
      throw std::runtime_error("injected transient fault");
    }
  };
  ShardedFleet fleet(fopts);
  std::vector<std::size_t> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    ids.push_back(fleet.add_session(fx.spec(s)));
  }

  // Feed the first half of every stream and checkpoint it.
  std::vector<std::vector<std::size_t>> offsets(
      kSessions, std::vector<std::size_t>(fx.channels.size(), 0));
  const auto feed_until = [&](auto&& limit) {
    bool more = true;
    while (more) {
      more = false;
      for (std::size_t s = 0; s < kSessions; ++s) {
        for (std::size_t c = 0; c < fx.channels.size(); ++c) {
          const Signal& sig = fx.streams[s][c];
          const std::size_t off = offsets[s][c];
          const std::size_t cap = limit(sig);
          if (off >= cap) continue;
          const std::size_t hi = std::min(off + kChunk, cap);
          const engine::FeedResult r = fleet.feed(
              ids[s], fx.channels[c], SignalView(sig).slice(off, hi));
          ASSERT_EQ(r.status, FeedStatus::kOk);
          offsets[s][c] = hi;
          if (hi < cap) more = true;
        }
      }
    }
  };
  feed_until([](const Signal& sig) { return sig.frames() / 2; });
  fleet.flush();

  // Arm the fault and sacrifice one batch: the worker throws on it, the
  // shard restores from its checkpoint, and the batch's frames vanish —
  // exactly what a crashed shard does to in-flight data.
  armed.store(true);
  {
    const Signal& sig = fx.streams[0][0];
    const std::size_t off = offsets[0][0];
    const std::size_t hi = std::min(off + kChunk, sig.frames());
    (void)fleet.feed(ids[0], fx.channels[0], SignalView(sig).slice(off, hi));
  }
  ASSERT_TRUE(wait_for([&] { return thrown.load(); }))
      << "the injected fault never fired";
  ASSERT_TRUE(wait_for([&] {
    const engine::FleetStats st = fleet.stats();
    return st.failed_shards == 0 && st.per_shard[0].restarts == 1;
  })) << "the shard was not restarted from its checkpoint";

  // Resync like a daemon-restart feeder: the engine's frames_fed cursors
  // are authoritative (the restored checkpoint may predate the half-way
  // flush), then replay the rest and require clean feeds throughout.
  fleet.flush();
  for (std::size_t s = 0; s < kSessions; ++s) {
    const engine::SessionSnapshot snap = fleet.snapshot(ids[s]);
    for (std::size_t c = 0; c < fx.channels.size(); ++c) {
      for (const auto& ch : snap.channels) {
        if (ch.name == fx.channels[c]) offsets[s][c] = ch.frames_fed;
      }
    }
  }
  feed_until([](const Signal& sig) { return sig.frames(); });
  fleet.flush();

  const engine::FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.failed_shards, 0u);
  ASSERT_EQ(stats.per_shard.size(), 2u);
  EXPECT_FALSE(stats.per_shard[0].failed);
  EXPECT_EQ(stats.per_shard[0].restarts, 1u);
  EXPECT_EQ(stats.per_shard[0].failure_reason, "injected transient fault");
  EXPECT_EQ(stats.per_shard[1].restarts, 0u);

  std::vector<Verdict> got;
  for (const auto& snap : fleet.snapshots()) got.push_back(to_verdict(snap));
  EXPECT_EQ(got, expected)
      << "restart-from-checkpoint must replay to bitwise-identical verdicts";
}
