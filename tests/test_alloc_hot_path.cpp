// Verifies the zero-allocation claim for the streaming DWM hot path: once
// a synchronizer is warmed up (FFT plans built, workspaces at steady-state
// size, results reserved), pushing one hop of frames — which scores one
// full TDEB window — must not touch the heap.
//
// The check replaces the global allocation functions with counting
// versions; counting is enabled only around the measured pushes, so the
// test harness's own allocations don't interfere.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/dwm.hpp"
#include "core/nsync.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace nsync::core {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

Signal smoothed_noise(std::size_t frames, std::size_t channels,
                      std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, channels, 100.0);
  std::vector<double> lp(channels, 0.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      lp[c] += 0.35 * (rng.normal() - lp[c]);
      s(n, c) = lp[c];
    }
  }
  return s;
}

TEST(AllocHotPath, WarmDwmWindowPushIsAllocationFree) {
  DwmParams p;
  p.n_win = 256;
  p.n_hop = 128;
  p.n_ext = 64;
  p.n_sigma = 32.0;
  const Signal reference = smoothed_noise(8000, 2, 1);
  const Signal observed = smoothed_noise(4000, 2, 2);

  DwmSynchronizer sync(reference, p);
  sync.reserve_windows(64);
  // Warm-up: several windows so the first-window edge effects (clamped
  // extended reference, cold FFT plans, workspace growth) are behind us.
  std::size_t pos = 0;
  while (sync.windows() < 4) {
    sync.push(SignalView(observed).slice(pos, pos + p.n_hop));
    pos += p.n_hop;
  }

  // Steady state: each hop-sized push scores exactly one TDEB window and
  // must perform zero heap allocations.
  for (int round = 0; round < 8; ++round) {
    const SignalView chunk = SignalView(observed).slice(pos, pos + p.n_hop);
    pos += p.n_hop;
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    const std::size_t done = sync.push(chunk);
    g_counting.store(false, std::memory_order_relaxed);
    EXPECT_EQ(done, 1u) << "round " << round;
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0u)
        << "round " << round;
  }
}

TEST(AllocHotPath, WarmRealtimeMonitorWindowPushIsAllocationFree) {
  // The full streaming stack — synchronizer + DetectionCore (distance
  // workspace, incremental min filters, feature arrays) — must also be
  // allocation-free per window once warmed and reserved.
  NsyncConfig cfg;
  cfg.sync = SyncMethod::kDwm;
  cfg.dwm.n_win = 256;
  cfg.dwm.n_hop = 128;
  cfg.dwm.n_ext = 64;
  cfg.dwm.n_sigma = 32.0;
  const Signal reference = smoothed_noise(8000, 2, 3);
  const Signal observed = smoothed_noise(4000, 2, 4);

  Thresholds t;
  t.c_c = 1e9;  // keep the latch quiet; latching writes no heap anyway
  t.h_c = 1e9;
  t.v_c = 1e9;
  RealtimeMonitor mon(reference, cfg, t);
  mon.reserve_windows(64);
  std::size_t pos = 0;
  while (mon.windows() < 4) {
    mon.push(SignalView(observed).slice(pos, pos + cfg.dwm.n_hop));
    pos += cfg.dwm.n_hop;
  }

  for (int round = 0; round < 8; ++round) {
    const SignalView chunk =
        SignalView(observed).slice(pos, pos + cfg.dwm.n_hop);
    pos += cfg.dwm.n_hop;
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    const std::size_t done = mon.push(chunk);
    g_counting.store(false, std::memory_order_relaxed);
    EXPECT_EQ(done, 1u) << "round " << round;
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0u)
        << "round " << round;
  }
}

}  // namespace
}  // namespace nsync::core
