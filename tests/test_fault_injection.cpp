// Tests for the sensor-fault injector, the channel-health state machine,
// the validity-mask plumbing through DWM -> comparator -> discriminator ->
// fusion, and regression tests for the degenerate-input bugs the fault
// harness exposed (non-finite windows in the sliding correlation, '+'
// signed G-code values, DAQ trailing-partial-frame drops).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "core/dwm.hpp"
#include "core/fusion.hpp"
#include "core/health.hpp"
#include "core/nsync.hpp"
#include "dsp/xcorr.hpp"
#include "gcode/parser.hpp"
#include "sensors/daq.hpp"
#include "sensors/fault_injector.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"
#include "signal/stats.hpp"

namespace nsync {
namespace {

using nsync::core::ChannelHealth;
using nsync::core::ChannelHealthMonitor;
using nsync::core::HealthPolicy;
using nsync::sensors::FaultConfig;
using nsync::sensors::FaultInjector;
using nsync::sensors::FaultKind;
using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Band-limited random signal (the usual DWM test substrate).
Signal make_reference(std::size_t frames, std::uint64_t seed,
                      std::size_t channels = 1) {
  Rng rng(seed);
  Signal s(frames, channels, 100.0);
  std::vector<double> lp(channels, 0.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      lp[c] += 0.35 * (rng.normal() - lp[c]);
      s(n, c) = lp[c];
    }
  }
  return s;
}

/// Benign observation: reference + rate jitter + measurement noise.
Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

/// Malicious observation: middle third replaced with unrelated content.
Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) {
      a(n, c) = lp;
    }
  }
  return a;
}

core::NsyncConfig dwm_config() {
  core::NsyncConfig cfg;
  cfg.sync = core::SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;
  cfg.r = 0.3;
  return cfg;
}

bool all_finite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

bool features_finite(const core::DetectionFeatures& f) {
  return all_finite(f.c_disp) && all_finite(f.h_dist_f) &&
         all_finite(f.v_dist_f);
}

// ---------------------------------------------------------------------------
// FaultConfig / FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultConfig, DefaultIsPassThrough) {
  const Signal in = make_reference(500, 1, 2);
  FaultInjector inj(FaultConfig{}, 42);
  const Signal out = inj.apply(in);
  ASSERT_EQ(out.frames(), in.frames());
  ASSERT_EQ(out.channels(), in.channels());
  for (std::size_t n = 0; n < in.frames(); ++n) {
    for (std::size_t c = 0; c < in.channels(); ++c) {
      EXPECT_EQ(out(n, c), in(n, c));
    }
  }
  EXPECT_TRUE(inj.events().empty());
  EXPECT_EQ(inj.frames_in(), in.frames());
  EXPECT_EQ(inj.frames_out(), in.frames());
}

TEST(FaultConfig, ValidateRejectsOutOfRangeValues) {
  FaultConfig bad;
  bad.dropout_rate = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = FaultConfig{};
  bad.stuck_frames_mean = 0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = FaultConfig{};
  bad.clock_skew = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = FaultConfig{};
  bad.nan_burst_rate = kNan;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(FaultInjector, SeededDeterminism) {
  FaultConfig cfg;
  cfg.dropout_rate = 0.01;
  cfg.stuck_rate = 0.01;
  cfg.nan_burst_rate = 0.005;
  cfg.gain_step_rate = 0.002;
  const Signal in = make_reference(1200, 7, 2);

  auto run = [&](std::uint64_t seed) {
    FaultInjector inj(cfg, seed);
    Signal out = Signal::empty(in.channels(), in.sample_rate());
    for (std::size_t pos = 0; pos < in.frames(); pos += 300) {
      const std::size_t end = std::min(pos + 300, in.frames());
      const Signal chunk = inj.apply(SignalView(in).slice(pos, end));
      out.append(chunk);
    }
    return std::make_pair(std::move(out), inj.events());
  };

  const auto [out_a, ev_a] = run(99);
  const auto [out_b, ev_b] = run(99);
  ASSERT_EQ(out_a.frames(), out_b.frames());
  for (std::size_t n = 0; n < out_a.frames(); ++n) {
    for (std::size_t c = 0; c < out_a.channels(); ++c) {
      const double a = out_a(n, c), b = out_b(n, c);
      EXPECT_TRUE(a == b || (std::isnan(a) && std::isnan(b)));
    }
  }
  ASSERT_EQ(ev_a.size(), ev_b.size());
  for (std::size_t i = 0; i < ev_a.size(); ++i) {
    EXPECT_EQ(ev_a[i].kind, ev_b[i].kind);
    EXPECT_EQ(ev_a[i].start, ev_b[i].start);
    EXPECT_EQ(ev_a[i].frames, ev_b[i].frames);
  }

  const auto [out_c, ev_c] = run(100);
  EXPECT_TRUE(out_c.frames() != out_a.frames() || ev_c.size() != ev_a.size() ||
              !ev_a.empty());
}

TEST(FaultInjector, DropoutShortensStream) {
  FaultConfig cfg;
  cfg.dropout_rate = 0.02;
  cfg.dropout_frames_mean = 6.0;
  const Signal in = make_reference(3000, 11);
  FaultInjector inj(cfg, 5);
  const Signal out = inj.apply(in);
  EXPECT_LT(out.frames(), in.frames());
  ASSERT_FALSE(inj.events().empty());
  for (const auto& e : inj.events()) {
    EXPECT_EQ(e.kind, FaultKind::kDropout);
    EXPECT_LT(e.start, in.frames());
    EXPECT_GE(e.frames, 1u);
  }
  EXPECT_EQ(inj.frames_in(), in.frames());
  EXPECT_EQ(inj.frames_out(), out.frames());
}

TEST(FaultInjector, StuckAtRepeatsThePreviousFrame) {
  FaultConfig cfg;
  cfg.stuck_rate = 0.01;
  cfg.stuck_frames_mean = 8.0;
  const Signal in = make_reference(3000, 13, 2);
  FaultInjector inj(cfg, 21);
  const Signal out = inj.apply(in);
  ASSERT_EQ(out.frames(), in.frames());  // stuck-at preserves the timeline
  bool checked = false;
  for (const auto& e : inj.events()) {
    ASSERT_EQ(e.kind, FaultKind::kStuckAt);
    if (e.start == 0 || e.start + e.frames > out.frames()) continue;
    for (std::size_t k = 0; k < e.frames; ++k) {
      for (std::size_t c = 0; c < out.channels(); ++c) {
        EXPECT_EQ(out(e.start + k, c), out(e.start - 1, c));
      }
    }
    checked = true;
  }
  EXPECT_TRUE(checked);
}

TEST(FaultInjector, NanBurstMarksExactlyTheLoggedFrames) {
  FaultConfig cfg;
  cfg.nan_burst_rate = 0.005;
  cfg.nan_burst_frames_mean = 4.0;
  cfg.inf_fraction = 0.0;
  const Signal in = make_reference(3000, 17);
  FaultInjector inj(cfg, 3);
  const Signal out = inj.apply(in);
  ASSERT_EQ(out.frames(), in.frames());
  ASSERT_FALSE(inj.events().empty());
  std::vector<bool> in_burst(out.frames(), false);
  for (const auto& e : inj.events()) {
    ASSERT_EQ(e.kind, FaultKind::kNanBurst);
    for (std::size_t k = 0; k < e.frames && e.start + k < out.frames(); ++k) {
      in_burst[e.start + k] = true;
    }
  }
  for (std::size_t n = 0; n < out.frames(); ++n) {
    EXPECT_EQ(std::isnan(out(n, 0)), in_burst[n]) << "frame " << n;
  }
}

TEST(FaultInjector, GainStepScalesPersistently) {
  FaultConfig cfg;
  cfg.gain_step_rate = 0.003;
  cfg.gain_step_std = 0.3;
  const Signal in = make_reference(4000, 29);
  FaultInjector inj(cfg, 8);
  const Signal out = inj.apply(in);
  ASSERT_EQ(out.frames(), in.frames());
  ASSERT_FALSE(inj.events().empty());
  double gain = 1.0;
  std::size_t next_event = 0;
  const auto& events = inj.events();
  for (std::size_t n = 0; n < out.frames(); ++n) {
    while (next_event < events.size() && events[next_event].start <= n) {
      gain = events[next_event].value;  // cumulative gain after the step
      ++next_event;
    }
    EXPECT_NEAR(out(n, 0), in(n, 0) * gain,
                1e-12 * std::max(1.0, std::abs(in(n, 0) * gain)));
  }
  EXPECT_NEAR(inj.gain(), gain, 1e-15);
}

TEST(FaultInjector, SaturationClampsAmplitude) {
  FaultConfig cfg;
  cfg.saturation_level = 0.25;
  const Signal in = make_reference(1000, 31);
  FaultInjector inj(cfg, 1);
  const Signal out = inj.apply(in);
  ASSERT_EQ(out.frames(), in.frames());
  for (std::size_t n = 0; n < out.frames(); ++n) {
    EXPECT_LE(std::abs(out(n, 0)), 0.25 + 1e-15);
    EXPECT_EQ(out(n, 0), std::clamp(in(n, 0), -0.25, 0.25));
  }
}

TEST(FaultInjector, DuplicationLengthensStream) {
  FaultConfig cfg;
  cfg.duplication_rate = 0.02;
  const Signal in = make_reference(2000, 37);
  FaultInjector inj(cfg, 2);
  const Signal out = inj.apply(in);
  std::size_t dups = 0;
  for (const auto& e : inj.events()) {
    ASSERT_EQ(e.kind, FaultKind::kFrameDuplication);
    ++dups;
  }
  EXPECT_GT(dups, 0u);
  EXPECT_EQ(out.frames(), in.frames() + dups);
}

TEST(FaultInjector, ClockSkewResamplesTheTimeline) {
  FaultConfig cfg;
  cfg.clock_skew = 0.01;  // DAQ clock 1 % fast
  const double fs = 1000.0;
  const std::size_t n_in = 2000;
  Signal in(n_in, 1, fs);
  for (std::size_t n = 0; n < n_in; ++n) {
    in(n, 0) = std::sin(2.0 * 3.14159265358979 * 5.0 *
                        static_cast<double>(n) / fs);
  }
  FaultInjector inj(cfg, 4);
  const Signal out = inj.apply(in);
  EXPECT_NEAR(static_cast<double>(out.frames()),
              static_cast<double>(n_in) / 1.01, 2.0);
  for (std::size_t k = 0; k < out.frames(); ++k) {
    const double pos = static_cast<double>(k) * 1.01;
    const double want =
        std::sin(2.0 * 3.14159265358979 * 5.0 * pos / fs);
    EXPECT_NEAR(out(k, 0), want, 1e-3);
  }
}

TEST(FaultInjector, ClockSkewIsSeamlessAcrossChunks) {
  FaultConfig cfg;
  cfg.clock_skew = 0.013;
  const Signal in = make_reference(1501, 41, 2);

  FaultInjector whole(cfg, 0);
  const Signal ref = whole.apply(in);

  FaultInjector chunked(cfg, 0);
  Signal got = Signal::empty(in.channels(), in.sample_rate());
  for (std::size_t pos = 0; pos < in.frames(); pos += 17) {
    const std::size_t end = std::min(pos + 17, in.frames());
    got.append(chunked.apply(SignalView(in).slice(pos, end)));
  }
  ASSERT_EQ(got.frames(), ref.frames());
  for (std::size_t n = 0; n < ref.frames(); ++n) {
    for (std::size_t c = 0; c < ref.channels(); ++c) {
      EXPECT_EQ(got(n, c), ref(n, c)) << "frame " << n;
    }
  }
}

TEST(FaultInjector, FlatlineFromReplacesTheTail) {
  const Signal in = make_reference(100, 43, 2);
  const Signal out = sensors::flatline_from(in, 40, 0.5);
  for (std::size_t n = 0; n < 40; ++n) {
    EXPECT_EQ(out(n, 0), in(n, 0));
  }
  for (std::size_t n = 40; n < 100; ++n) {
    EXPECT_EQ(out(n, 0), 0.5);
    EXPECT_EQ(out(n, 1), 0.5);
  }
  const Signal unchanged = sensors::flatline_from(in, 200);
  EXPECT_EQ(unchanged(99, 0), in(99, 0));
}

// ---------------------------------------------------------------------------
// Channel-health state machine
// ---------------------------------------------------------------------------

TEST(ChannelHealth, StartsHealthyAndStaysHealthyOnValidStream) {
  ChannelHealthMonitor m;
  EXPECT_EQ(m.state(), ChannelHealth::kHealthy);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.observe(true), ChannelHealth::kHealthy);
  }
  EXPECT_EQ(m.invalid_fraction(), 0.0);
}

TEST(ChannelHealth, DegradesOnElevatedInvalidFraction) {
  HealthPolicy p;
  p.history = 8;
  p.degraded_fraction = 0.25;
  p.offline_consecutive = 100;  // keep offline out of this test
  ChannelHealthMonitor m(p);
  // Alternate 1 invalid per 3 valid: fraction reaches 0.25 within history.
  ChannelHealth last = ChannelHealth::kHealthy;
  for (int i = 0; i < 16; ++i) {
    last = m.observe(i % 4 != 0);
  }
  EXPECT_EQ(last, ChannelHealth::kDegraded);
}

// Regression: invalid_fraction() divides by the number of *observed*
// windows during warm-up, so one invalid window out of two read as 50%
// invalid and flapped the channel to degraded seconds into a stream.  The
// fraction-based demotion now waits for a full history window.
TEST(ChannelHealth, WarmUpDoesNotFlapToDegraded) {
  HealthPolicy p;
  p.history = 8;
  p.degraded_fraction = 0.25;
  p.offline_consecutive = 100;  // keep the streak rule out of this test
  ChannelHealthMonitor m(p);
  EXPECT_EQ(m.observe(false), ChannelHealth::kHealthy);
  EXPECT_EQ(m.observe(true), ChannelHealth::kHealthy);  // 1/2 = 50% pre-fix
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(m.observe(true), ChannelHealth::kHealthy);
  }
  // Eighth window completes the history: 1 invalid of 8 = 12.5% < 25%,
  // so the channel legitimately stays healthy.
  EXPECT_EQ(m.observe(true), ChannelHealth::kHealthy);
}

TEST(ChannelHealth, StreakDemotionStillAppliesDuringWarmUp) {
  HealthPolicy p;
  p.history = 64;  // far from filled when the streak trips
  p.offline_consecutive = 4;
  ChannelHealthMonitor m(p);
  ChannelHealth last = ChannelHealth::kHealthy;
  for (int i = 0; i < 4; ++i) last = m.observe(false);
  EXPECT_EQ(last, ChannelHealth::kOffline);
}

TEST(ChannelHealth, GoesOfflineOnConsecutiveInvalidStreak) {
  HealthPolicy p;
  p.offline_consecutive = 4;
  ChannelHealthMonitor m(p);
  m.observe(true);
  m.observe(false);
  m.observe(false);
  m.observe(false);
  EXPECT_NE(m.state(), ChannelHealth::kOffline);
  EXPECT_EQ(m.observe(false), ChannelHealth::kOffline);
}

TEST(ChannelHealth, RecoversOneLevelAtATimeWithHysteresis) {
  HealthPolicy p;
  p.history = 8;
  p.degraded_fraction = 0.25;
  p.offline_consecutive = 4;
  p.recovery_consecutive = 4;
  ChannelHealthMonitor m(p);
  for (int i = 0; i < 6; ++i) m.observe(false);
  ASSERT_EQ(m.state(), ChannelHealth::kOffline);

  // First clean streak only gets back to degraded, never straight to
  // healthy.
  std::vector<ChannelHealth> seen;
  for (int i = 0; i < 20; ++i) seen.push_back(m.observe(true));
  EXPECT_EQ(seen.front(), ChannelHealth::kOffline);
  bool was_degraded = false;
  for (ChannelHealth h : seen) {
    if (h == ChannelHealth::kDegraded) was_degraded = true;
    if (h == ChannelHealth::kHealthy) {
      EXPECT_TRUE(was_degraded) << "skipped the degraded step";
    }
  }
  EXPECT_EQ(m.state(), ChannelHealth::kHealthy);
}

TEST(ChannelHealth, ReplayMatchesStreaming) {
  HealthPolicy p;
  p.history = 8;
  p.offline_consecutive = 4;
  std::vector<std::uint8_t> mask;
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    mask.push_back(rng.bernoulli(0.8) ? 1 : 0);
  }
  ChannelHealthMonitor m(p);
  for (std::uint8_t v : mask) m.observe(v != 0);
  EXPECT_EQ(core::replay_health(mask, p), m.state());
}

// ---------------------------------------------------------------------------
// Validity masking through DWM and the comparator
// ---------------------------------------------------------------------------

TEST(DwmMasking, CleanSignalHasAllWindowsValid) {
  const Signal b = make_reference(1500, 101);
  const Signal a = benign_observation(b, 202);
  const core::DwmResult r =
      core::DwmSynchronizer::align(a, b, dwm_config().dwm);
  ASSERT_EQ(r.valid.size(), r.h_disp.size());
  for (std::uint8_t v : r.valid) EXPECT_EQ(v, 1);
}

TEST(DwmMasking, FlatSpanIsMaskedAndDisplacementHeld) {
  const Signal b = make_reference(1500, 103);
  Signal a = benign_observation(b, 204);
  const std::size_t lo = 600, hi = 900;
  for (std::size_t n = lo; n < hi; ++n) a(n, 0) = 0.0;

  const core::DwmParams params = dwm_config().dwm;
  const core::DwmResult r = core::DwmSynchronizer::align(a, b, params);
  ASSERT_EQ(r.valid.size(), r.h_disp.size());
  EXPECT_TRUE(all_finite(r.h_disp));
  EXPECT_TRUE(all_finite(r.h_disp_low));

  std::size_t masked = 0;
  for (std::size_t i = 0; i < r.valid.size(); ++i) {
    if (r.valid[i] != 0) continue;
    ++masked;
    // The window must overlap the flat span...
    const std::size_t w_lo = i * params.n_hop;
    EXPECT_LT(w_lo, hi);
    EXPECT_GT(w_lo + params.n_win, lo);
    // ...and hold the previous low-frequency estimate.
    const double prev = i == 0 ? 0.0 : r.h_disp_low[i - 1];
    EXPECT_EQ(r.h_disp[i], prev);
    EXPECT_EQ(r.h_disp_low[i], prev);
  }
  EXPECT_GT(masked, 0u);
}

TEST(DwmMasking, NanSpanIsMaskedAndNothingLeaks) {
  const Signal b = make_reference(1500, 105);
  Signal a = benign_observation(b, 206);
  for (std::size_t n = 500; n < 650; ++n) a(n, 0) = kNan;

  const core::DwmResult r =
      core::DwmSynchronizer::align(a, b, dwm_config().dwm);
  EXPECT_TRUE(all_finite(r.h_disp));
  EXPECT_TRUE(all_finite(r.h_disp_low));
  EXPECT_TRUE(all_finite(r.h_dist));
  std::size_t masked = 0;
  for (std::uint8_t v : r.valid) {
    if (v == 0) ++masked;
  }
  EXPECT_GT(masked, 0u);
  EXPECT_LT(masked, r.valid.size());  // clean windows still scored
}

TEST(DetectionCoreMasking, SkipsDegenerateWindowsWithCarryForward) {
  const Signal b = make_reference(1500, 107);
  Signal a = benign_observation(b, 208);
  for (std::size_t n = 400; n < 560; ++n) a(n, 0) = kNan;

  const core::DwmParams params = dwm_config().dwm;
  const core::DwmResult r = core::DwmSynchronizer::align(a, b, params);
  core::DetectionCore dc(params, core::DistanceMetric::kCorrelation, 3);
  for (std::size_t i = 0; i < r.h_disp.size(); ++i) {
    const std::size_t a_start = i * params.n_hop;
    dc.step(r.h_disp[i], r.valid[i] != 0,
            SignalView(a).slice(a_start, a_start + params.n_win), b);
  }
  ASSERT_EQ(dc.v_dist().size(), dc.valid().size());
  EXPECT_TRUE(all_finite(dc.v_dist()));
  double last_valid = 0.0;
  bool saw_invalid = false;
  for (std::size_t i = 0; i < dc.valid().size(); ++i) {
    if (dc.valid()[i] != 0) {
      last_valid = dc.v_dist()[i];
    } else {
      saw_invalid = true;
      EXPECT_EQ(dc.v_dist()[i], last_valid);  // carry-forward, no spikes
    }
  }
  EXPECT_TRUE(saw_invalid);
}

TEST(DetectionCoreMasking, InvalidWindowsContributeNoEvidence) {
  // h_disp jumps wildly in masked windows; the masked features must
  // ignore those jumps entirely.
  const std::vector<double> h_disp = {0, 1, 50, -80, 1, 2};
  const std::vector<double> v_dist = {0.1, 0.1, 9.0, 9.0, 0.2, 0.1};
  const std::vector<std::uint8_t> valid = {1, 1, 0, 0, 1, 1};
  core::DwmParams params = dwm_config().dwm;
  core::DetectionCore dc(params, core::DistanceMetric::kCorrelation, 1);
  for (std::size_t i = 0; i < h_disp.size(); ++i) {
    dc.step_scored(h_disp[i], v_dist[i], valid[i] != 0);
  }
  const auto& masked = dc.features();
  // c_disp across the gap: |1-0| then nothing, then |1-1| = 0, |2-1| = 1.
  ASSERT_EQ(masked.c_disp.size(), h_disp.size());
  EXPECT_DOUBLE_EQ(masked.c_disp[1], 1.0);
  EXPECT_DOUBLE_EQ(masked.c_disp[2], 1.0);
  EXPECT_DOUBLE_EQ(masked.c_disp[3], 1.0);
  EXPECT_DOUBLE_EQ(masked.c_disp[4], 1.0);
  EXPECT_DOUBLE_EQ(masked.c_disp[5], 2.0);
  // v_dist in the gap holds the last valid value.
  EXPECT_DOUBLE_EQ(masked.v_dist_f[2], 0.1);
  EXPECT_DOUBLE_EQ(masked.v_dist_f[3], 0.1);
  // An all-valid feed reproduces the unmasked batch features.
  core::DetectionCore all_valid(params, core::DistanceMetric::kCorrelation, 1);
  for (std::size_t i = 0; i < h_disp.size(); ++i) {
    all_valid.step_scored(h_disp[i], v_dist[i], true);
  }
  const auto plain = core::compute_features(h_disp, v_dist, 1);
  EXPECT_EQ(all_valid.features().c_disp, plain.c_disp);
  EXPECT_EQ(all_valid.features().v_dist_f, plain.v_dist_f);
  EXPECT_EQ(all_valid.features().h_dist_f, plain.h_dist_f);
}

// ---------------------------------------------------------------------------
// End-to-end: NSYNC under faults
// ---------------------------------------------------------------------------

class FaultEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    reference_ = make_reference(1500, 100, 2);
    // A deployment calibrates on benign runs captured through its OWN
    // acquisition chain, faults included — that is what keeps the OCC
    // thresholds meaningful when the front end is flaky.  Training on
    // pristine signals at this toy scale yields c_c = h_c = 0 (the clean
    // runs track the reference to the sample), and then any single
    // dropped frame alarms.
    for (std::uint64_t s = 0; s < 8; ++s) {
      FaultInjector inj(one_percent_dropout(), 9000 + s);
      train_.push_back(inj.apply(benign_observation(reference_, 200 + s)));
    }
  }

  /// DWM sized for the fault regime: dropout steps of ~8 samples must
  /// stay inside the TDEB search range (n_sigma) and the extended
  /// reference window (n_ext), and the inertial tracker must re-lock
  /// within a couple of windows (eta), or one unlucky benign run diverges
  /// and inflates the max-based thresholds past any attack.
  static core::NsyncConfig fault_tolerant_config() {
    core::NsyncConfig cfg = dwm_config();
    cfg.dwm.n_ext = 48;
    cfg.dwm.n_sigma = 32.0;
    cfg.dwm.eta = 0.5;
    return cfg;
  }

  static FaultConfig one_percent_dropout() {
    FaultConfig cfg;
    cfg.dropout_rate = 0.00125;  // x mean 8 frames ~= 1 % of samples
    cfg.dropout_frames_mean = 8.0;
    cfg.nan_burst_rate = 0.0005;
    cfg.nan_burst_frames_mean = 4.0;
    return cfg;
  }

  Signal reference_;
  std::vector<Signal> train_;
};

TEST_F(FaultEndToEnd, AnalyzeNeverEmitsNonFiniteFeaturesUnderFaults) {
  core::NsyncIds ids(reference_, fault_tolerant_config());
  ids.fit(train_);
  for (std::uint64_t s = 0; s < 4; ++s) {
    FaultInjector inj(one_percent_dropout(), 900 + s);
    const Signal faulted = inj.apply(benign_observation(reference_, 300 + s));
    const core::Analysis a = ids.analyze(faulted);
    EXPECT_TRUE(all_finite(a.h_disp));
    EXPECT_TRUE(all_finite(a.v_dist));
    EXPECT_TRUE(features_finite(a.features));
    EXPECT_EQ(a.valid.size(), a.h_disp.size());
  }
}

TEST_F(FaultEndToEnd, BenignFprStaysBoundedUnderOnePercentDropout) {
  core::NsyncIds ids(reference_, fault_tolerant_config());
  ids.fit(train_);
  std::size_t alarms = 0;
  const std::size_t runs = 6;
  for (std::uint64_t s = 0; s < runs; ++s) {
    FaultInjector inj(one_percent_dropout(), 700 + s);
    const Signal faulted = inj.apply(benign_observation(reference_, 400 + s));
    if (ids.detect(faulted).intrusion) ++alarms;
  }
  // Dropout is genuine time noise, so a rare fault-time alarm is not
  // absurd — but with the masking in place and thresholds calibrated on
  // the same fault regime, benign runs must not alarm wholesale.
  // (Empirically 0 with these seeds.)
  EXPECT_LE(alarms, 1u);
}

TEST_F(FaultEndToEnd, AttackStillDetectedUnderFaults) {
  core::NsyncIds ids(reference_, fault_tolerant_config());
  ids.fit(train_);
  std::size_t detected = 0;
  const std::size_t runs = 4;
  for (std::uint64_t s = 0; s < runs; ++s) {
    FaultInjector inj(one_percent_dropout(), 800 + s);
    const Signal faulted =
        inj.apply(malicious_observation(reference_, 500 + s));
    if (ids.detect(faulted).intrusion) ++detected;
  }
  EXPECT_GE(detected, runs - 1);
}

TEST_F(FaultEndToEnd, StreamingMonitorMatchesBatchUnderFaults) {
  const core::NsyncConfig cfg = fault_tolerant_config();
  core::NsyncIds ids(reference_, cfg);
  ids.fit(train_);

  FaultInjector inj(one_percent_dropout(), 1234);
  const Signal faulted = inj.apply(benign_observation(reference_, 600));

  const core::Analysis batch = ids.analyze(faulted);
  core::RealtimeMonitor monitor(reference_, cfg, ids.thresholds());
  for (std::size_t pos = 0; pos < faulted.frames(); pos += 100) {
    const std::size_t end = std::min(pos + 100, faulted.frames());
    monitor.push(SignalView(faulted).slice(pos, end));
  }

  ASSERT_EQ(monitor.features().c_disp.size(), batch.features.c_disp.size());
  ASSERT_EQ(monitor.valid().size(), batch.valid.size());
  for (std::size_t i = 0; i < batch.valid.size(); ++i) {
    EXPECT_EQ(monitor.valid()[i], batch.valid[i]) << "window " << i;
  }
  for (std::size_t i = 0; i < batch.features.c_disp.size(); ++i) {
    EXPECT_DOUBLE_EQ(monitor.features().c_disp[i], batch.features.c_disp[i]);
    EXPECT_DOUBLE_EQ(monitor.features().h_dist_f[i],
                     batch.features.h_dist_f[i]);
    EXPECT_DOUBLE_EQ(monitor.features().v_dist_f[i],
                     batch.features.v_dist_f[i]);
  }
}

TEST_F(FaultEndToEnd, MonitorReportsOfflineWhenSensorGoesDark) {
  core::NsyncConfig cfg = fault_tolerant_config();
  cfg.health.history = 8;
  cfg.health.offline_consecutive = 4;
  core::NsyncIds ids(reference_, cfg);
  ids.fit(train_);

  Signal obs = benign_observation(reference_, 610);
  const Signal dark = sensors::flatline_from(obs, obs.frames() / 3);

  core::RealtimeMonitor monitor(reference_, cfg, ids.thresholds());
  for (std::size_t pos = 0; pos < dark.frames(); pos += 100) {
    const std::size_t end = std::min(pos + 100, dark.frames());
    monitor.push(SignalView(dark).slice(pos, end));
  }
  EXPECT_EQ(monitor.health(), ChannelHealth::kOffline);
  EXPECT_TRUE(features_finite(monitor.features()));
  std::size_t masked = 0;
  for (std::uint8_t v : monitor.valid()) {
    if (v == 0) ++masked;
  }
  EXPECT_GT(masked, monitor.valid().size() / 3);
}

TEST_F(FaultEndToEnd, FusionDropsOfflineChannelFromTheVote) {
  core::NsyncConfig cfg = dwm_config();
  cfg.health.history = 8;
  cfg.health.offline_consecutive = 4;

  const Signal ref_b = make_reference(1500, 111, 2);
  auto build = [&] {
    core::FusionIds fused(core::FusionRule::kAll);
    fused.add_channel("A", reference_, cfg);
    fused.add_channel("B", ref_b, cfg);
    std::vector<core::FusionIds::SignalMap> train;
    for (std::uint64_t s = 0; s < 8; ++s) {
      core::FusionIds::SignalMap run;
      run["A"] = benign_observation(reference_, 200 + s);
      run["B"] = benign_observation(ref_b, 1200 + s);
      train.push_back(std::move(run));
    }
    fused.fit(train);
    return fused;
  };
  const core::FusionIds fused = build();

  // Clean benign: both channels healthy, both count.
  core::FusionIds::SignalMap clean;
  clean["A"] = benign_observation(reference_, 620);
  clean["B"] = benign_observation(ref_b, 1620);
  const core::FusionDetection d_clean = fused.detect(clean);
  EXPECT_EQ(d_clean.online_channels, 2u);
  for (const auto& [name, h] : d_clean.health) {
    EXPECT_EQ(h, ChannelHealth::kHealthy) << name;
  }

  // Channel B goes dark; with rule kAll a dead channel would veto every
  // alarm forever unless the vote drops it.
  core::FusionIds::SignalMap attacked;
  attacked["A"] = malicious_observation(reference_, 630);
  attacked["B"] = sensors::flatline_from(benign_observation(ref_b, 1630), 0);
  const core::FusionDetection d = fused.detect(attacked);
  EXPECT_EQ(d.online_channels, 1u);
  for (const auto& [name, h] : d.health) {
    if (name == "B") EXPECT_EQ(h, ChannelHealth::kOffline);
  }
  EXPECT_TRUE(d.intrusion) << "surviving channel's alarm was vetoed";

  // Every sensor dark -> no evidence -> benign verdict, not a crash.
  core::FusionIds::SignalMap all_dark;
  all_dark["A"] = sensors::flatline_from(benign_observation(reference_, 640), 0);
  all_dark["B"] = sensors::flatline_from(benign_observation(ref_b, 1640), 0);
  const core::FusionDetection d_dark = fused.detect(all_dark);
  EXPECT_EQ(d_dark.online_channels, 0u);
  EXPECT_FALSE(d_dark.intrusion);
}

// ---------------------------------------------------------------------------
// Regression: degenerate windows in the sliding correlation (xcorr)
// ---------------------------------------------------------------------------

TEST(XcorrDegenerateRegression, FlatWindowScoresZeroInAllVariants) {
  std::vector<double> x(64, 1.0);  // every window flat
  for (std::size_t i = 32; i < 64; ++i) x[i] = std::sin(0.3 * double(i));
  const std::vector<double> y = {0.1, 0.7, -0.2, 0.4};
  const auto naive = dsp::sliding_pearson_naive(x, y);
  const auto fft = dsp::sliding_pearson_fft(x, y);
  const auto cplx = dsp::sliding_pearson_fft_complex(x, y);
  ASSERT_EQ(naive.size(), fft.size());
  for (std::size_t n = 0; n < fft.size(); ++n) {
    EXPECT_TRUE(std::isfinite(fft[n]));
    EXPECT_TRUE(std::isfinite(cplx[n]));
    EXPECT_NEAR(fft[n], naive[n], 1e-9);
  }
  EXPECT_EQ(naive[0], 0.0);  // fully flat window
}

TEST(XcorrDegenerateRegression, NanInputNeverEmitsNonFiniteScores) {
  std::vector<double> x(128);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(0.2 * double(i));
  x[50] = kNan;
  const std::vector<double> y = {0.1, 0.7, -0.2, 0.4, 0.9};
  for (const auto& scores :
       {dsp::sliding_pearson_naive(x, y), dsp::sliding_pearson_fft(x, y),
        dsp::sliding_pearson_fft_complex(x, y)}) {
    for (double s : scores) EXPECT_TRUE(std::isfinite(s));
  }
  // Non-finite template: every window scores 0.
  std::vector<double> y_nan = y;
  y_nan[2] = kNan;
  std::vector<double> clean_x(128, 0.0);
  for (std::size_t i = 0; i < clean_x.size(); ++i) {
    clean_x[i] = std::cos(0.1 * double(i));
  }
  for (double s : dsp::sliding_pearson_fft(clean_x, y_nan)) {
    EXPECT_EQ(s, 0.0);
  }
}

TEST(XcorrDegenerateRegression, PearsonReturnsZeroOnNonFiniteInput) {
  const std::vector<double> u = {1.0, kNan, 3.0};
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_EQ(signal::pearson(u, v), 0.0);
  EXPECT_EQ(signal::pearson(v, u), 0.0);
}

TEST(XcorrDegenerateRegression, DegenerateWindowDetector) {
  Signal one_frame(1, 2, 100.0);
  EXPECT_TRUE(signal::degenerate_window(one_frame));

  Signal flat(16, 2, 100.0);
  for (std::size_t n = 0; n < 16; ++n) {
    flat(n, 0) = 3.0;
    flat(n, 1) = -1.0;
  }
  EXPECT_TRUE(signal::degenerate_window(flat));

  // A NaN hiding in the SECOND channel while the first varies must still
  // count as degenerate (one NaN poisons every channel's FFT numerator).
  Signal nan_ch1 = make_reference(16, 3, 2);
  nan_ch1(8, 1) = kNan;
  EXPECT_TRUE(signal::degenerate_window(nan_ch1));

  // One varying channel with all-finite data is information: not
  // degenerate, even if the other channel is constant.
  Signal half_flat(16, 2, 100.0);
  for (std::size_t n = 0; n < 16; ++n) {
    half_flat(n, 0) = 2.0;
    half_flat(n, 1) = std::sin(0.4 * double(n));
  }
  EXPECT_FALSE(signal::degenerate_window(half_flat));
}

// ---------------------------------------------------------------------------
// Regression: '+' signed G-code values and line/column error reporting
// ---------------------------------------------------------------------------

TEST(GcodeParserRegression, PlusSignedValuesParse) {
  const auto cmd = gcode::parse_line("G1 X+1.5 Y-2.0 E+0.25 F+1200");
  ASSERT_TRUE(cmd.x.has_value());
  EXPECT_DOUBLE_EQ(*cmd.x, 1.5);
  ASSERT_TRUE(cmd.y.has_value());
  EXPECT_DOUBLE_EQ(*cmd.y, -2.0);
  ASSERT_TRUE(cmd.e.has_value());
  EXPECT_DOUBLE_EQ(*cmd.e, 0.25);
  ASSERT_TRUE(cmd.f.has_value());
  EXPECT_DOUBLE_EQ(*cmd.f, 1200.0);
}

TEST(GcodeParserRegression, LoneOrDoubledSignStaysMalformed) {
  EXPECT_THROW((void)gcode::parse_line("G1 X+"), std::invalid_argument);
  EXPECT_THROW((void)gcode::parse_line("G1 X+-1"), std::invalid_argument);
  EXPECT_THROW((void)gcode::parse_line("G1 X++1"), std::invalid_argument);
}

TEST(GcodeParserRegression, ErrorsReportLineAndColumn) {
  try {
    (void)gcode::parse_line("G1 X1 Y1.2.3", 7);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column 8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1.2.3"), std::string::npos) << msg;
  }

  try {
    (void)gcode::parse_line("G1 X1 Q", 3);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column 7"), std::string::npos) << msg;
  }

  try {
    (void)gcode::parse_program("G1 X1\nG1 X2\nG1 Xoops\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column 5"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// Regression: DAQ trailing-partial-frame drop eligibility
// ---------------------------------------------------------------------------

TEST(DaqRegression, TrailingPartialFrameIsDropEligible) {
  Signal s(10, 1, 100.0);  // 2 full frames of 4 + one partial frame of 2
  for (std::size_t n = 0; n < 10; ++n) s(n, 0) = double(n);
  sensors::DaqConfig cfg;
  cfg.gain_jitter_std = 0.0;
  cfg.full_scale = 0.0;
  cfg.frame_samples = 4;
  cfg.frame_drop_probability = 1.0;  // every frame dropped...
  Rng rng(1);
  const Signal out = sensors::apply_daq(s, cfg, rng);
  EXPECT_EQ(out.frames(), 0u);  // ...including the trailing partial one
}

TEST(DaqRegression, NoDropsPreservesEverySampleIncludingTheTail) {
  Signal s(10, 1, 100.0);
  for (std::size_t n = 0; n < 10; ++n) s(n, 0) = double(n);
  sensors::DaqConfig cfg;
  cfg.gain_jitter_std = 0.0;
  cfg.full_scale = 0.0;
  cfg.frame_samples = 4;
  cfg.frame_drop_probability = 0.0;
  Rng rng(1);
  const Signal out = sensors::apply_daq(s, cfg, rng);
  ASSERT_EQ(out.frames(), 10u);
  for (std::size_t n = 0; n < 10; ++n) {
    EXPECT_EQ(out(n, 0), double(n));
  }
}

}  // namespace
}  // namespace nsync
