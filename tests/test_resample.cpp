// Tests for sample-rate conversion and piecewise-linear sampling.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "signal/resample.hpp"
#include "signal/signal.hpp"

namespace nsync::signal {
namespace {

TEST(ResampleLinear, RampSurvivesRateChange) {
  // A linear ramp resamples exactly under linear interpolation.
  Signal s(100, 1, 100.0);
  for (std::size_t n = 0; n < s.frames(); ++n) {
    s(n, 0) = static_cast<double>(n);
  }
  const Signal down = resample_linear(s, 50.0);
  EXPECT_DOUBLE_EQ(down.sample_rate(), 50.0);
  ASSERT_GE(down.frames(), 40u);
  for (std::size_t n = 0; n < down.frames(); ++n) {
    EXPECT_NEAR(down(n, 0), static_cast<double>(2 * n), 1e-9);
  }
}

TEST(ResampleLinear, UpsamplingInterpolatesBetweenSamples) {
  Signal s = Signal::from_samples({0.0, 1.0}, 10.0);
  const Signal up = resample_linear(s, 20.0);
  ASSERT_GE(up.frames(), 3u);
  EXPECT_NEAR(up(1, 0), 0.5, 1e-12);
}

TEST(ResampleLinear, PreservesChannelCount) {
  Signal s(64, 3, 100.0);
  const Signal r = resample_linear(s, 33.0);
  EXPECT_EQ(r.channels(), 3u);
}

TEST(ResampleLinear, RejectsBadRate) {
  Signal s(10, 1, 100.0);
  EXPECT_THROW(resample_linear(s, 0.0), std::invalid_argument);
}

TEST(Decimate, AveragesBlocks) {
  Signal s = Signal::from_samples({1.0, 3.0, 5.0, 7.0}, 100.0);
  const Signal d = decimate(s, 2);
  EXPECT_EQ(d.frames(), 2u);
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(d.sample_rate(), 50.0);
}

TEST(Decimate, FactorOneIsCopy) {
  Signal s = Signal::from_samples({1.0, 2.0}, 10.0);
  const Signal d = decimate(s, 1);
  EXPECT_EQ(d.frames(), 2u);
  EXPECT_DOUBLE_EQ(d(1, 0), 2.0);
  EXPECT_THROW(decimate(s, 0), std::invalid_argument);
}

TEST(SamplePiecewiseLinear, HitsBreakpointsExactly) {
  const std::vector<double> times = {0.0, 1.0, 2.0};
  const std::vector<double> values = {0.0, 10.0, 0.0};
  const auto out = sample_piecewise_linear(times, values, 10.0, 2.0);
  ASSERT_EQ(out.size(), 21u);
  EXPECT_NEAR(out[0], 0.0, 1e-12);
  EXPECT_NEAR(out[10], 10.0, 1e-12);
  EXPECT_NEAR(out[20], 0.0, 1e-12);
  EXPECT_NEAR(out[5], 5.0, 1e-12);  // midpoint of the rising edge
}

TEST(SamplePiecewiseLinear, ClampsOutsideRange) {
  const std::vector<double> times = {1.0, 2.0};
  const std::vector<double> values = {5.0, 7.0};
  const auto out = sample_piecewise_linear(times, values, 10.0, 3.0);
  EXPECT_NEAR(out.front(), 5.0, 1e-12);  // before the first breakpoint
  EXPECT_NEAR(out.back(), 7.0, 1e-12);   // after the last breakpoint
}

TEST(SamplePiecewiseLinear, RejectsMismatchedInput) {
  const std::vector<double> times = {0.0, 1.0};
  const std::vector<double> values = {0.0};
  EXPECT_THROW(sample_piecewise_linear(times, values, 10.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(sample_piecewise_linear(times, times, -1.0, 1.0),
               std::invalid_argument);
}

// Property: resampling a sine keeps its amplitude within tolerance as long
// as it stays well below Nyquist.
class SineResampleProperty : public ::testing::TestWithParam<double> {};

TEST_P(SineResampleProperty, AmplitudePreserved) {
  const double new_rate = GetParam();
  const double fs = 1000.0;
  const double tone = 10.0;  // Hz, well below every tested Nyquist
  Signal s(2000, 1, fs);
  for (std::size_t n = 0; n < s.frames(); ++n) {
    s(n, 0) = std::sin(2.0 * std::numbers::pi * tone *
                       static_cast<double>(n) / fs);
  }
  const Signal r = resample_linear(s, new_rate);
  double peak = 0.0;
  for (std::size_t n = 0; n < r.frames(); ++n) {
    peak = std::max(peak, std::abs(r(n, 0)));
  }
  EXPECT_NEAR(peak, 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Rates, SineResampleProperty,
                         ::testing::Values(250.0, 500.0, 1500.0));

}  // namespace
}  // namespace nsync::signal
