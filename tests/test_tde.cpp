// Tests for Time Delay Estimation and its biased variant (Sections V-B,
// VI-B).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "core/tde.hpp"
#include "signal/rng.hpp"
#include "signal/stats.hpp"

namespace nsync::core {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;

Signal random_signal(std::size_t frames, std::size_t channels,
                     std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, channels, 100.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      s(n, c) = rng.normal();
    }
  }
  return s;
}

TEST(Tde, ScoresHaveExpectedLength) {
  const Signal x = random_signal(100, 2, 1);
  const Signal y = random_signal(30, 2, 2);
  const auto s = similarity_scores(x, y);
  EXPECT_EQ(s.size(), 71u);  // Nx - Ny + 1
}

TEST(Tde, ShapeChecks) {
  const Signal x = random_signal(10, 2, 1);
  const Signal y3 = random_signal(5, 3, 2);
  EXPECT_THROW(similarity_scores(x, y3), std::invalid_argument);
  const Signal y_long = random_signal(20, 2, 3);
  EXPECT_THROW(similarity_scores(x, y_long), std::invalid_argument);
}

class TdeDelayProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TdeDelayProperty, RecoversExactEmbeddedDelay) {
  const std::size_t delay = GetParam();
  const Signal y = random_signal(40, 3, 77);
  Signal x = random_signal(200, 3, 78);
  for (std::size_t n = 0; n < y.frames(); ++n) {
    for (std::size_t c = 0; c < 3; ++c) {
      x(delay + n, c) = y(n, c);
    }
  }
  EXPECT_EQ(estimate_delay(x, y), delay);
  // Naive and FFT TDE paths agree.
  TdeOptions naive;
  naive.use_fft = false;
  EXPECT_EQ(estimate_delay(x, y, naive), delay);
}

INSTANTIATE_TEST_SUITE_P(Delays, TdeDelayProperty,
                         ::testing::Values(0, 1, 17, 80, 159, 160));

TEST(Tde, MultichannelAveragingUsesAllChannels) {
  // The template appears at index 20 in channel 0 and at index 60 in
  // channel 1; with per-channel averaging the combined score peaks where
  // the average evidence is strongest, not necessarily at either single
  // channel's position.  Here channel 0 carries a much stronger copy, so
  // the average must still find 20.
  Rng rng(5);
  Signal y(20, 2, 100.0);
  for (std::size_t n = 0; n < 20; ++n) {
    y(n, 0) = rng.normal();
    y(n, 1) = rng.normal();
  }
  Signal x(120, 2, 100.0);
  for (std::size_t n = 0; n < 120; ++n) {
    x(n, 0) = 0.01 * rng.normal();
    x(n, 1) = 0.01 * rng.normal();
  }
  for (std::size_t n = 0; n < 20; ++n) {
    x(20 + n, 0) = y(n, 0);
    x(20 + n, 1) = y(n, 1);
  }
  EXPECT_EQ(estimate_delay(x, y), 20u);
}

TEST(Tdeb, BiasScoresPeaksAtCenter) {
  std::vector<double> flat(21, 1.0);
  const auto biased = bias_scores(flat, 10.0, 3.0);
  EXPECT_NEAR(biased[10], 1.0, 1e-12);
  EXPECT_LT(biased[0], biased[10]);
  EXPECT_LT(biased[20], biased[10]);
  EXPECT_NEAR(biased[7], std::exp(-0.5), 1e-9);  // one sigma away
  EXPECT_THROW(bias_scores(flat, 10.0, 0.0), std::invalid_argument);
}

TEST(Tdeb, PeriodicSignalPulledTowardCenter) {
  // A periodic template matches at several delays with equal score; the
  // bias must select the one closest to the expected center (Fig. 5).
  const double period = 16.0;
  auto tone = [&](std::size_t n) {
    return std::sin(2.0 * std::numbers::pi * static_cast<double>(n) / period);
  };
  Signal x(160, 1, 100.0);
  for (std::size_t n = 0; n < x.frames(); ++n) x(n, 0) = tone(n);
  Signal y(32, 1, 100.0);
  for (std::size_t n = 0; n < y.frames(); ++n) y(n, 0) = tone(n);
  // Unbiased TDE may return any multiple of the period; TDEB centered at
  // 64 must return the match nearest 64 (which is exactly 64, since the
  // tone is periodic with period 16 | 64).
  const std::size_t biased = estimate_delay_biased(x, y, 64.0, 8.0);
  EXPECT_EQ(biased, 64u);
}

TEST(Tdeb, NoiseOnlyWindowStaysNearCenter) {
  // When the window is pure noise the unbiased argmax is arbitrary; the
  // bias keeps the estimate near the center (the paper's stability
  // argument).
  const Signal x = random_signal(300, 1, 31);
  const Signal y = random_signal(50, 1, 32);  // unrelated noise
  const double center = 125.0;
  const std::size_t j = estimate_delay_biased(x, y, center, 20.0);
  EXPECT_NEAR(static_cast<double>(j), center, 60.0);
}

TEST(Tdeb, StrongTrueMatchOverridesBias) {
  // A genuine match far from the center must still win against the bias
  // when it is unambiguous (score ~1 vs noise scores ~0).
  const Signal y = random_signal(40, 2, 41);
  Signal x = random_signal(300, 2, 42);
  const std::size_t at = 230;
  for (std::size_t n = 0; n < y.frames(); ++n) {
    for (std::size_t c = 0; c < 2; ++c) x(at + n, c) = y(n, c);
  }
  // Center at 40, sigma 120 — wide enough that exp(-0.5*(190/120)^2) ~ 0.28
  // times score 1.0 still beats every noise score (|noise| < ~0.28).
  const std::size_t j = estimate_delay_biased(x, y, 40.0, 120.0);
  EXPECT_EQ(j, at);
}

// --------------------------------------------------------------------------
// The fused workspace tier must be bitwise identical to the allocating
// tier: same per-element arithmetic order, same first-occurrence argmax.
// --------------------------------------------------------------------------

TEST(TdeWorkspaceTier, SimilarityScoresAreBitwiseEqual) {
  TdeWorkspace ws;
  for (const std::size_t channels : {1u, 3u}) {
    const Signal x = random_signal(200, channels, 91 + channels);
    const Signal y = random_signal(40, channels, 92 + channels);
    const auto staged = similarity_scores(x, y);
    const auto fused = similarity_scores_into(x, y, {}, ws);
    ASSERT_EQ(staged.size(), fused.size());
    for (std::size_t n = 0; n < staged.size(); ++n) {
      EXPECT_EQ(staged[n], fused[n]) << "channels " << channels << " lag "
                                     << n;
    }
  }
}

TEST(TdeWorkspaceTier, FusedBiasedEstimateMatchesStagedPipeline) {
  // Reconstruct the unfused pipeline from the public pieces (score, clamp,
  // bias, argmax) and require the fused single pass to agree exactly.
  TdeWorkspace ws;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Signal x = random_signal(300, 2, 500 + seed);
    const Signal y = random_signal(50, 2, 600 + seed);
    const double center = static_cast<double>(20 + 17 * seed % 200);
    const double sigma = 5.0 + static_cast<double>(seed);

    auto scores = similarity_scores(x, y);
    for (auto& s : scores) s = std::max(s, 0.0);
    const auto biased = bias_scores(std::move(scores), center, sigma);
    const std::size_t staged = nsync::signal::argmax(biased);

    EXPECT_EQ(estimate_delay_biased(x, y, center, sigma), staged)
        << "seed " << seed;
    EXPECT_EQ(estimate_delay_biased(x, y, center, sigma, {}, ws), staged)
        << "seed " << seed;
  }
}

TEST(TdeWorkspaceTier, FusedHandlesTiedScoresLikeMaxElement) {
  // A constant observed window yields an all-zero (clamped) score array;
  // std::max_element returns the FIRST maximum, and the fused argmax must
  // do the same.
  Signal x(60, 1, 100.0);
  Signal y(20, 1, 100.0);
  for (std::size_t n = 0; n < 60; ++n) x(n, 0) = 1.0;
  for (std::size_t n = 0; n < 20; ++n) y(n, 0) = 1.0;
  TdeWorkspace ws;
  EXPECT_EQ(estimate_delay_biased(x, y, 30.0, 5.0), 0u);
  EXPECT_EQ(estimate_delay_biased(x, y, 30.0, 5.0, {}, ws), 0u);
}

TEST(TdeWorkspaceTier, FusedValidatesLikeStaged) {
  const Signal x = random_signal(50, 2, 7);
  const Signal y_bad = random_signal(20, 3, 8);
  TdeWorkspace ws;
  EXPECT_THROW(estimate_delay_biased(x, y_bad, 10.0, 5.0, {}, ws),
               std::invalid_argument);
  const Signal y = random_signal(20, 2, 9);
  EXPECT_THROW(estimate_delay_biased(x, y, 10.0, 0.0, {}, ws),
               std::invalid_argument);
}

TEST(Tdeb, NegativeScoreShiftKeepsArgmaxMeaningful) {
  // All-negative score arrays (anti-correlated windows) must not break the
  // bias multiplication.
  Signal x(60, 1, 100.0);
  Signal y(20, 1, 100.0);
  for (std::size_t n = 0; n < 60; ++n) x(n, 0) = std::sin(0.3 * n);
  for (std::size_t n = 0; n < 20; ++n) y(n, 0) = -std::sin(0.3 * n);
  const std::size_t j = estimate_delay_biased(x, y, 20.0, 5.0);
  EXPECT_LT(j, 41u);  // must return a valid index without throwing
}

}  // namespace
}  // namespace nsync::core
