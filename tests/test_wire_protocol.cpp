// NSFP wire protocol: codec round-trips, incremental decoding under
// arbitrary chunking, framing-error taxonomy, request dispatch, and an
// end-to-end client/server exchange over a real Unix-domain socket.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/fusion.hpp"
#include "core/nsync.hpp"
#include "engine/fleet_server.hpp"
#include "engine/session_codec.hpp"
#include "engine/sharded_fleet.hpp"
#include "engine/wire_client.hpp"
#include "engine/wire_protocol.hpp"
#include "signal/checkpoint.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using namespace nsync::engine;
using nsync::signal::Signal;
using nsync::signal::SignalView;

namespace {

/// Minimal valid session spec (DWM config, tiny reference).
SessionSpec tiny_spec(const std::string& name) {
  SessionSpec spec;
  spec.name = name;
  spec.rule = core::FusionRule::kAny;
  ChannelSpec ch;
  ch.name = "ACC";
  ch.reference = Signal(512, 1, 100.0);
  for (std::size_t n = 0; n < 512; ++n) {
    ch.reference(n, 0) = std::sin(0.1 * static_cast<double>(n));
  }
  ch.config.sync = core::SyncMethod::kDwm;
  ch.config.dwm.n_win = 64;
  ch.config.dwm.n_hop = 32;
  ch.config.dwm.n_ext = 24;
  ch.config.dwm.n_sigma = 12.0;
  ch.config.dwm.eta = 0.2;
  ch.thresholds.c_c = 100.0;
  ch.thresholds.h_c = 100.0;
  ch.thresholds.v_c = 100.0;
  spec.channels.push_back(std::move(ch));
  return spec;
}

/// Decodes one complete frame or reports the status.
wire::DecodeStatus decode_one(const std::vector<std::uint8_t>& bytes,
                              wire::Message& out) {
  wire::FrameDecoder d;
  d.feed(bytes);
  return d.next(out);
}

}  // namespace

// --- Codec round-trips ------------------------------------------------------

TEST(WireProtocol, FeedRoundTripsBitwise) {
  wire::Feed msg;
  msg.session = 42;
  msg.channel = "ACC";
  msg.frames = Signal(17, 3, 250.0);
  for (std::size_t n = 0; n < 17; ++n) {
    for (std::size_t c = 0; c < 3; ++c) {
      msg.frames(n, c) = 0.25 * static_cast<double>(n * 3 + c) - 1.0;
    }
  }
  const std::vector<std::uint8_t> bytes = wire::encode(msg);
  wire::Message out;
  ASSERT_EQ(decode_one(bytes, out), wire::DecodeStatus::kFrame);
  const auto& got = std::get<wire::Feed>(out);
  EXPECT_EQ(got.session, 42u);
  EXPECT_EQ(got.channel, "ACC");
  ASSERT_EQ(got.frames.frames(), 17u);
  ASSERT_EQ(got.frames.channels(), 3u);
  EXPECT_EQ(got.frames.sample_rate(), 250.0);
  EXPECT_EQ(std::memcmp(got.frames.data(), msg.frames.data(),
                        17 * 3 * sizeof(double)),
            0)
      << "frame payloads must round-trip bitwise";
}

TEST(WireProtocol, AddSessionRoundTripsSpec) {
  wire::AddSession msg;
  msg.spec = tiny_spec("printer-9");
  const std::vector<std::uint8_t> bytes = wire::encode(msg);
  wire::Message out;
  ASSERT_EQ(decode_one(bytes, out), wire::DecodeStatus::kFrame);
  const auto& got = std::get<wire::AddSession>(out);
  EXPECT_EQ(got.spec.name, "printer-9");
  ASSERT_EQ(got.spec.channels.size(), 1u);
  EXPECT_EQ(got.spec.channels[0].name, "ACC");
  EXPECT_EQ(got.spec.channels[0].reference.frames(), 512u);
  EXPECT_EQ(got.spec.channels[0].thresholds.c_c, 100.0);
}

TEST(WireProtocol, EveryMessageTypeRoundTrips) {
  std::vector<wire::Message> all;
  all.emplace_back(wire::Hello{wire::kProtocolVersion, "client-x"});
  all.emplace_back(wire::HelloOk{wire::kProtocolVersion, 4, 7});
  {
    wire::AddSession m;
    m.spec = tiny_spec("s");
    all.emplace_back(std::move(m));
  }
  all.emplace_back(wire::AddSessionOk{3, 1});
  {
    wire::Feed m;
    m.session = 1;
    m.channel = "AUD";
    m.frames = Signal(4, 2, 100.0);
    all.emplace_back(std::move(m));
  }
  all.emplace_back(wire::FeedOk{256, 12, 1024});
  all.emplace_back(wire::PollStats{1});
  {
    wire::Stats m;
    m.shards = 2;
    m.sessions = 3;
    wire::StatsShard sh;
    sh.shard = 1;
    sh.windows = 99;
    sh.p99_feed_to_verdict_us = 123.5;
    m.per_shard.push_back(sh);
    wire::StatsSession ss;
    ss.name = "printer-0";
    ss.intrusion = 1;
    ss.first_alarm_window = 64;
    ss.channels.push_back(wire::StatsChannel{"ACC", 1, 0, 10, 320});
    m.sessions_detail.push_back(ss);
    all.emplace_back(std::move(m));
  }
  all.emplace_back(wire::Evict{5});
  all.emplace_back(wire::EvictOk{});
  all.emplace_back(wire::Error{wire::ErrorCode::kOverloaded, "queue full"});

  for (const wire::Message& m : all) {
    const std::vector<std::uint8_t> bytes = wire::encode(m);
    wire::Message out;
    ASSERT_EQ(decode_one(bytes, out), wire::DecodeStatus::kFrame)
        << "type 0x" << std::hex
        << static_cast<int>(wire::message_type(m));
    EXPECT_EQ(wire::message_type(out), wire::message_type(m));
  }
}

TEST(WireProtocol, AddSessionRoundTripsWeightedPolicy) {
  wire::AddSession msg;
  msg.spec = tiny_spec("printer-w");
  core::WeightedPolicyConfig cfg;
  cfg.threshold = 0.8125;
  msg.spec.policy = std::make_shared<core::WeightedPolicy>(
      cfg, std::vector<std::pair<std::string, double>>{{"ACC", 1.0}});
  const std::vector<std::uint8_t> bytes = wire::encode(msg);
  wire::Message out;
  ASSERT_EQ(decode_one(bytes, out), wire::DecodeStatus::kFrame);
  const auto& got = std::get<wire::AddSession>(out);
  ASSERT_NE(got.spec.policy, nullptr);
  const auto* weighted =
      dynamic_cast<const core::WeightedPolicy*>(got.spec.policy.get());
  ASSERT_NE(weighted, nullptr);
  EXPECT_TRUE(weighted->trained());
  EXPECT_EQ(weighted->config().threshold, 0.8125);
  ASSERT_EQ(weighted->weights().size(), 1u);
  EXPECT_EQ(weighted->weights()[0].first, "ACC");
  EXPECT_EQ(weighted->weights()[0].second, 1.0);
}

TEST(WireProtocol, StatsRoundTripsFusionAndBaselineTelemetry) {
  wire::Stats m;
  m.shards = 1;
  m.sessions = 1;
  wire::StatsBaseline base;
  base.shard = 1;
  base.model = "UM3";
  base.profile = "ACC";
  base.prints = 12;
  base.frozen = 3;
  m.baselines.push_back(base);
  wire::StatsSession ss;
  ss.name = "printer-0";
  ss.intrusion = 1;
  ss.first_alarm_window = 64;
  ss.policy = "weighted";
  ss.fused_score = 1.328125;
  ss.channels.push_back(
      wire::StatsChannel{"ACC", 1, 0, 1.75, 0.59375, 10, 320});
  m.sessions_detail.push_back(ss);

  const std::vector<std::uint8_t> bytes = wire::encode(m);
  wire::Message out;
  ASSERT_EQ(decode_one(bytes, out), wire::DecodeStatus::kFrame);
  const auto& got = std::get<wire::Stats>(out);
  ASSERT_EQ(got.baselines.size(), 1u);
  EXPECT_EQ(got.baselines[0].shard, 1u);
  EXPECT_EQ(got.baselines[0].model, "UM3");
  EXPECT_EQ(got.baselines[0].profile, "ACC");
  EXPECT_EQ(got.baselines[0].prints, 12u);
  EXPECT_EQ(got.baselines[0].frozen, 3u);
  ASSERT_EQ(got.sessions_detail.size(), 1u);
  EXPECT_EQ(got.sessions_detail[0].policy, "weighted");
  EXPECT_EQ(got.sessions_detail[0].fused_score, 1.328125);
  ASSERT_EQ(got.sessions_detail[0].channels.size(), 1u);
  EXPECT_EQ(got.sessions_detail[0].channels[0].score, 1.75);
  EXPECT_EQ(got.sessions_detail[0].channels[0].weight, 0.59375);
}

// --- Incremental decoding ---------------------------------------------------

TEST(WireProtocol, DecodesByteByByte) {
  wire::Feed msg;
  msg.session = 7;
  msg.channel = "AUD";
  msg.frames = Signal(9, 2, 100.0);
  const std::vector<std::uint8_t> bytes = wire::encode(msg);

  wire::FrameDecoder d;
  wire::Message out;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    d.feed(std::span<const std::uint8_t>(&bytes[i], 1));
    ASSERT_EQ(d.next(out), wire::DecodeStatus::kNeedMore) << "byte " << i;
  }
  d.feed(std::span<const std::uint8_t>(&bytes.back(), 1));
  ASSERT_EQ(d.next(out), wire::DecodeStatus::kFrame);
  EXPECT_EQ(std::get<wire::Feed>(out).session, 7u);
}

TEST(WireProtocol, DecodesBackToBackFramesFromOneChunk) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    wire::Evict m;
    m.session = static_cast<std::uint64_t>(i);
    const std::vector<std::uint8_t> f = wire::encode(m);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  wire::FrameDecoder d;
  d.feed(stream);
  wire::Message out;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(d.next(out), wire::DecodeStatus::kFrame);
    EXPECT_EQ(std::get<wire::Evict>(out).session, i);
  }
  EXPECT_EQ(d.next(out), wire::DecodeStatus::kNeedMore);
  EXPECT_EQ(d.buffered(), 0u);
}

// --- Framing error taxonomy -------------------------------------------------

TEST(WireProtocol, BadMagicPoisonsTheStream) {
  std::vector<std::uint8_t> bytes = wire::encode(wire::Evict{1});
  bytes[0] ^= 0xFF;
  wire::FrameDecoder d;
  d.feed(bytes);
  wire::Message out;
  EXPECT_EQ(d.next(out), wire::DecodeStatus::kBadMagic);
  EXPECT_TRUE(d.poisoned());
  // Sticky: feeding a perfectly valid frame afterwards changes nothing.
  d.feed(wire::encode(wire::Evict{2}));
  EXPECT_EQ(d.next(out), wire::DecodeStatus::kBadMagic);
}

TEST(WireProtocol, BadVersionPoisonsTheStream) {
  std::vector<std::uint8_t> bytes = wire::encode(wire::Evict{1});
  bytes[4] = wire::kProtocolVersion + 1;
  wire::Message out;
  EXPECT_EQ(decode_one(bytes, out), wire::DecodeStatus::kBadVersion);
}

TEST(WireProtocol, OversizedLengthPrefixPoisonsWithoutAllocating) {
  std::vector<std::uint8_t> bytes = wire::encode(wire::Evict{1});
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(&bytes[8], &huge, sizeof(huge));
  wire::Message out;
  EXPECT_EQ(decode_one(bytes, out), wire::DecodeStatus::kOversized);
}

TEST(WireProtocol, CorruptPayloadFailsCrc) {
  std::vector<std::uint8_t> bytes = wire::encode(wire::Evict{1});
  bytes[wire::kHeaderBytes] ^= 0x01;  // flip one payload bit
  wire::Message out;
  EXPECT_EQ(decode_one(bytes, out), wire::DecodeStatus::kBadCrc);
}

TEST(WireProtocol, UnknownTypeSkipsFrameAndContinues) {
  std::vector<std::uint8_t> bad = wire::encode(wire::Evict{1});
  bad[5] = 0x7E;  // unknown type; header is not CRC-protected, payload is
  std::vector<std::uint8_t> stream = bad;
  const std::vector<std::uint8_t> good = wire::encode(wire::Evict{2});
  stream.insert(stream.end(), good.begin(), good.end());

  wire::FrameDecoder d;
  d.feed(stream);
  wire::Message out;
  EXPECT_EQ(d.next(out), wire::DecodeStatus::kBadType);
  EXPECT_FALSE(d.poisoned());
  ASSERT_EQ(d.next(out), wire::DecodeStatus::kFrame);
  EXPECT_EQ(std::get<wire::Evict>(out).session, 2u);
}

TEST(WireProtocol, MalformedPayloadSkipsFrameAndContinues) {
  // An EVICT frame whose payload is one byte short of a u64: the CRC is
  // valid (we recompute it), the payload parse fails.
  nsync::signal::ByteWriter w;
  w.pod<std::uint32_t>(wire::kMagic);
  w.pod<std::uint8_t>(wire::kProtocolVersion);
  w.pod<std::uint8_t>(static_cast<std::uint8_t>(wire::MsgType::kEvict));
  w.pod<std::uint16_t>(0);
  const std::vector<std::uint8_t> payload = {1, 2, 3};  // not a u64
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload.data(), payload.size());
  w.pod<std::uint32_t>(nsync::signal::crc32(payload.data(), payload.size()));
  std::vector<std::uint8_t> stream = w.take();
  const std::vector<std::uint8_t> good = wire::encode(wire::Evict{9});
  stream.insert(stream.end(), good.begin(), good.end());

  wire::FrameDecoder d;
  d.feed(stream);
  wire::Message out;
  std::string detail;
  EXPECT_EQ(d.next(out, &detail), wire::DecodeStatus::kMalformed);
  EXPECT_FALSE(detail.empty());
  ASSERT_EQ(d.next(out), wire::DecodeStatus::kFrame);
  EXPECT_EQ(std::get<wire::Evict>(out).session, 9u);
}

TEST(WireProtocol, PolicyUnknownSubVersionIsFrameLocalMalformed) {
  // An ADD_SESSION from a future client whose policy section carries an
  // unknown sub-version: the framing is fine, only the payload cannot be
  // interpreted.  Per the two-tier error discipline that is a frame-local
  // kMalformed — the stream must NOT be poisoned and the next frame
  // decodes normally.
  wire::AddSession msg;
  msg.spec = tiny_spec("fwd-compat");
  msg.spec.policy = std::make_shared<core::WeightedPolicy>();
  std::vector<std::uint8_t> frame = wire::encode(msg);
  // Locate the policy marker in the payload (nothing before it — two
  // short strings and a frame header — can contain four 0xFF bytes) and
  // bump the sub-version that follows it.
  const std::uint8_t marker[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  const auto it =
      std::search(frame.begin() + wire::kHeaderBytes, frame.end(),
                  std::begin(marker), std::end(marker));
  ASSERT_NE(it, frame.end()) << "policy marker not found in the payload";
  *(it + 4) = engine::kFusionPolicyVersion + 1;
  // Recompute the payload CRC so the sub-version is the only problem.
  const std::size_t payload_len = frame.size() - wire::kHeaderBytes - 4;
  const std::uint32_t crc =
      nsync::signal::crc32(frame.data() + wire::kHeaderBytes, payload_len);
  std::memcpy(frame.data() + frame.size() - 4, &crc, sizeof(crc));

  // Byte-at-a-time reassembly: kNeedMore until the very last byte.
  wire::FrameDecoder d;
  wire::Message out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    d.feed(std::span<const std::uint8_t>(&frame[i], 1));
    ASSERT_EQ(d.next(out), wire::DecodeStatus::kNeedMore) << "byte " << i;
  }
  d.feed(std::span<const std::uint8_t>(&frame.back(), 1));
  std::string detail;
  EXPECT_EQ(d.next(out, &detail), wire::DecodeStatus::kMalformed);
  EXPECT_NE(detail.find("sub-version"), std::string::npos) << detail;
  EXPECT_FALSE(d.poisoned());
  d.feed(wire::encode(wire::Evict{3}));
  ASSERT_EQ(d.next(out), wire::DecodeStatus::kFrame);
  EXPECT_EQ(std::get<wire::Evict>(out).session, 3u);
}

TEST(WireProtocol, TrailingGarbageAfterPayloadIsMalformed) {
  // Valid EVICT payload plus trailing bytes, CRC recomputed to match:
  // the loader's finish() must reject it.
  nsync::signal::ByteWriter pw;
  pw.pod<std::uint64_t>(1);
  pw.pod<std::uint8_t>(0xAA);  // trailing garbage
  const std::vector<std::uint8_t> payload(pw.data().begin(), pw.data().end());
  nsync::signal::ByteWriter w;
  w.pod<std::uint32_t>(wire::kMagic);
  w.pod<std::uint8_t>(wire::kProtocolVersion);
  w.pod<std::uint8_t>(static_cast<std::uint8_t>(wire::MsgType::kEvict));
  w.pod<std::uint16_t>(0);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload.data(), payload.size());
  w.pod<std::uint32_t>(nsync::signal::crc32(payload.data(), payload.size()));
  wire::Message out;
  EXPECT_EQ(decode_one(w.take(), out), wire::DecodeStatus::kMalformed);
}

// --- Request dispatch (no transport) ----------------------------------------

TEST(FleetServerDispatch, FullRequestSurface) {
  ShardedFleetOptions opts;
  opts.shards = 2;
  ShardedFleet fleet(opts);

  // HELLO
  {
    const wire::Message r = FleetServer::handle(fleet, wire::Hello{});
    const auto& ok = std::get<wire::HelloOk>(r);
    EXPECT_EQ(ok.shards, 2u);
    EXPECT_EQ(ok.sessions, 0u);
  }
  // HELLO with the wrong version
  {
    wire::Hello h;
    h.version = 99;
    const wire::Message r = FleetServer::handle(fleet, h);
    EXPECT_EQ(std::get<wire::Error>(r).code, wire::ErrorCode::kBadVersion);
  }
  // ADD_SESSION
  {
    wire::AddSession a;
    a.spec = tiny_spec("p0");
    const wire::Message r = FleetServer::handle(fleet, a);
    const auto& ok = std::get<wire::AddSessionOk>(r);
    EXPECT_EQ(ok.session, 0u);
    EXPECT_EQ(ok.shard, 0u);
  }
  // ADD_SESSION with an invalid spec (no channels)
  {
    wire::AddSession a;
    a.spec.name = "empty";
    const wire::Message r = FleetServer::handle(fleet, a);
    EXPECT_EQ(std::get<wire::Error>(r).code, wire::ErrorCode::kMalformed);
  }
  // FEED ok
  {
    wire::Feed f;
    f.session = 0;
    f.channel = "ACC";
    f.frames = Signal(32, 1, 100.0);
    const wire::Message r = FleetServer::handle(fleet, f);
    EXPECT_EQ(std::get<wire::FeedOk>(r).accepted_frames, 32u);
  }
  // FEED typed failures
  {
    wire::Feed f;
    f.session = 9;
    f.channel = "ACC";
    f.frames = Signal(1, 1, 100.0);
    EXPECT_EQ(std::get<wire::Error>(FleetServer::handle(fleet, f)).code,
              wire::ErrorCode::kUnknownSession);
    f.session = 0;
    f.channel = "MAG";
    EXPECT_EQ(std::get<wire::Error>(FleetServer::handle(fleet, f)).code,
              wire::ErrorCode::kUnknownChannel);
    f.channel = "ACC";
    f.frames = Signal(1, 3, 100.0);
    EXPECT_EQ(std::get<wire::Error>(FleetServer::handle(fleet, f)).code,
              wire::ErrorCode::kChannelMismatch);
  }
  // POLL_STATS with session detail
  {
    wire::PollStats p;
    p.include_sessions = 1;
    fleet.flush();
    const wire::Message r = FleetServer::handle(fleet, p);
    const auto& st = std::get<wire::Stats>(r);
    EXPECT_EQ(st.shards, 2u);
    ASSERT_EQ(st.sessions_detail.size(), 1u);
    EXPECT_EQ(st.sessions_detail[0].name, "p0");
    EXPECT_EQ(st.sessions_detail[0].frames_fed, 32u);
  }
  // EVICT + feed-after-evict
  {
    EXPECT_TRUE(std::holds_alternative<wire::EvictOk>(
        FleetServer::handle(fleet, wire::Evict{0})));
    wire::Feed f;
    f.session = 0;
    f.channel = "ACC";
    f.frames = Signal(1, 1, 100.0);
    EXPECT_EQ(std::get<wire::Error>(FleetServer::handle(fleet, f)).code,
              wire::ErrorCode::kEvicted);
    EXPECT_EQ(std::get<wire::Error>(
                  FleetServer::handle(fleet, wire::Evict{5}))
                  .code,
              wire::ErrorCode::kUnknownSession);
  }
  // A reply type sent as a request is misuse, not a crash.
  {
    const wire::Message r = FleetServer::handle(fleet, wire::FeedOk{});
    EXPECT_EQ(std::get<wire::Error>(r).code, wire::ErrorCode::kBadType);
  }
}

// --- End-to-end over a Unix-domain socket -----------------------------------

TEST(FleetServerSocket, EndToEndOverUds) {
  const std::string sock =
      (std::filesystem::temp_directory_path() /
       ("nsync_wire_test_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ShardedFleetOptions fopts;
  fopts.shards = 2;
  ShardedFleet fleet(fopts);
  FleetServerOptions sopts;
  sopts.uds_path = sock;
  FleetServer server(fleet, sopts);
  server.start();

  {
    WireClient client = WireClient::connect_uds(sock);
    const wire::HelloOk hello = client.hello("test");
    EXPECT_EQ(hello.shards, 2u);

    const wire::AddSessionOk added = client.add_session(tiny_spec("net-0"));
    EXPECT_EQ(added.session, 0u);

    Signal frames(128, 1, 100.0);
    for (std::size_t n = 0; n < 128; ++n) {
      frames(n, 0) = std::sin(0.1 * static_cast<double>(n));
    }
    const wire::FeedOk fed = client.feed(0, "ACC", frames);
    EXPECT_EQ(fed.accepted_frames, 128u);

    // Drain, then confirm the daemon-side engine saw every frame.
    fleet.flush();
    const wire::Stats stats = client.poll_stats(true);
    ASSERT_EQ(stats.sessions_detail.size(), 1u);
    EXPECT_EQ(stats.sessions_detail[0].frames_fed, 128u);
    EXPECT_EQ(stats.queued_frames, 0u);

    EXPECT_THROW(
        { (void)client.feed(3, "ACC", frames); }, WireError);
    client.evict(0);
    try {
      (void)client.feed(0, "ACC", frames);
      FAIL() << "feeding an evicted session must fail";
    } catch (const WireError& e) {
      EXPECT_EQ(e.code(), wire::ErrorCode::kEvicted);
    }
  }

  // A second client reuses the same socket after the first disconnected.
  {
    WireClient client = WireClient::connect_uds(sock);
    EXPECT_EQ(client.hello("again").sessions, 1u);
  }
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(sock));
}

TEST(FleetServerSocket, PoisonedStreamGetsErrorReplyThenClose) {
  const std::string sock =
      (std::filesystem::temp_directory_path() /
       ("nsync_wire_poison_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ShardedFleet fleet;
  FleetServerOptions sopts;
  sopts.uds_path = sock;
  FleetServer server(fleet, sopts);
  server.start();

  // Hand-rolled socket so we can put corrupt bytes on the wire.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, sock.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  std::vector<std::uint8_t> bad = wire::encode(wire::Evict{1});
  bad[wire::kHeaderBytes] ^= 0x01;  // payload corruption -> CRC mismatch
  ASSERT_EQ(::write(fd, bad.data(), bad.size()),
            static_cast<ssize_t>(bad.size()));

  // The server must reply with exactly one ERROR frame, then close.
  wire::FrameDecoder d;
  std::vector<std::uint8_t> buf(4096);
  bool saw_error = false;
  bool closed = false;
  for (int i = 0; i < 100 && !closed; ++i) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n == 0) {
      closed = true;
      break;
    }
    ASSERT_GT(n, 0);
    d.feed(std::span<const std::uint8_t>(buf.data(),
                                         static_cast<std::size_t>(n)));
    wire::Message out;
    while (d.next(out) == wire::DecodeStatus::kFrame) {
      const auto& err = std::get<wire::Error>(out);
      EXPECT_EQ(err.code, wire::ErrorCode::kBadFrame);
      saw_error = true;
    }
  }
  EXPECT_TRUE(saw_error);
  EXPECT_TRUE(closed) << "server must close a poisoned connection";
  ::close(fd);

  // The listener itself is unharmed: a fresh well-formed client still works.
  WireClient client = WireClient::connect_uds(sock);
  EXPECT_EQ(client.hello("post-poison").sessions, 0u);
  server.stop();
}
