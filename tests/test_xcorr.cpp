// Tests for sliding normalized correlation: the FFT-accelerated path must
// agree with the naive reference exactly (this is the TDE ablation's
// correctness half).
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "dsp/xcorr.hpp"
#include "signal/rng.hpp"

namespace nsync::dsp {
namespace {

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  nsync::signal::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

TEST(SlidingPearson, PerfectMatchScoresOne) {
  const auto y = random_series(32, 1);
  std::vector<double> x(100);
  nsync::signal::Rng rng(2);
  for (auto& v : x) v = rng.normal();
  const std::size_t at = 40;
  for (std::size_t i = 0; i < y.size(); ++i) x[at + i] = y[i];
  const auto s = sliding_pearson_naive(x, y);
  EXPECT_NEAR(s[at], 1.0, 1e-12);
  for (std::size_t n = 0; n < s.size(); ++n) {
    EXPECT_LE(std::abs(s[n]), 1.0 + 1e-9);
  }
}

TEST(SlidingPearson, GainInvariance) {
  auto y = random_series(16, 3);
  std::vector<double> x = random_series(64, 4);
  for (std::size_t i = 0; i < y.size(); ++i) x[20 + i] = 7.0 * y[i] + 2.0;
  const auto s = sliding_pearson_naive(x, y);
  EXPECT_NEAR(s[20], 1.0, 1e-12);  // correlation ignores gain and offset
}

TEST(SlidingPearson, ConstantTemplateScoresZero) {
  const std::vector<double> y(8, 5.0);
  const auto x = random_series(32, 6);
  const auto naive = sliding_pearson_naive(x, y);
  const auto fft = sliding_pearson_fft(x, y);
  for (std::size_t n = 0; n < naive.size(); ++n) {
    EXPECT_DOUBLE_EQ(naive[n], 0.0);
    EXPECT_DOUBLE_EQ(fft[n], 0.0);
  }
}

TEST(SlidingPearson, FlatWindowInSignalScoresZero) {
  std::vector<double> x(40, 1.0);  // constant signal regions
  for (std::size_t i = 30; i < 40; ++i) x[i] = static_cast<double>(i);
  const auto y = random_series(8, 7);
  const auto fft = sliding_pearson_fft(x, y);
  // Windows fully inside the flat region have zero variance -> score 0.
  EXPECT_DOUBLE_EQ(fft[0], 0.0);
  EXPECT_DOUBLE_EQ(fft[10], 0.0);
}

TEST(SlidingPearson, SizeChecks) {
  const std::vector<double> x(4, 0.0);
  const std::vector<double> y1(1, 0.0);
  const std::vector<double> y5(5, 0.0);
  EXPECT_THROW(sliding_pearson_naive(x, y1), std::invalid_argument);
  EXPECT_THROW(sliding_pearson_naive(x, y5), std::invalid_argument);
  EXPECT_THROW(sliding_pearson_fft(x, y5), std::invalid_argument);
}

class XcorrEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(XcorrEquivalence, FftMatchesNaive) {
  const auto [nx, ny, seed] = GetParam();
  const auto x = random_series(nx, seed);
  const auto y = random_series(ny, seed + 1000);
  const auto naive = sliding_pearson_naive(x, y);
  const auto fft = sliding_pearson_fft(x, y);
  ASSERT_EQ(naive.size(), fft.size());
  for (std::size_t n = 0; n < naive.size(); ++n) {
    // Near-degenerate windows (e.g. two nearly equal samples with ny = 2)
    // amplify rounding differences between the two formulations.
    EXPECT_NEAR(naive[n], fft[n], 1e-6) << "lag " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, XcorrEquivalence,
    ::testing::Combine(::testing::Values(64, 127, 256, 1000),
                       ::testing::Values(2, 16, 63),
                       ::testing::Values(101, 202)));

TEST(XcorrEquivalence, RfftPathMatchesComplexPath) {
  // Production real-FFT path vs the pre-rfft full-complex implementation.
  for (const auto& [nx, ny] : {std::pair<std::size_t, std::size_t>{64, 16},
                               {127, 32},
                               {1000, 63}}) {
    const auto x = random_series(nx, 301 + nx);
    const auto y = random_series(ny, 302 + nx);
    const auto real_path = sliding_pearson_fft(x, y);
    const auto complex_path = sliding_pearson_fft_complex(x, y);
    ASSERT_EQ(real_path.size(), complex_path.size());
    for (std::size_t n = 0; n < real_path.size(); ++n) {
      EXPECT_NEAR(real_path[n], complex_path[n], 1e-7)
          << "nx " << nx << " lag " << n;
    }
  }
}

TEST(XcorrEquivalence, WorkspaceVariantIsBitwiseEqualToWrapper) {
  // sliding_pearson_fft is a thin wrapper over the _into workspace
  // variant; same arithmetic order, so the outputs must be identical to
  // the bit even when the workspace is reused across shapes.
  SlidingPearsonWorkspace ws;
  for (const auto& [nx, ny] : {std::pair<std::size_t, std::size_t>{64, 16},
                               {250, 7},
                               {96, 40}}) {
    const auto x = random_series(nx, 401 + nx);
    const auto y = random_series(ny, 402 + nx);
    const auto wrapped = sliding_pearson_fft(x, y);
    std::vector<double> out(nx - ny + 1);
    sliding_pearson_fft_into(x, y, out, ws);
    for (std::size_t n = 0; n < out.size(); ++n) {
      EXPECT_EQ(wrapped[n], out[n]) << "nx " << nx << " lag " << n;
    }
  }
}

TEST(XcorrEquivalence, LargeOffsetsAndScales) {
  // The prefix-sum denominator must stay accurate when the data has a huge
  // DC offset (catastrophic cancellation risk).
  nsync::signal::Rng rng(55);
  std::vector<double> x(200), y(20);
  for (auto& v : x) v = 1.0e6 + rng.normal();
  for (auto& v : y) v = -3.0e5 + rng.normal();
  const auto naive = sliding_pearson_naive(x, y);
  const auto fft = sliding_pearson_fft(x, y);
  for (std::size_t n = 0; n < naive.size(); ++n) {
    EXPECT_NEAR(naive[n], fft[n], 1e-6) << "lag " << n;
  }
}

}  // namespace
}  // namespace nsync::dsp
