// Tests for the slicer's 2-D geometry kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "gcode/geometry.hpp"

namespace nsync::gcode {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Polygon, UnitSquareBasics) {
  const Polygon sq({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_NEAR(sq.area(), 1.0, 1e-12);
  EXPECT_NEAR(sq.signed_area(), 1.0, 1e-12);  // CCW
  EXPECT_NEAR(sq.perimeter(), 4.0, 1e-12);
  const Point2 c = sq.centroid();
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 0.5, 1e-12);
}

TEST(Polygon, ClockwiseWindingHasNegativeSignedArea) {
  const Polygon sq({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_LT(sq.signed_area(), 0.0);
  EXPECT_NEAR(sq.area(), 1.0, 1e-12);
}

TEST(Polygon, ContainsPoint) {
  const Polygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_TRUE(sq.contains({1.0, 1.0}));
  EXPECT_FALSE(sq.contains({3.0, 1.0}));
  EXPECT_FALSE(sq.contains({-0.1, 1.0}));
}

TEST(Polygon, ScaledAboutCenter) {
  const Polygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const Polygon half = sq.scaled(0.5, {1.0, 1.0});
  EXPECT_NEAR(half.area(), 1.0, 1e-12);
  const auto [lo, hi] = half.bounding_box();
  EXPECT_NEAR(lo.x, 0.5, 1e-12);
  EXPECT_NEAR(hi.x, 1.5, 1e-12);
}

TEST(Polygon, TranslatedMovesBoundingBox) {
  const Polygon sq({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  const auto [lo, hi] = sq.translated(10.0, -5.0).bounding_box();
  EXPECT_NEAR(lo.x, 10.0, 1e-12);
  EXPECT_NEAR(hi.y, -4.0, 1e-12);
}

TEST(Polygon, RotationPreservesAreaAndPerimeter) {
  const Polygon gear = gear_outline(8, 5.0, 7.0);
  const Polygon rot = gear.rotated(0.7, {1.0, 2.0});
  EXPECT_NEAR(rot.area(), gear.area(), 1e-9);
  EXPECT_NEAR(rot.perimeter(), gear.perimeter(), 1e-9);
}

TEST(Polygon, InsetShrinksArea) {
  const Polygon circle = circle_outline(10.0, 64);
  const Polygon in = circle.inset(1.0);
  EXPECT_LT(in.area(), circle.area());
  // A circle inset by 1 should be close to a circle of radius 9.
  EXPECT_NEAR(in.area(), kPi * 81.0, kPi * 81.0 * 0.02);
  // Fully consuming inset yields an empty polygon.
  EXPECT_TRUE(circle.inset(11.0).empty());
}

TEST(Scanline, CrossingsOfSquare) {
  const Polygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const auto xs = scanline_intersections(sq, 1.0);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_NEAR(xs[0], 0.0, 1e-12);
  EXPECT_NEAR(xs[1], 2.0, 1e-12);
  EXPECT_TRUE(scanline_intersections(sq, 3.0).empty());
}

TEST(Scanline, EvenCrossingCount) {
  const Polygon gear = gear_outline(10, 6.0, 8.0);
  for (double y = -7.5; y < 7.5; y += 0.37) {
    const auto xs = scanline_intersections(gear, y);
    EXPECT_EQ(xs.size() % 2, 0u) << "y=" << y;
  }
}

TEST(FillLines, SegmentsLieInsidePolygon) {
  const Polygon circle = circle_outline(5.0, 48);
  const auto segs = fill_lines(circle, 0.8, kPi / 4.0);
  EXPECT_GT(segs.size(), 4u);
  for (const auto& s : segs) {
    const Point2 mid{(s.a.x + s.b.x) / 2.0, (s.a.y + s.b.y) / 2.0};
    EXPECT_TRUE(circle.contains(mid));
  }
}

TEST(FillLines, SpacingControlsCount) {
  const Polygon sq({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const auto coarse = fill_lines(sq, 2.0, 0.0);
  const auto fine = fill_lines(sq, 1.0, 0.0);
  EXPECT_NEAR(static_cast<double>(fine.size()),
              2.0 * static_cast<double>(coarse.size()), 1.5);
  EXPECT_THROW(fill_lines(sq, 0.0, 0.0), std::invalid_argument);
}

TEST(FillLines, HorizontalLinesHaveExpectedLength) {
  const Polygon sq({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const auto segs = fill_lines(sq, 1.0, 0.0);
  for (const auto& s : segs) {
    EXPECT_NEAR(std::abs(s.b.x - s.a.x), 10.0, 1e-9);
    EXPECT_NEAR(s.a.y, s.b.y, 1e-9);
  }
}

TEST(GearOutline, VertexRadiiBetweenRootAndTip) {
  const Polygon gear = gear_outline(14, 7.38, 9.0);
  EXPECT_GE(gear.size(), 14u * 4u);
  for (const auto& v : gear.vertices()) {
    const double r = std::hypot(v.x, v.y);
    EXPECT_GE(r, 7.38 - 1e-9);
    EXPECT_LE(r, 9.0 + 1e-9);
  }
  // Area between the root circle and tip circle.
  EXPECT_GT(gear.area(), kPi * 7.38 * 7.38 * 0.98);
  EXPECT_LT(gear.area(), kPi * 9.0 * 9.0);
}

TEST(GearOutline, RejectsBadParameters) {
  EXPECT_THROW(gear_outline(2, 5.0, 7.0), std::invalid_argument);
  EXPECT_THROW(gear_outline(8, 7.0, 5.0), std::invalid_argument);
  EXPECT_THROW(gear_outline(8, 5.0, 7.0, 0.95), std::invalid_argument);
}

TEST(CircleOutline, AreaApproachesPiR2) {
  const Polygon c = circle_outline(3.0, 128);
  EXPECT_NEAR(c.area(), kPi * 9.0, kPi * 9.0 * 0.001);
  EXPECT_THROW(circle_outline(0.0, 16), std::invalid_argument);
  EXPECT_THROW(circle_outline(1.0, 2), std::invalid_argument);
}

TEST(RectOutline, DimensionsAndCentering) {
  const Polygon r = rect_outline(4.0, 2.0);
  const auto [lo, hi] = r.bounding_box();
  EXPECT_NEAR(lo.x, -2.0, 1e-12);
  EXPECT_NEAR(hi.y, 1.0, 1e-12);
  EXPECT_NEAR(r.area(), 8.0, 1e-12);
  EXPECT_THROW(rect_outline(-1.0, 2.0), std::invalid_argument);
}

class FillAngleProperty : public ::testing::TestWithParam<double> {};

TEST_P(FillAngleProperty, TotalFillLengthIsAngleInvariant) {
  // The total deposited length should be roughly area / spacing no matter
  // the fill direction.
  const double angle = GetParam();
  const Polygon circle = circle_outline(8.0, 96);
  const double spacing = 0.5;
  const auto segs = fill_lines(circle, spacing, angle);
  double total = 0.0;
  for (const auto& s : segs) total += std::hypot(s.b.x - s.a.x, s.b.y - s.a.y);
  const double expected = circle.area() / spacing;
  EXPECT_NEAR(total, expected, expected * 0.05) << "angle=" << angle;
}

INSTANTIATE_TEST_SUITE_P(Angles, FillAngleProperty,
                         ::testing::Values(0.0, kPi / 6, kPi / 4, kPi / 2,
                                           2.0));

}  // namespace
}  // namespace nsync::gcode
