// Tests for the side-channel sensor models and the DAQ stage.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"
#include "gcode/parser.hpp"
#include "printer/simulator.hpp"
#include "sensors/daq.hpp"
#include "sensors/rig.hpp"
#include "signal/stats.hpp"

namespace nsync::sensors {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;

printer::MachineConfig quiet_machine() {
  auto m = printer::ultimaker3();
  m.time_noise = printer::TimeNoiseConfig::none();
  return m;
}

RigConfig quiet_rig() {
  RigConfig rig;
  rig.apply_daq = false;
  rig.acc_rate = 400.0;
  rig.tmp_rate = 400.0;
  rig.mag_rate = 100.0;
  rig.aud_rate = 4000.0;
  rig.ept_rate = 4000.0;
  rig.pwr_rate = 1200.0;
  return rig;
}

printer::MotionTrace busy_trace() {
  const auto p = gcode::parse_program(
      "M106 S255\nG1 X40 E1 F2700\nG1 X0 E2 F2700\nG1 X40 E3 F2700\n"
      "G1 X0 E4 F2700\n");
  printer::ExecutorConfig cfg;
  cfg.sample_rate = 1500.0;
  return printer::simulate_print_noiseless(p, quiet_machine(), cfg);
}

printer::MotionTrace idle_trace() {
  const auto p = gcode::parse_program("G4 P3000\n");
  printer::ExecutorConfig cfg;
  cfg.sample_rate = 1500.0;
  return printer::simulate_print_noiseless(p, quiet_machine(), cfg);
}

TEST(SideChannelMeta, TableIIValues) {
  EXPECT_EQ(all_side_channels().size(), 6u);
  EXPECT_EQ(side_channel_name(SideChannel::kAcc), "ACC");
  EXPECT_EQ(side_channel_components(SideChannel::kAcc), 6u);
  EXPECT_DOUBLE_EQ(side_channel_paper_rate(SideChannel::kAud), 48000.0);
  EXPECT_EQ(side_channel_bits(SideChannel::kEpt), 24);
  EXPECT_EQ(parse_side_channel("aud"), SideChannel::kAud);
  EXPECT_THROW(parse_side_channel("XYZ"), std::invalid_argument);
}

TEST(SensorRig, RatesFollowConfig) {
  const SensorRig rig(quiet_machine(), quiet_rig());
  EXPECT_DOUBLE_EQ(rig.rate(SideChannel::kAcc), 400.0);
  EXPECT_DOUBLE_EQ(rig.rate(SideChannel::kAud), 4000.0);
  RigConfig scaled;
  scaled.rate_scale = 0.5;
  const SensorRig rig2(quiet_machine(), scaled);
  EXPECT_DOUBLE_EQ(rig2.rate(SideChannel::kMag), 50.0);
}

TEST(SensorRig, OutputShapesMatchTableII) {
  const SensorRig rig(quiet_machine(), quiet_rig());
  const auto trace = busy_trace();
  Rng rng(1);
  for (SideChannel ch : all_side_channels()) {
    Rng child = rng.fork();
    const Signal s = rig.render(ch, trace, child);
    EXPECT_EQ(s.channels(), side_channel_components(ch))
        << side_channel_name(ch);
    EXPECT_NEAR(s.duration(), trace.duration(), 0.01)
        << side_channel_name(ch);
  }
}

TEST(SensorRig, AccRespondsToMotion) {
  const SensorRig rig(quiet_machine(), quiet_rig());
  Rng r1(2), r2(2);
  const Signal busy = rig.render(SideChannel::kAcc, busy_trace(), r1);
  const Signal idle = rig.render(SideChannel::kAcc, idle_trace(), r2);
  const auto busy_sd = nsync::signal::channel_stddevs(busy);
  const auto idle_sd = nsync::signal::channel_stddevs(idle);
  EXPECT_GT(busy_sd[0], 10.0 * idle_sd[0]);  // X accel dominates noise
}

TEST(SensorRig, AudSilentWhenIdle) {
  RigConfig rig_cfg = quiet_rig();
  const SensorRig rig(quiet_machine(), rig_cfg);
  Rng r1(3), r2(3);
  const Signal busy = rig.render(SideChannel::kAud, busy_trace(), r1);
  const Signal idle = rig.render(SideChannel::kAud, idle_trace(), r2);
  EXPECT_GT(nsync::signal::rms(busy.channel(0)),
            5.0 * nsync::signal::rms(idle.channel(0)));
}

TEST(SensorRig, EptDominatedBy60Hz) {
  const SensorRig rig(quiet_machine(), quiet_rig());
  Rng rng(4);
  const Signal ept = rig.render(SideChannel::kEpt, busy_trace(), rng);
  const auto ch = ept.channel(0);
  // Use a whole number of 60 Hz cycles for a clean bin.
  const std::size_t n = 2000;  // 0.5 s at 4 kHz -> bin 30 = 60 Hz
  ASSERT_GE(ch.size(), n);
  const auto mags = nsync::dsp::rfft_magnitude(
      std::span<const double>(ch).subspan(0, n));
  std::size_t best = 1;
  for (std::size_t k = 1; k < mags.size(); ++k) {
    if (mags[k] > mags[best]) best = k;
  }
  EXPECT_NEAR(static_cast<double>(best), 30.0, 1.0);
}

TEST(SensorRig, MagReflectsMotorActivity) {
  const SensorRig rig(quiet_machine(), quiet_rig());
  Rng r1(5), r2(5);
  const Signal busy = rig.render(SideChannel::kMag, busy_trace(), r1);
  const Signal idle = rig.render(SideChannel::kMag, idle_trace(), r2);
  // Means differ because run current exceeds hold current while moving.
  const auto busy_mu = nsync::signal::channel_means(busy);
  const auto idle_mu = nsync::signal::channel_means(idle);
  EXPECT_GT(busy_mu[0], idle_mu[0] + 0.5);
}

TEST(SensorRig, TmpIsWeaklyCoupled) {
  const SensorRig rig(quiet_machine(), quiet_rig());
  Rng r1(6), r2(6);
  const Signal busy = rig.render(SideChannel::kTmp, busy_trace(), r1);
  const Signal idle = rig.render(SideChannel::kTmp, idle_trace(), r2);
  // Temperature barely distinguishes motion from idle (weak correlation
  // with printer state, Section VIII-B).
  EXPECT_NEAR(nsync::signal::mean(busy.channel(0)),
              nsync::signal::mean(idle.channel(0)), 1.0);
}

TEST(SensorRig, PwrIncludesHeaterPower) {
  const auto p = gcode::parse_program("M140 S60\nM104 S200\nG4 P2000\n");
  printer::ExecutorConfig cfg;
  cfg.sample_rate = 1500.0;
  const auto heating =
      printer::simulate_print_noiseless(p, quiet_machine(), cfg);
  const SensorRig rig(quiet_machine(), quiet_rig());
  Rng r1(7), r2(7);
  const Signal hot = rig.render(SideChannel::kPwr, heating, r1);
  const Signal cold = rig.render(SideChannel::kPwr, idle_trace(), r2);
  EXPECT_GT(nsync::signal::mean(hot.channel(0)),
            nsync::signal::mean(cold.channel(0)) + 50.0);
}

TEST(SensorRig, DeterministicGivenSameRng) {
  const SensorRig rig(quiet_machine(), quiet_rig());
  const auto trace = busy_trace();
  Rng r1(8), r2(8);
  const Signal a = rig.render(SideChannel::kAcc, trace, r1);
  const Signal b = rig.render(SideChannel::kAcc, trace, r2);
  ASSERT_EQ(a.frames(), b.frames());
  for (std::size_t i = 0; i < a.frames(); ++i) {
    EXPECT_DOUBLE_EQ(a(i, 0), b(i, 0));
  }
}

TEST(Daq, QuantizeSnapsToGrid) {
  Signal s = Signal::from_samples({0.1234, -0.777, 0.5}, 100.0);
  const Signal q = quantize(s, 8, 1.0);  // step = 1/128
  const double step = 1.0 / 128.0;
  for (std::size_t i = 0; i < q.frames(); ++i) {
    const double ratio = q(i, 0) / step;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
    EXPECT_NEAR(q(i, 0), s(i, 0), step / 2.0 + 1e-12);
  }
  EXPECT_THROW(quantize(s, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(quantize(s, 8, 0.0), std::invalid_argument);
}

TEST(Daq, FrameDropsShortenSignal) {
  Signal s(10000, 1, 1000.0);
  DaqConfig cfg;
  cfg.gain_jitter_std = 0.0;
  cfg.frame_drop_probability = 0.2;
  cfg.frame_samples = 50;
  Rng rng(9);
  const Signal out = apply_daq(s, cfg, rng);
  EXPECT_LT(out.frames(), s.frames());
  // Expect roughly 20% dropped.
  EXPECT_NEAR(static_cast<double>(out.frames()),
              static_cast<double>(s.frames()) * 0.8,
              static_cast<double>(s.frames()) * 0.1);
  // Whole frames disappear: length is a multiple of frame size.
  EXPECT_EQ(out.frames() % 50, 0u);
}

TEST(Daq, GainJitterScalesWholeSignal) {
  Signal s = Signal::from_samples(std::vector<double>(100, 2.0), 100.0);
  DaqConfig cfg;
  cfg.gain_jitter_std = 0.1;
  cfg.frame_drop_probability = 0.0;
  Rng rng(10);
  const Signal out = apply_daq(s, cfg, rng);
  const double gain = out(0, 0) / 2.0;
  EXPECT_NE(gain, 1.0);
  for (std::size_t i = 1; i < out.frames(); ++i) {
    EXPECT_NEAR(out(i, 0) / 2.0, gain, 1e-12);  // one gain for the run
  }
}

TEST(Daq, NoNoiseConfigIsIdentity) {
  Signal s = Signal::from_samples({1.0, 2.0, 3.0}, 10.0);
  DaqConfig cfg;
  cfg.gain_jitter_std = 0.0;
  cfg.frame_drop_probability = 0.0;
  cfg.full_scale = 0.0;
  Rng rng(11);
  const Signal out = apply_daq(s, cfg, rng);
  ASSERT_EQ(out.frames(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(out(i, 0), s(i, 0));
  }
}

}  // namespace
}  // namespace nsync::sensors
