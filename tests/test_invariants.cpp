// Cross-cutting invariant suites: metric axioms, DWM shift-recovery over a
// (shift x noise) grid, fingerprint shift tolerance, STFT energy scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bayens.hpp"
#include "core/dwm.hpp"
#include "core/distance.hpp"
#include "dsp/stft.hpp"
#include "signal/rng.hpp"

namespace nsync {
namespace {

using signal::Rng;
using signal::Signal;

Signal band_noise(std::size_t frames, std::size_t channels,
                  std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, channels, 100.0);
  std::vector<double> lp(channels, 0.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      lp[c] += 0.35 * (rng.normal() - lp[c]);
      s(n, c) = lp[c];
    }
  }
  return s;
}

// ------------------------------------------------------- metric axioms --

class MetricAxioms : public ::testing::TestWithParam<core::DistanceMetric> {};

TEST_P(MetricAxioms, SymmetryIdentityNonnegativity) {
  const auto metric = GetParam();
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> u(24), v(24);
    for (auto& x : u) x = rng.normal(0.0, 2.0);
    for (auto& x : v) x = rng.normal(1.0, 3.0);
    const double duv = core::vector_distance(u, v, metric);
    const double dvu = core::vector_distance(v, u, metric);
    EXPECT_NEAR(duv, dvu, 1e-9) << core::distance_metric_name(metric);
    EXPECT_GE(duv, -1e-9);
    EXPECT_NEAR(core::vector_distance(u, u, metric), 0.0, 1e-9);
  }
}

TEST_P(MetricAxioms, TriangleInequalityForTrueMetrics) {
  const auto metric = GetParam();
  if (metric != core::DistanceMetric::kEuclidean &&
      metric != core::DistanceMetric::kManhattan &&
      metric != core::DistanceMetric::kMae) {
    GTEST_SKIP() << "correlation/cosine distances are not metrics";
  }
  Rng rng(18);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(16), b(16), c(16);
    for (auto& x : a) x = rng.normal();
    for (auto& x : b) x = rng.normal();
    for (auto& x : c) x = rng.normal();
    const double ab = core::vector_distance(a, b, metric);
    const double bc = core::vector_distance(b, c, metric);
    const double ac = core::vector_distance(a, c, metric);
    EXPECT_LE(ac, ab + bc + 1e-9) << core::distance_metric_name(metric);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, MetricAxioms,
    ::testing::Values(core::DistanceMetric::kCorrelation,
                      core::DistanceMetric::kCosine,
                      core::DistanceMetric::kEuclidean,
                      core::DistanceMetric::kManhattan,
                      core::DistanceMetric::kMae),
    [](const ::testing::TestParamInfo<core::DistanceMetric>& info) {
      return core::distance_metric_name(info.param);
    });

// ------------------------------------------- DWM shift x noise recovery --

class DwmShiftNoiseGrid
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DwmShiftNoiseGrid, RecoversShiftUnderMeasurementNoise) {
  const auto [shift, noise_sigma] = GetParam();
  const Signal b = band_noise(1200, 2, 71);
  Rng rng(72);
  Signal a(1000, 2, 100.0);
  for (std::size_t n = 0; n < a.frames(); ++n) {
    const auto src = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(n) + shift, 0,
        static_cast<std::ptrdiff_t>(b.frames() - 1)));
    for (std::size_t c = 0; c < 2; ++c) {
      a(n, c) = b(src, c) + rng.normal(0.0, noise_sigma);
    }
  }
  core::DwmParams p;
  p.n_win = 64;
  p.n_hop = 32;
  p.n_ext = 24;
  p.n_sigma = 12.0;
  p.eta = 0.2;
  const auto r = core::DwmSynchronizer::align(a, b, p);
  ASSERT_GT(r.h_disp.size(), 10u);
  // After settling, the last few windows must sit on the true shift.
  for (std::size_t i = r.h_disp.size() - 3; i < r.h_disp.size(); ++i) {
    EXPECT_NEAR(r.h_disp[i], static_cast<double>(shift), 2.0)
        << "shift=" << shift << " noise=" << noise_sigma << " window " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DwmShiftNoiseGrid,
    ::testing::Combine(::testing::Values(-20, -7, 0, 7, 20),
                       ::testing::Values(0.0, 0.05, 0.2)));

// ---------------------------------------- fingerprint shift tolerance --

TEST(BayensFingerprint, MatchSurvivesSubChunkShiftOnly) {
  // The design point of the time-frequency fingerprint: a shift well below
  // one chunk keeps the self-match score high; a shift of several chunks
  // degrades it.
  Rng rng(81);
  const double fs = 1000.0;
  Signal s(8000, 2, fs);
  double phase = 0.0;
  for (std::size_t n = 0; n < s.frames(); ++n) {
    // Frequency ramps so each chunk has distinct content.
    const double f = 40.0 + 200.0 * static_cast<double>(n) /
                                static_cast<double>(s.frames());
    phase += 2.0 * M_PI * f / fs;
    s(n, 0) = std::sin(phase) + rng.normal(0.0, 0.05);
    s(n, 1) = 0.7 * std::sin(phase) + rng.normal(0.0, 0.05);
  }
  baselines::BayensConfig cfg;
  cfg.window_seconds = 2.0;
  baselines::BayensIds ids(s, cfg);

  auto shifted = [&](std::size_t by) {
    Signal out(s.frames() - by, 2, fs);
    for (std::size_t n = 0; n < out.frames(); ++n) {
      out(n, 0) = s(n + by, 0);
      out(n, 1) = s(n + by, 1);
    }
    return out;
  };
  const auto tiny = ids.match_windows(shifted(20));    // 20 ms << 200 ms chunk
  const auto large = ids.match_windows(shifted(600));  // 3 chunks
  ASSERT_FALSE(tiny.empty());
  ASSERT_FALSE(large.empty());
  EXPECT_EQ(tiny[0].matched_index, 0u);
  EXPECT_GT(tiny[0].score, large[0].score);
}

// ------------------------------------------------- STFT energy scaling --

TEST(StftInvariant, MagnitudeScalesLinearlyWithAmplitude) {
  const Signal s = band_noise(2048, 1, 91);
  Signal loud = s;
  for (std::size_t n = 0; n < loud.frames(); ++n) loud(n, 0) *= 3.0;
  dsp::StftConfig cfg;
  cfg.delta_f = 10.0;
  cfg.delta_t = 0.05;
  const Signal a = dsp::spectrogram(s, cfg);
  const Signal b = dsp::spectrogram(loud, cfg);
  ASSERT_EQ(a.frames(), b.frames());
  for (std::size_t n = 0; n < a.frames(); n += 3) {
    for (std::size_t c = 0; c < a.channels(); c += 7) {
      EXPECT_NEAR(b(n, c), 3.0 * a(n, c), 1e-6 * (1.0 + a(n, c)));
    }
  }
}

TEST(StftInvariant, ColumnCountMatchesHopArithmetic) {
  for (std::size_t frames : {500u, 777u, 2048u}) {
    const Signal s = band_noise(frames, 1, 92);
    dsp::StftConfig cfg;
    cfg.delta_f = 10.0;  // 10-sample window at 100 Hz
    cfg.delta_t = 0.05;  // 5-sample hop
    const Signal spec = dsp::spectrogram(s, cfg);
    EXPECT_EQ(spec.frames(), (frames - 10) / 5 + 1);
  }
}

}  // namespace
}  // namespace nsync
