// Regenerates Table V: Moore's IDS (point-by-point, no synchronization)
// and Gao's IDS (layer-coarse synchronization), per printer x side channel
// x transform.
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "TABLE V: Results for Moore's and Gao's IDSs (r = 0)\n"
            << "(format: FPR/TPR; paper shape: without fine DSYNC the OCC\n"
            << " thresholds inflate so far that TPR collapses — most cells\n"
            << " sit near x/0.0x; accuracy 0.5-0.6)\n\n";

  AsciiTable table({"P", "Side Ch.", "Moore Raw", "Moore Spec.", "Gao Raw",
                    "Gao Spec."});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, table_channels(),
               opt.verbose ? [](std::size_t d, std::size_t t) {
                 std::cerr << "\rsimulating " << d << "/" << t << std::flush;
               } : Dataset::ProgressFn{});
    if (opt.verbose) std::cerr << "\n";
    for (sensors::SideChannel ch : ds.channels()) {
      const ChannelData raw = ds.channel_data(ch, Transform::kRaw);
      const ChannelData spec = ds.channel_data(ch, Transform::kSpectrogram);
      table.add_row({printer_name(printer), sensors::side_channel_name(ch),
                     run_moore(raw).fpr_tpr(), run_moore(spec).fpr_tpr(),
                     run_gao(raw).fpr_tpr(), run_gao(spec).fpr_tpr()});
      if (opt.verbose) {
        std::cerr << printer_name(printer) << " "
                  << sensors::side_channel_name(ch) << " done\n";
      }
    }
  }
  table.print(std::cout);
  return 0;
}
