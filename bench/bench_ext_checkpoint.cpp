// Extension experiment (beyond the paper): checkpoint/restore cost of the
// crash-safe MonitorEngine persistence layer vs fleet size.
//
// A mid-print fleet is built (each session two channels, streamed halfway
// through its print so the synchronizer rings, min-filter deques and
// health machines hold realistic state), then three operations are timed:
//
//   serialize — snapshot the whole fleet into a checkpoint payload
//   write     — serialize + CRC framing + atomic tmp/fsync/rename replace
//   restore   — rebuild the entire fleet from the file
//
// The interesting quantity is overhead per poll round: with the default
// policy (checkpoint every poll) the write cost is paid on every round, so
// it must stay small against the window-processing work itself.
//
// Flags: --sessions a,b,c  session counts to sweep (default 1,8,32)
//        --frames n        observed frames per channel (default 6144)
//        --reps n          timing repetitions, min is reported (default 5)
//        --dir path        where the checkpoint file is written (default .)
//        --json path       machine-readable results (BENCH_checkpoint.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/nsync.hpp"
#include "engine/monitor_engine.hpp"
#include "eval/table.hpp"
#include "runtime/thread_pool.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using nsync::signal::Rng;
using nsync::signal::Signal;

namespace {

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  constexpr double kPi = 3.14159265358979323846;
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    const double t = static_cast<double>(n) / 100.0;
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0 + 0.7 * std::sin(2.0 * kPi * (0.5 + 0.010 * t) * t);
    s(n, 1) = lp1 + 0.7 * std::cos(2.0 * kPi * (0.4 + 0.008 * t) * t);
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

core::NsyncConfig dwm_config() {
  core::NsyncConfig cfg;
  cfg.sync = core::SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;
  cfg.r = 1.0;
  return cfg;
}

std::vector<std::size_t> parse_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    out.push_back(static_cast<std::size_t>(std::stoul(tok)));
  }
  return out;
}

template <typename F>
double time_min_ms(std::size_t reps, F&& op) {
  double best = 1e300;
  for (std::size_t i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    op();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct Result {
  std::size_t sessions = 0;
  std::size_t windows = 0;
  std::size_t bytes = 0;
  double serialize_ms = 0.0;
  double write_ms = 0.0;
  double restore_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> session_counts = {1, 8, 32};
  std::size_t frames_per_channel = 6144;
  std::size_t reps = 5;
  std::string dir = ".";
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sessions") {
      session_counts = parse_list(next());
    } else if (arg == "--frames") {
      frames_per_channel = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--reps") {
      reps = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--dir") {
      dir = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--threads") {
      // Accepted for run_benches.sh uniformity; poll() runs on the shared
      // pool, so the worker count shapes the streamed-halfway setup only.
      nsync::runtime::set_worker_count(
          static_cast<std::size_t>(std::stoul(next())));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--sessions a,b,c] [--frames n] [--reps n]"
                   " [--dir path] [--json path] [--threads n]\n";
      return 0;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }

  std::cout << "EXTENSION: MonitorEngine checkpoint/restore cost\n"
            << "(" << frames_per_channel << " frames/channel, fleet streamed"
            << " halfway, min of " << reps << " reps)\n\n";

  const core::NsyncConfig cfg = dwm_config();
  const std::vector<std::string> channel_names = {"ACC", "AUD"};
  std::vector<Signal> references;
  for (std::size_t c = 0; c < channel_names.size(); ++c) {
    references.push_back(make_reference(frames_per_channel, 100 + c));
  }
  core::Thresholds loose;
  loose.c_c = 1e9;
  loose.h_c = 1e9;
  loose.v_c = 1e9;

  const std::string path = dir + "/BENCH_checkpoint.nckp";
  std::vector<Result> results;
  eval::AsciiTable table({"Sessions", "Windows", "KiB", "Serialize ms",
                          "Write ms", "Restore ms"});
  for (std::size_t n_sessions : session_counts) {
    engine::MonitorEngine eng;
    std::vector<std::vector<Signal>> streams(n_sessions);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      engine::SessionSpec spec;
      spec.name = "print-" + std::to_string(s);
      for (std::size_t c = 0; c < channel_names.size(); ++c) {
        engine::ChannelSpec ch;
        ch.name = channel_names[c];
        ch.reference = references[c];
        ch.config = cfg;
        ch.thresholds = loose;
        spec.channels.push_back(std::move(ch));
        streams[s].push_back(
            benign_observation(references[c], 1000 + 7 * s + c));
      }
      eng.add_session(std::move(spec));
    }

    // Stream the first half of every print so the checkpoint captures a
    // realistic mid-flight fleet.
    std::size_t windows = 0;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < channel_names.size(); ++c) {
        const Signal& sig = streams[s][c];
        eng.feed(s, channel_names[c],
                 signal::SignalView(sig).slice(0, sig.frames() / 2));
      }
    }
    windows += eng.poll();

    Result r;
    r.sessions = n_sessions;
    r.windows = windows;
    std::vector<std::uint8_t> payload;
    r.serialize_ms = time_min_ms(reps, [&] { payload = eng.serialize(); });
    r.bytes = payload.size();
    r.write_ms = time_min_ms(reps, [&] { eng.checkpoint(path); });
    engine::MonitorEngine restored;
    r.restore_ms =
        time_min_ms(reps, [&] { restored = engine::MonitorEngine::restore(path); });
    if (restored.sessions() != n_sessions) {
      std::cerr << "restore mismatch: " << restored.sessions() << " sessions\n";
      return 1;
    }
    results.push_back(r);
    table.add_row({std::to_string(r.sessions), std::to_string(r.windows),
                   eval::fmt(static_cast<double>(r.bytes) / 1024.0, 1),
                   eval::fmt(r.serialize_ms, 3), eval::fmt(r.write_ms, 3),
                   eval::fmt(r.restore_ms, 3)});
  }
  std::remove(path.c_str());
  table.print(std::cout);
  std::cout << "\n(Write ms is the full atomic protocol — serialize, CRC,\n"
               " tmp file, fsync, rename — i.e. the per-poll overhead of\n"
               " the checkpoint_every_polls=1 policy)\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"benchmark\": \"checkpoint\",\n  \"frames_per_channel\": "
        << frames_per_channel << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      out << "    {\"sessions\": " << r.sessions
          << ", \"windows\": " << r.windows << ", \"bytes\": " << r.bytes
          << ", \"serialize_ms\": " << r.serialize_ms
          << ", \"write_ms\": " << r.write_ms
          << ", \"restore_ms\": " << r.restore_ms << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
