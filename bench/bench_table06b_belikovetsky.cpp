// Regenerates the Belikovetsky IDS result quoted in Section VIII-C's text:
// FPR/TPR = 1.00/1.00 for UM3 and 0.31/1.00 for RM3 (audio spectrogram,
// PCA to three channels, cosine comparison, no DSYNC).
#include <algorithm>
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "Belikovetsky's IDS (Section VIII-C): AUD spectrogram, PCA->3\n"
            << "channels, point-by-point cosine, no DSYNC.\n"
            << "(paper: FPR/TPR = 1.00/1.00 on UM3, 0.31/1.00 on RM3 —\n"
            << " time noise makes the unsynchronized comparison collapse)\n\n";

  AsciiTable table({"Printer", "FPR/TPR", "Accuracy"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, {sensors::SideChannel::kAud},
               opt.verbose ? [](std::size_t d, std::size_t t) {
                 std::cerr << "\rsimulating " << d << "/" << t << std::flush;
               } : Dataset::ProgressFn{});
    if (opt.verbose) std::cerr << "\n";
    const ChannelData data = ds.channel_data(sensors::SideChannel::kAud,
                                             Transform::kSpectrogram);
    // Scale the original 5 s averaging window by the print-duration ratio
    // (paper prints ran ~1 h).
    const double avg_seconds = std::max(
        0.25, data.reference.signal.duration() * 5.0 / 3600.0 * 20.0);
    const Confusion c = run_belikovetsky(data, avg_seconds);
    table.add_row({printer_name(printer), c.fpr_tpr(),
                   fmt(c.balanced_accuracy())});
  }
  table.print(std::cout);
  return 0;
}
