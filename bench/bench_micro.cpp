// google-benchmark micro benchmarks for the hot paths: FFT (cached vs
// uncached plans, complex vs real-input), sliding correlation (naive vs
// FFT — the TDE ablation), one DWM window step, the steady-state DWM
// streaming loop, spectrogram columns, FastDTW, and end-to-end dataset
// generation across runtime pool sizes.
//
// Accepts `--json <path>` in addition to the standard benchmark flags:
// shorthand for --benchmark_out=<path> --benchmark_out_format=json, used
// by run_benches.sh to emit BENCH_micro.json.
//
// The SIMD-dispatched kernels (rfft, cross-correlation, sliding Pearson,
// the TDEB epilogue, batched transforms) report roofline counters:
// `flops` (flop/s, from an analytic per-iteration flop model) and
// bytes_per_second, so BENCH_micro.json can be compared against the
// host's peak directly.  The JSON context carries the resolved dispatch
// backend (`simd_isa`) so scalar and vector runs are distinguishable.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/dtw.hpp"
#include "core/dwm.hpp"
#include "core/tde.hpp"
#include "dsp/batched_fft.hpp"
#include "dsp/fft.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/stft.hpp"
#include "dsp/xcorr.hpp"
#include "eval/dataset.hpp"
#include "eval/setup.hpp"
#include "runtime/thread_pool.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;

namespace {

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  signal::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

signal::Signal random_signal(std::size_t frames, std::size_t channels,
                             std::uint64_t seed) {
  signal::Rng rng(seed);
  signal::Signal s(frames, channels, 1000.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      s(n, c) = rng.normal();
    }
  }
  return s;
}

/// Attaches roofline counters: `flops` (flop/s) from an analytic flop
/// model of the kernel and bytes/s from its unavoidable memory traffic.
/// Both are approximate (plan-table loads and scratch spills are not
/// modeled) but good enough to place the kernel against the host peak.
void set_roofline(benchmark::State& state, double flops_per_iter,
                  double bytes_per_iter) {
  state.counters["flops"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes_per_iter));
}

/// ~2.5 n log2 n real flops for a real-input FFT of size n (half the
/// standard 5 n log2 n complex radix-2 count).
double rfft_flops(std::size_t n) {
  return n < 2 ? 0.0
               : 2.5 * static_cast<double>(n) *
                     std::log2(static_cast<double>(n));
}

void BM_FftRadix2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dsp::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dsp::Complex(std::sin(0.1 * static_cast<double>(i)), 0.0);
  }
  for (auto _ : state) {
    auto copy = data;
    dsp::fft_radix2(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftRadix2)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FftCached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dsp::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dsp::Complex(std::sin(0.1 * static_cast<double>(i)), 0.0);
  }
  for (auto _ : state) {
    auto copy = data;
    dsp::fft_radix2(copy);  // plan-cache path (twiddle + bitrev tables)
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftCached)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FftUncached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dsp::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dsp::Complex(std::sin(0.1 * static_cast<double>(i)), 0.0);
  }
  for (auto _ : state) {
    auto copy = data;
    dsp::fft_radix2_uncached(copy);  // recomputes twiddles every call
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftUncached)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Rfft(benchmark::State& state) {
  // Real-input transform on the same sizes as BM_FftCached: the half-size
  // complex trick should come in well under the complex transform (the
  // acceptance bar is >= 1.5x at the DWM-relevant sizes).
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = std::sin(0.1 * static_cast<double>(i));
  }
  for (auto _ : state) {
    auto bins = dsp::rfft(data);
    benchmark::DoNotOptimize(bins);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  // Traffic model: read n reals, write n/2+1 complex bins.
  set_roofline(state, rfft_flops(n),
               static_cast<double>(n * 8 + (n / 2 + 1) * 16));
}
BENCHMARK(BM_Rfft)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_CrossCorrelateRfft(benchmark::State& state) {
  // The correlation kernel under TDE, on its workspace (zero-alloc) path.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 31);
  const auto y = random_series(n / 4, 32);
  std::vector<double> out(x.size() - y.size() + 1);
  dsp::CorrelationWorkspace ws;
  for (auto _ : state) {
    dsp::cross_correlate_valid_into(x, y, out, ws);
    benchmark::DoNotOptimize(out);
  }
  // Two forward rffts + one inverse on the padded size, plus the bin
  // product (6 flops per complex multiply).
  const std::size_t m = dsp::next_power_of_two(x.size() + y.size());
  set_roofline(state, 3.0 * rfft_flops(m) + 6.0 * static_cast<double>(m / 2 + 1),
               static_cast<double>((x.size() + y.size() + out.size()) * 8));
}
BENCHMARK(BM_CrossCorrelateRfft)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_CrossCorrelateComplex(benchmark::State& state) {
  // Pre-rfft implementation (full complex FFTs, allocating) for reference.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 31);
  const auto y = random_series(n / 4, 32);
  for (auto _ : state) {
    auto out = dsp::cross_correlate_valid_complex(x, y);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CrossCorrelateComplex)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FftBluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dsp::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dsp::Complex(std::sin(0.1 * static_cast<double>(i)), 0.0);
  }
  for (auto _ : state) {
    auto out = dsp::fft(data);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftBluestein)->Arg(1000)->Arg(4095);

void BM_SlidingPearsonNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 1);
  const auto y = random_series(n / 4, 2);
  for (auto _ : state) {
    auto s = dsp::sliding_pearson_naive(x, y);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SlidingPearsonNaive)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SlidingPearsonFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 1);
  const auto y = random_series(n / 4, 2);
  for (auto _ : state) {
    auto s = dsp::sliding_pearson_fft(x, y);
    benchmark::DoNotOptimize(s);
  }
  // Correlation transforms + centering (2 flops/sample), prefix sums
  // (3 flops/sample) and the normalization epilogue (~8 flops/window).
  const std::size_t m = dsp::next_power_of_two(x.size() + y.size());
  const std::size_t n_out = x.size() - y.size() + 1;
  set_roofline(state,
               3.0 * rfft_flops(m) + 6.0 * static_cast<double>(m / 2 + 1) +
                   5.0 * static_cast<double>(x.size()) +
                   8.0 * static_cast<double>(n_out),
               static_cast<double>((x.size() * 3 + n_out) * 8));
}
BENCHMARK(BM_SlidingPearsonFft)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SlidingPearsonFftInto(benchmark::State& state) {
  // Workspace (allocation-free) variant: what the TDE loop actually runs.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 1);
  const auto y = random_series(n / 4, 2);
  std::vector<double> out(x.size() - y.size() + 1);
  dsp::SlidingPearsonWorkspace ws;
  for (auto _ : state) {
    dsp::sliding_pearson_fft_into(x, y, out, ws);
    benchmark::DoNotOptimize(out);
  }
  const std::size_t m = dsp::next_power_of_two(x.size() + y.size());
  set_roofline(state,
               3.0 * rfft_flops(m) + 6.0 * static_cast<double>(m / 2 + 1) +
                   5.0 * static_cast<double>(x.size()) +
                   8.0 * static_cast<double>(out.size()),
               static_cast<double>((x.size() * 3 + out.size()) * 8));
}
BENCHMARK(BM_SlidingPearsonFftInto)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_BatchedRfft(benchmark::State& state) {
  // All-channels-in-one-plan transform (the DWM multichannel TDE path),
  // 6 lanes like a UM3 ACC+AUD roster, lane-interleaved input.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t lanes = 6;
  const auto x = random_series(n * lanes, 9);
  dsp::BatchedRfftPlan plan(n, lanes);
  std::vector<double> sre(plan.bins() * lanes);
  std::vector<double> sim(plan.bins() * lanes);
  for (auto _ : state) {
    plan.forward_interleaved(x.data(), sre.data(), sim.data());
    benchmark::DoNotOptimize(sre);
    benchmark::DoNotOptimize(sim);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * lanes));
  set_roofline(state, static_cast<double>(lanes) * rfft_flops(n),
               static_cast<double>(lanes * (n * 8 + (n / 2 + 1) * 16)));
}
BENCHMARK(BM_BatchedRfft)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_TdebEpilogue(benchmark::State& state) {
  // The fused clamp + Gaussian-bias + argmax pass over a score array
  // (one call per DWM window).
  const auto n = static_cast<std::size_t>(state.range(0));
  auto scores = random_series(n, 17);
  std::vector<double> w(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double d = (static_cast<double>(j) - 0.5 * static_cast<double>(n)) /
                     (0.1 * static_cast<double>(n));
    w[j] = std::exp(-0.5 * d * d);
  }
  for (auto _ : state) {
    auto j = dsp::simd::ops().clamp_weight_argmax(scores.data(), w.data(), n);
    benchmark::DoNotOptimize(j);
  }
  // max + multiply + compare per element; two input streams.
  set_roofline(state, 3.0 * static_cast<double>(n),
               static_cast<double>(n * 16));
}
BENCHMARK(BM_TdebEpilogue)->Arg(801)->Arg(4096)->Arg(16384);

void BM_DwmWindowStep(benchmark::State& state) {
  // One TDEB evaluation with UM3-at-400Hz-like dimensions.
  const auto b = random_signal(4096, 6, 3);
  const auto a = random_signal(1600, 6, 4);
  for (auto _ : state) {
    auto j = core::estimate_delay_biased(b, signal::SignalView(a), 800.0,
                                         400.0);
    benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_DwmWindowStep);

void BM_DwmWindow(benchmark::State& state) {
  // Steady-state cost of one streaming DWM window: a warmed synchronizer
  // receives one hop of frames per iteration, which completes exactly one
  // window.  With reserve_windows() this path performs no heap
  // allocations (see test_alloc_hot_path.cpp).
  const std::size_t n_win = 1600, n_hop = 800, channels = 6;
  const auto reference = random_signal(1 << 17, channels, 41);
  const auto chunk = random_signal(n_hop, channels, 42);
  core::DwmParams p;
  p.n_win = n_win;
  p.n_hop = n_hop;
  p.n_ext = 400;
  p.n_sigma = 400.0;
  const std::size_t max_windows =
      (reference.frames() - n_win - p.n_ext - n_hop) / n_hop;

  auto make_warm = [&] {
    auto sync = std::make_unique<core::DwmSynchronizer>(reference, p);
    sync->reserve_windows(max_windows + 1);
    sync->push(random_signal(n_win, channels, 43));  // first window
    return sync;
  };
  auto sync = make_warm();
  for (auto _ : state) {
    if (sync->windows() >= max_windows) {
      state.PauseTiming();
      sync = make_warm();
      state.ResumeTiming();
    }
    sync->push(chunk);
    benchmark::DoNotOptimize(sync->result().h_disp.back());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DwmWindow);

void BM_Spectrogram(benchmark::State& state) {
  const auto s = random_signal(static_cast<std::size_t>(state.range(0)), 2,
                               7);
  dsp::StftConfig cfg;
  cfg.delta_f = 20.0;
  cfg.delta_t = 1.0 / 80.0;
  for (auto _ : state) {
    auto sp = dsp::spectrogram(s, cfg);
    benchmark::DoNotOptimize(sp);
  }
}
BENCHMARK(BM_Spectrogram)->Arg(8192)->Arg(32768);

void BM_FastDtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_signal(n, 4, 11);
  const auto b = random_signal(n, 4, 12);
  for (auto _ : state) {
    auto r = core::fast_dtw(a, b, 1, core::DistanceMetric::kCorrelation);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FastDtw)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DwmAlign(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_signal(n, 4, 21);
  const auto b = random_signal(n, 4, 22);
  core::DwmParams p;
  p.n_win = 200;
  p.n_hop = 100;
  p.n_ext = 50;
  p.n_sigma = 25.0;
  for (auto _ : state) {
    auto r = core::DwmSynchronizer::align(a, b, p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DwmAlign)->Arg(1024)->Arg(4096);

void BM_DatasetParallel(benchmark::State& state) {
  // End-to-end tiny-roster generation (26 simulated processes, ACC+AUD
  // rendered) across runtime pool sizes; the speedup at threads:4 vs
  // threads:1 is the headline number for the parallel runtime.
  runtime::set_worker_count(static_cast<std::size_t>(state.range(0)));
  const eval::EvalScale scale = eval::EvalScale::tiny();
  const std::vector<sensors::SideChannel> channels = {
      sensors::SideChannel::kAcc, sensors::SideChannel::kAud};
  for (auto _ : state) {
    eval::Dataset ds(eval::PrinterKind::kUm3, scale, channels);
    benchmark::DoNotOptimize(ds.test().size());
  }
  state.SetItemsProcessed(state.iterations());
  runtime::set_worker_count(0);  // restore automatic sizing
}
BENCHMARK(BM_DatasetParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN plus a `--json <path>` shorthand (and a `--threads <n>`
// passthrough so run_benches.sh can forward NSYNC_THREADS like it does to
// the table/figure binaries).
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::vector<std::string> storage;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[++i]);
      storage.emplace_back("--benchmark_out_format=json");
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      runtime::set_worker_count(
          static_cast<std::size_t>(std::atoi(argv[++i])));
    } else {
      args.push_back(argv[i]);
    }
  }
  for (auto& s : storage) args.push_back(s.data());
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  // Resolved dispatch backend into the JSON context, so scalar-baseline
  // and vector runs of BENCH_micro.json are self-describing.
  benchmark::AddCustomContext(
      "simd_isa", nsync::dsp::simd::isa_name(nsync::dsp::simd::active_isa()));
  benchmark::AddCustomContext(
      "simd_best_supported",
      nsync::dsp::simd::isa_name(nsync::dsp::simd::best_supported_isa()));
  benchmark::AddCustomContext(
      "simd_built", nsync::dsp::simd::built_with_simd() ? "true" : "false");
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
