// google-benchmark micro benchmarks for the hot paths: FFT (cached vs
// uncached plans), sliding correlation (naive vs FFT — the TDE ablation),
// one DWM window step, spectrogram columns, FastDTW, and end-to-end
// dataset generation across runtime pool sizes.
#include <benchmark/benchmark.h>

#include "core/dtw.hpp"
#include "core/dwm.hpp"
#include "core/tde.hpp"
#include "dsp/fft.hpp"
#include "dsp/stft.hpp"
#include "dsp/xcorr.hpp"
#include "eval/dataset.hpp"
#include "eval/setup.hpp"
#include "runtime/thread_pool.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;

namespace {

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  signal::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

signal::Signal random_signal(std::size_t frames, std::size_t channels,
                             std::uint64_t seed) {
  signal::Rng rng(seed);
  signal::Signal s(frames, channels, 1000.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      s(n, c) = rng.normal();
    }
  }
  return s;
}

void BM_FftRadix2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dsp::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dsp::Complex(std::sin(0.1 * static_cast<double>(i)), 0.0);
  }
  for (auto _ : state) {
    auto copy = data;
    dsp::fft_radix2(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftRadix2)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FftCached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dsp::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dsp::Complex(std::sin(0.1 * static_cast<double>(i)), 0.0);
  }
  for (auto _ : state) {
    auto copy = data;
    dsp::fft_radix2(copy);  // plan-cache path (twiddle + bitrev tables)
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftCached)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FftUncached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dsp::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dsp::Complex(std::sin(0.1 * static_cast<double>(i)), 0.0);
  }
  for (auto _ : state) {
    auto copy = data;
    dsp::fft_radix2_uncached(copy);  // recomputes twiddles every call
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftUncached)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FftBluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dsp::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dsp::Complex(std::sin(0.1 * static_cast<double>(i)), 0.0);
  }
  for (auto _ : state) {
    auto out = dsp::fft(data);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftBluestein)->Arg(1000)->Arg(4095);

void BM_SlidingPearsonNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 1);
  const auto y = random_series(n / 4, 2);
  for (auto _ : state) {
    auto s = dsp::sliding_pearson_naive(x, y);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SlidingPearsonNaive)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SlidingPearsonFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 1);
  const auto y = random_series(n / 4, 2);
  for (auto _ : state) {
    auto s = dsp::sliding_pearson_fft(x, y);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SlidingPearsonFft)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_DwmWindowStep(benchmark::State& state) {
  // One TDEB evaluation with UM3-at-400Hz-like dimensions.
  const auto b = random_signal(4096, 6, 3);
  const auto a = random_signal(1600, 6, 4);
  for (auto _ : state) {
    auto j = core::estimate_delay_biased(b, signal::SignalView(a), 800.0,
                                         400.0);
    benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_DwmWindowStep);

void BM_Spectrogram(benchmark::State& state) {
  const auto s = random_signal(static_cast<std::size_t>(state.range(0)), 2,
                               7);
  dsp::StftConfig cfg;
  cfg.delta_f = 20.0;
  cfg.delta_t = 1.0 / 80.0;
  for (auto _ : state) {
    auto sp = dsp::spectrogram(s, cfg);
    benchmark::DoNotOptimize(sp);
  }
}
BENCHMARK(BM_Spectrogram)->Arg(8192)->Arg(32768);

void BM_FastDtw(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_signal(n, 4, 11);
  const auto b = random_signal(n, 4, 12);
  for (auto _ : state) {
    auto r = core::fast_dtw(a, b, 1, core::DistanceMetric::kCorrelation);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FastDtw)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DwmAlign(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_signal(n, 4, 21);
  const auto b = random_signal(n, 4, 22);
  core::DwmParams p;
  p.n_win = 200;
  p.n_hop = 100;
  p.n_ext = 50;
  p.n_sigma = 25.0;
  for (auto _ : state) {
    auto r = core::DwmSynchronizer::align(a, b, p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DwmAlign)->Arg(1024)->Arg(4096);

void BM_DatasetParallel(benchmark::State& state) {
  // End-to-end tiny-roster generation (26 simulated processes, ACC+AUD
  // rendered) across runtime pool sizes; the speedup at threads:4 vs
  // threads:1 is the headline number for the parallel runtime.
  runtime::set_worker_count(static_cast<std::size_t>(state.range(0)));
  const eval::EvalScale scale = eval::EvalScale::tiny();
  const std::vector<sensors::SideChannel> channels = {
      sensors::SideChannel::kAcc, sensors::SideChannel::kAud};
  for (auto _ : state) {
    eval::Dataset ds(eval::PrinterKind::kUm3, scale, channels);
    benchmark::DoNotOptimize(ds.test().size());
  }
  state.SetItemsProcessed(state.iterations());
  runtime::set_worker_count(0);  // restore automatic sizing
}
BENCHMARK(BM_DatasetParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
