// Prints Table IV (the DWM parameters selected per printer) and the
// sample-domain values they resolve to at each side channel's evaluation
// sampling rate (raw and spectrogram).
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/setup.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "TABLE IV: Parameters in DWM\n\n";
  {
    AsciiTable t({"Printer", "t_win", "t_hop", "t_ext", "t_sigma", "eta"});
    for (PrinterKind p : {PrinterKind::kUm3, PrinterKind::kRm3}) {
      const DwmSeconds s = table4_dwm(p);
      t.add_row({printer_name(p), fmt(s.t_win, 1) + " s",
                 fmt(s.t_hop, 1) + " s", fmt(s.t_ext, 1) + " s",
                 fmt(s.t_sigma, 2) + " s", fmt(s.eta, 1)});
    }
    t.print(std::cout);
  }

  std::cout << "\nResolved sample-domain parameters at the evaluation rates:\n";
  AsciiTable t({"Printer", "Side Ch.", "T", "fs (Hz)", "n_win", "n_hop",
                "n_ext", "n_sigma"});
  for (PrinterKind p : opt.printers) {
    for (sensors::SideChannel ch : sensors::all_side_channels()) {
      for (Transform tr : {Transform::kRaw, Transform::kSpectrogram}) {
        const double raw_rate = eval_channel_rate(ch);
        const double fs = tr == Transform::kRaw
                              ? raw_rate
                              : 1.0 / table3_stft(ch).delta_t;
        const auto params = dwm_params_for(p, fs);
        t.add_row({printer_name(p), sensors::side_channel_name(ch),
                   transform_name(tr), fmt(fs, 0),
                   std::to_string(params.n_win), std::to_string(params.n_hop),
                   std::to_string(params.n_ext), fmt(params.n_sigma, 1)});
      }
    }
  }
  t.print(std::cout);
  return 0;
}
