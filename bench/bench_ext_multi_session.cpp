// Extension experiment (beyond the paper): multi-session monitoring
// throughput of the MonitorEngine.
//
// Simulates a fleet of concurrent print-monitoring sessions — each with
// two side channels streaming frames in acquisition-sized chunks through
// its RealtimeMonitors — and measures aggregate windows/sec as the session
// count and the thread-pool size vary.  Sessions are scheduled on the
// shared nsync_runtime pool (one task per session per poll), so throughput
// should scale with --threads up to the core count, and per-session
// results are bitwise independent of the worker count.
//
// Flags: --sessions a,b,c  session counts to sweep (default 1,8,32)
//        --threads n       thread-pool size (default: automatic)
//        --frames n        observed frames per channel (default 12288)
//        --chunk n         frames per feed() call (default 256)
//        --json path       machine-readable results (BENCH_multi_session.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/nsync.hpp"
#include "engine/monitor_engine.hpp"
#include "eval/table.hpp"
#include "runtime/thread_pool.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using nsync::signal::Rng;
using nsync::signal::Signal;

namespace {

/// Band-limited pseudo side-channel signal.  A slow chirp rides on the
/// smoothed noise so every window has a distinct temporal signature —
/// pure low-pass noise has broad autocorrelation peaks and the TDEB
/// tracker occasionally mis-locks on it over long streams, which would
/// turn this throughput bench into an accuracy experiment.
Signal make_reference(std::size_t frames, std::uint64_t seed) {
  constexpr double kPi = 3.14159265358979323846;
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    const double t = static_cast<double>(n) / 100.0;
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0 + 0.7 * std::sin(2.0 * kPi * (0.5 + 0.010 * t) * t);
    s(n, 1) = lp1 + 0.7 * std::cos(2.0 * kPi * (0.4 + 0.008 * t) * t);
  }
  return s;
}

/// The reference with small time warps and measurement noise — one
/// session's live observation stream.
Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

core::NsyncConfig dwm_config() {
  core::NsyncConfig cfg;
  cfg.sync = core::SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;
  // Throughput bench, not an accuracy experiment: calibrate generously so
  // benign streams never alarm and every session runs the full print.
  cfg.r = 1.0;
  return cfg;
}

struct Result {
  std::size_t sessions = 0;
  std::size_t windows = 0;
  double seconds = 0.0;
  [[nodiscard]] double windows_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(windows) / seconds : 0.0;
  }
};

std::vector<std::size_t> parse_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    out.push_back(static_cast<std::size_t>(std::stoul(tok)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> session_counts = {1, 8, 32};
  std::size_t threads = 0;
  std::size_t frames_per_channel = 12288;
  std::size_t chunk = 256;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sessions") {
      session_counts = parse_list(next());
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--frames") {
      frames_per_channel = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--chunk") {
      chunk = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--sessions a,b,c] [--threads n] [--frames n]"
                   " [--chunk n] [--json path]\n";
      return 0;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (threads > 0) runtime::set_worker_count(threads);
  const std::size_t pool = runtime::worker_count();

  std::cout << "EXTENSION: MonitorEngine multi-session throughput\n"
            << "(threads=" << pool << ", " << frames_per_channel
            << " frames/channel, chunk=" << chunk << ")\n\n";

  // One fleet-wide calibration: learn thresholds once on benign runs and
  // hand them to every session, as a deployment would.
  const core::NsyncConfig cfg = dwm_config();
  const std::vector<std::string> channel_names = {"ACC", "AUD"};
  std::vector<Signal> references;
  std::vector<core::Thresholds> thresholds;
  for (std::size_t c = 0; c < channel_names.size(); ++c) {
    Signal ref = make_reference(frames_per_channel, 100 + c);
    core::NsyncIds ids(ref, cfg);
    std::vector<Signal> train;
    for (std::uint64_t s = 0; s < 6; ++s) {
      train.push_back(benign_observation(ref, 10 * (s + 1) + c));
    }
    ids.fit(train);
    // The six training runs may never drift a full sample, in which case
    // DWM reports h_disp == 0 throughout and OCC learns c_c = h_c = 0 —
    // a threshold any benign stream trips the first time its accumulated
    // time-warp crosses half a sample.  Floor the displacement thresholds
    // at a few samples of benign wander and widen v past its tail: this
    // is a throughput bench, alarms would not change the measured work
    // (windows keep processing after the verdict latches), but a quiet
    // fleet keeps the output readable.
    core::Thresholds t = ids.thresholds();
    t.c_c = std::max(3.0 * t.c_c, 64.0);
    t.h_c = std::max(3.0 * t.h_c, 8.0);
    t.v_c *= 3.0;
    thresholds.push_back(t);
    references.push_back(std::move(ref));
  }

  std::vector<Result> results;
  eval::AsciiTable table(
      {"Sessions", "Threads", "Windows", "Seconds", "Windows/sec", "Alarms"});
  for (std::size_t n_sessions : session_counts) {
    engine::MonitorEngine eng;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      engine::SessionSpec spec;
      spec.name = "print-" + std::to_string(s);
      spec.rule = core::FusionRule::kAny;
      for (std::size_t c = 0; c < channel_names.size(); ++c) {
        engine::ChannelSpec ch;
        ch.name = channel_names[c];
        ch.reference = references[c];
        ch.config = cfg;
        ch.thresholds = thresholds[c];
        spec.channels.push_back(std::move(ch));
      }
      eng.add_session(std::move(spec));
    }

    // Pre-generate every session's observation streams so the timed loop
    // measures the engine, not the simulator.
    std::vector<std::vector<Signal>> streams(n_sessions);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < channel_names.size(); ++c) {
        streams[s].push_back(
            benign_observation(references[c], 1000 + 7 * s + c));
      }
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::size_t windows = 0;
    bool more = true;
    for (std::size_t off = 0; more; off += chunk) {
      more = false;
      for (std::size_t s = 0; s < n_sessions; ++s) {
        for (std::size_t c = 0; c < channel_names.size(); ++c) {
          const Signal& sig = streams[s][c];
          if (off >= sig.frames()) continue;
          const std::size_t hi = std::min(off + chunk, sig.frames());
          windows += eng.feed(s, channel_names[c],
                              signal::SignalView(sig).slice(off, hi));
          if (hi < sig.frames()) more = true;
        }
      }
      windows += eng.poll();
    }
    const auto t1 = std::chrono::steady_clock::now();

    std::size_t alarms = 0;
    for (const auto& snap : eng.snapshots()) {
      if (snap.intrusion) ++alarms;
    }
    Result r;
    r.sessions = n_sessions;
    r.windows = windows;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    results.push_back(r);
    table.add_row({std::to_string(r.sessions), std::to_string(pool),
                   std::to_string(r.windows), eval::fmt(r.seconds, 3),
                   eval::fmt(r.windows_per_sec(), 0),
                   std::to_string(alarms)});
  }
  table.print(std::cout);
  std::cout << "\n(benign streams: Alarms should be 0; aggregate\n"
               " windows/sec should grow with --threads until the\n"
               " physical core count is reached)\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"benchmark\": \"multi_session\",\n  \"threads\": " << pool
        << ",\n  \"frames_per_channel\": " << frames_per_channel
        << ",\n  \"chunk\": " << chunk << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      out << "    {\"sessions\": " << r.sessions
          << ", \"windows\": " << r.windows << ", \"seconds\": " << r.seconds
          << ", \"windows_per_sec\": " << r.windows_per_sec() << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
