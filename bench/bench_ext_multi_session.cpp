// Extension experiment (beyond the paper): multi-session fleet throughput
// — single MonitorEngine vs the sharded multi-core fleet.
//
// Simulates a fleet of concurrent print-monitoring sessions — each with
// two side channels streaming frames in acquisition-sized chunks — and
// measures aggregate windows/sec as the session count and the shard count
// vary.  Shard count 0 is the in-process baseline (one MonitorEngine,
// poll() on the shared pool); shard counts >= 1 run the ShardedFleet,
// where each shard owns a private engine on a dedicated worker thread fed
// through a bounded MPSC queue.  Per-session verdicts are bitwise
// identical across all shard counts (pinned by tests/
// test_sharded_fleet.cpp), so the sweep measures pure scheduling.
// Sharded rows also report the fleet's p50/p99 feed→verdict latency from
// the per-shard log2 histograms.
//
// A second section drives the fleet past its load-shed threshold: a small
// queue with the drop-oldest policy, fed with no pacing, shows how
// throughput and shed accounting behave at saturation.
//
// Flags: --sessions a,b,c  session counts to sweep (default 1,8,32)
//        --shards a,b,c    shard counts to sweep (default 0,1,2,4;
//                          0 = unsharded MonitorEngine baseline)
//        --threads n       thread-pool size for the baseline (default auto)
//        --frames n        observed frames per channel (default 12288)
//        --chunk n         frames per feed() call (default 256)
//        --no-saturation   skip the load-shed section
//        --json path       machine-readable results (BENCH_fleet.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/nsync.hpp"
#include "engine/monitor_engine.hpp"
#include "engine/sharded_fleet.hpp"
#include "eval/table.hpp"
#include "runtime/thread_pool.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using nsync::signal::Rng;
using nsync::signal::Signal;

namespace {

/// Band-limited pseudo side-channel signal.  A slow chirp rides on the
/// smoothed noise so every window has a distinct temporal signature —
/// pure low-pass noise has broad autocorrelation peaks and the TDEB
/// tracker occasionally mis-locks on it over long streams, which would
/// turn this throughput bench into an accuracy experiment.
Signal make_reference(std::size_t frames, std::uint64_t seed) {
  constexpr double kPi = 3.14159265358979323846;
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    const double t = static_cast<double>(n) / 100.0;
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0 + 0.7 * std::sin(2.0 * kPi * (0.5 + 0.010 * t) * t);
    s(n, 1) = lp1 + 0.7 * std::cos(2.0 * kPi * (0.4 + 0.008 * t) * t);
  }
  return s;
}

/// The reference with small time warps and measurement noise — one
/// session's live observation stream.
Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

core::NsyncConfig dwm_config() {
  core::NsyncConfig cfg;
  cfg.sync = core::SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;
  // Throughput bench, not an accuracy experiment: calibrate generously so
  // benign streams never alarm and every session runs the full print.
  cfg.r = 1.0;
  return cfg;
}

struct Fixture {
  std::vector<std::string> channel_names = {"ACC", "AUD"};
  std::vector<Signal> references;
  std::vector<core::Thresholds> thresholds;
  core::NsyncConfig cfg = dwm_config();
};

engine::SessionSpec make_spec(const Fixture& fx, std::size_t s) {
  engine::SessionSpec spec;
  spec.name = "print-" + std::to_string(s);
  spec.rule = core::FusionRule::kAny;
  for (std::size_t c = 0; c < fx.channel_names.size(); ++c) {
    engine::ChannelSpec ch;
    ch.name = fx.channel_names[c];
    ch.reference = fx.references[c];
    ch.config = fx.cfg;
    ch.thresholds = fx.thresholds[c];
    spec.channels.push_back(std::move(ch));
  }
  return spec;
}

struct Result {
  std::size_t shards = 0;  ///< 0 = unsharded MonitorEngine baseline
  std::size_t sessions = 0;
  std::size_t windows = 0;
  double seconds = 0.0;
  double p50_us = 0.0;  ///< feed→verdict latency (sharded rows only)
  double p99_us = 0.0;
  std::uint64_t shed_frames = 0;
  std::size_t alarms = 0;
  [[nodiscard]] double windows_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(windows) / seconds : 0.0;
  }
};

/// Unsharded baseline: feed + poll on one MonitorEngine.
Result run_baseline(const Fixture& fx,
                    const std::vector<std::vector<Signal>>& streams,
                    std::size_t chunk) {
  const std::size_t n_sessions = streams.size();
  engine::MonitorEngine eng;
  for (std::size_t s = 0; s < n_sessions; ++s) eng.add_session(make_spec(fx, s));

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t windows = 0;
  bool more = true;
  for (std::size_t off = 0; more; off += chunk) {
    more = false;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < fx.channel_names.size(); ++c) {
        const Signal& sig = streams[s][c];
        if (off >= sig.frames()) continue;
        const std::size_t hi = std::min(off + chunk, sig.frames());
        windows += eng.feed(s, fx.channel_names[c],
                            signal::SignalView(sig).slice(off, hi));
        if (hi < sig.frames()) more = true;
      }
    }
    windows += eng.poll();
  }
  const auto t1 = std::chrono::steady_clock::now();

  Result r;
  r.sessions = n_sessions;
  r.windows = windows;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& snap : eng.snapshots()) {
    if (snap.intrusion) ++r.alarms;
  }
  return r;
}

/// Sharded fleet: feed from this thread, process on the shard workers,
/// flush() as the barrier.  Options beyond the shard count let the
/// saturation section shrink the queue and switch the overflow policy.
Result run_sharded(const Fixture& fx,
                   const std::vector<std::vector<Signal>>& streams,
                   std::size_t chunk, engine::ShardedFleetOptions fopts) {
  const std::size_t n_sessions = streams.size();
  engine::ShardedFleet fleet(fopts);
  for (std::size_t s = 0; s < n_sessions; ++s) {
    fleet.add_session(make_spec(fx, s));
  }

  const auto t0 = std::chrono::steady_clock::now();
  bool more = true;
  for (std::size_t off = 0; more; off += chunk) {
    more = false;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < fx.channel_names.size(); ++c) {
        const Signal& sig = streams[s][c];
        if (off >= sig.frames()) continue;
        const std::size_t hi = std::min(off + chunk, sig.frames());
        fleet.feed(s, fx.channel_names[c],
                   signal::SignalView(sig).slice(off, hi));
        if (hi < sig.frames()) more = true;
      }
    }
  }
  fleet.flush();
  const auto t1 = std::chrono::steady_clock::now();

  const engine::FleetStats stats = fleet.stats();
  Result r;
  r.shards = fopts.shards;
  r.sessions = n_sessions;
  r.windows = static_cast<std::size_t>(stats.windows);
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.p50_us = stats.p50_feed_to_verdict_us;
  r.p99_us = stats.p99_feed_to_verdict_us;
  r.shed_frames = stats.shed_frames;
  for (const auto& snap : fleet.snapshots()) {
    if (snap.intrusion) ++r.alarms;
  }
  return r;
}

std::vector<std::size_t> parse_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    out.push_back(static_cast<std::size_t>(std::stoul(tok)));
  }
  return out;
}

void emit_json(const std::string& path, std::size_t pool,
               std::size_t frames_per_channel, std::size_t chunk,
               const std::vector<Result>& scaling,
               const std::vector<Result>& saturation) {
  const auto emit = [](std::ofstream& out, const std::vector<Result>& rs) {
    for (std::size_t i = 0; i < rs.size(); ++i) {
      const Result& r = rs[i];
      out << "    {\"shards\": " << r.shards << ", \"sessions\": "
          << r.sessions << ", \"windows\": " << r.windows
          << ", \"seconds\": " << r.seconds << ", \"windows_per_sec\": "
          << r.windows_per_sec() << ", \"p50_us\": " << r.p50_us
          << ", \"p99_us\": " << r.p99_us << ", \"shed_frames\": "
          << r.shed_frames << "}" << (i + 1 < rs.size() ? "," : "") << "\n";
    }
  };
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"fleet\",\n  \"threads\": " << pool
      << ",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"frames_per_channel\": " << frames_per_channel
      << ",\n  \"chunk\": " << chunk << ",\n  \"scaling\": [\n";
  emit(out, scaling);
  out << "  ],\n  \"saturation\": [\n";
  emit(out, saturation);
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> session_counts = {1, 8, 32};
  std::vector<std::size_t> shard_counts = {0, 1, 2, 4};
  std::size_t threads = 0;
  std::size_t frames_per_channel = 12288;
  std::size_t chunk = 256;
  bool saturation_section = true;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sessions") {
      session_counts = parse_list(next());
    } else if (arg == "--shards") {
      shard_counts = parse_list(next());
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--frames") {
      frames_per_channel = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--chunk") {
      chunk = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--no-saturation") {
      saturation_section = false;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--sessions a,b,c] [--shards a,b,c] [--threads n]"
                   " [--frames n] [--chunk n] [--no-saturation]"
                   " [--json path]\n";
      return 0;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (threads > 0) runtime::set_worker_count(threads);
  const std::size_t pool = runtime::worker_count();

  std::cout << "EXTENSION: sharded fleet multi-session throughput\n"
            << "(pool=" << pool << " threads, hardware_concurrency="
            << std::thread::hardware_concurrency() << ", "
            << frames_per_channel << " frames/channel, chunk=" << chunk
            << ")\n\n";

  // One fleet-wide calibration: learn thresholds once on benign runs and
  // hand them to every session, as a deployment would.
  Fixture fx;
  for (std::size_t c = 0; c < fx.channel_names.size(); ++c) {
    Signal ref = make_reference(frames_per_channel, 100 + c);
    core::NsyncIds ids(ref, fx.cfg);
    std::vector<Signal> train;
    for (std::uint64_t s = 0; s < 6; ++s) {
      train.push_back(benign_observation(ref, 10 * (s + 1) + c));
    }
    ids.fit(train);
    // The six training runs may never drift a full sample, in which case
    // DWM reports h_disp == 0 throughout and OCC learns c_c = h_c = 0 —
    // a threshold any benign stream trips the first time its accumulated
    // time-warp crosses half a sample.  Floor the displacement thresholds
    // at a few samples of benign wander and widen v past its tail: this
    // is a throughput bench, alarms would not change the measured work
    // (windows keep processing after the verdict latches), but a quiet
    // fleet keeps the output readable.
    core::Thresholds t = ids.thresholds();
    t.c_c = std::max(3.0 * t.c_c, 64.0);
    t.h_c = std::max(3.0 * t.h_c, 8.0);
    t.v_c *= 3.0;
    fx.thresholds.push_back(t);
    fx.references.push_back(std::move(ref));
  }

  std::vector<Result> scaling;
  eval::AsciiTable table({"Shards", "Sessions", "Windows", "Seconds",
                          "Windows/sec", "p50us", "p99us", "Alarms"});
  for (std::size_t n_sessions : session_counts) {
    // Pre-generate every session's observation streams so the timed loop
    // measures the engine, not the simulator.
    std::vector<std::vector<Signal>> streams(n_sessions);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < fx.channel_names.size(); ++c) {
        streams[s].push_back(
            benign_observation(fx.references[c], 1000 + 7 * s + c));
      }
    }
    for (std::size_t n_shards : shard_counts) {
      if (n_shards > n_sessions) continue;  // idle shards measure nothing
      Result r;
      if (n_shards == 0) {
        r = run_baseline(fx, streams, chunk);
      } else {
        engine::ShardedFleetOptions fopts;
        fopts.shards = n_shards;
        r = run_sharded(fx, streams, chunk, fopts);
      }
      scaling.push_back(r);
      table.add_row(
          {n_shards == 0 ? "base" : std::to_string(n_shards),
           std::to_string(r.sessions), std::to_string(r.windows),
           eval::fmt(r.seconds, 3), eval::fmt(r.windows_per_sec(), 0),
           n_shards == 0 ? "-" : eval::fmt(r.p50_us, 0),
           n_shards == 0 ? "-" : eval::fmt(r.p99_us, 0),
           std::to_string(r.alarms)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(benign streams: Alarms should be 0; \"base\" is the\n"
               " unsharded MonitorEngine; aggregate windows/sec should\n"
               " grow with shard count until the physical core count is\n"
               " reached — on a single-core host all rows are flat)\n";

  std::vector<Result> saturation;
  if (saturation_section) {
    // Past the load-shed threshold: a deliberately tiny queue with the
    // drop-oldest policy, fed with no pacing.  Throughput holds (the
    // workers stay busy) while the shed counters account for every frame
    // that was sacrificed; with kBlock these rows would instead converge
    // to the scaling rows above.
    const std::size_t n_sessions =
        *std::max_element(session_counts.begin(), session_counts.end());
    std::vector<std::vector<Signal>> streams(n_sessions);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < fx.channel_names.size(); ++c) {
        streams[s].push_back(
            benign_observation(fx.references[c], 1000 + 7 * s + c));
      }
    }
    eval::AsciiTable sat({"Shards", "Sessions", "Windows", "Seconds",
                          "Windows/sec", "Shed frames", "p99us"});
    for (std::size_t n_shards : shard_counts) {
      if (n_shards == 0 || n_shards > n_sessions) continue;
      engine::ShardedFleetOptions fopts;
      fopts.shards = n_shards;
      fopts.queue_capacity_frames = 2048;
      fopts.overflow = engine::OverflowPolicy::kDropOldest;
      Result r = run_sharded(fx, streams, chunk, fopts);
      saturation.push_back(r);
      sat.add_row({std::to_string(n_shards), std::to_string(r.sessions),
                   std::to_string(r.windows), eval::fmt(r.seconds, 3),
                   eval::fmt(r.windows_per_sec(), 0),
                   std::to_string(r.shed_frames), eval::fmt(r.p99_us, 0)});
    }
    std::cout << "\nLoad shedding past saturation (queue=2048 frames, "
                 "drop-oldest):\n";
    sat.print(std::cout);
  }

  if (!json_path.empty()) {
    emit_json(json_path, pool, frames_per_channel, chunk, scaling, saturation);
  }
  return 0;
}
