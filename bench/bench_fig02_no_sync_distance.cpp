// Regenerates Fig. 2: correlation distances of a benign process and a
// malicious process when compared window by window WITHOUT dynamic
// synchronization.  The paper's point: due to time noise the benign
// distances become as large as the malicious ones, so the comparison is
// useless.
#include <iostream>

#include "core/comparator.hpp"
#include "eval/dataset.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"
#include "signal/stats.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "FIG. 2: correlation distances without DSYNC (ACC, windowed)\n"
            << "(paper shape: benign distances grow as the signals drift\n"
            << " apart and end up as large as malicious ones)\n\n";

  for (PrinterKind printer : opt.printers) {
    EvalScale scale = opt.scale;
    scale.train_count = 0;
    scale.benign_test_count = 1;
    scale.malicious_per_attack = 1;
    Dataset ds(printer, scale, {sensors::SideChannel::kAcc});
    const auto ref = ds.channel_data(sensors::SideChannel::kAcc,
                                     Transform::kRaw);

    const auto params = dwm_params_for(printer, ref.sample_rate);
    std::cout << printer_name(printer) << ":\n";
    AsciiTable table({"process", "first-qtr mean dist", "last-qtr mean dist",
                      "max dist"});
    for (const auto& t : ref.test) {
      const auto d = core::vertical_distances_unsynced_windows(
          t.sig.signal, ref.reference.signal, params.n_win, params.n_hop,
          core::DistanceMetric::kCorrelation);
      if (d.size() < 4) continue;
      const std::size_t q = d.size() / 4;
      const double first = signal::mean(std::span(d).subspan(0, q));
      const double last = signal::mean(std::span(d).subspan(d.size() - q, q));
      table.add_row({t.label + (t.malicious ? " (malicious)" : " (benign)"),
                     fmt(first, 3), fmt(last, 3),
                     fmt(signal::max_value(d), 3)});
      if (t.label == "Benign" || t.label == "Void") {
        std::cout << "  " << t.label << " distance series:";
        for (double v : d) std::cout << " " << fmt(v, 2);
        std::cout << "\n";
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
