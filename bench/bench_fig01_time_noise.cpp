// Regenerates Fig. 1: side-channel signals for several printing processes
// using the same G-code file and the same printer, aligned at the
// beginning, end at different times because of time noise.
//
// Prints each run's duration, the end-time misalignment, and a coarse
// envelope of the audio signal so the drift is visible in text form.
#include <cmath>
#include <iostream>

#include "eval/options.hpp"
#include "eval/setup.hpp"
#include "eval/table.hpp"
#include "printer/simulator.hpp"
#include "sensors/rig.hpp"
#include "signal/stats.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "FIG. 1: three runs of the same G-code on the same printer\n"
            << "(paper shape: aligned at the beginning, misaligned at the\n"
            << " end — the end-time spread is the accumulated time noise)\n\n";

  for (PrinterKind printer : opt.printers) {
    const PrinterSetup setup = make_printer_setup(printer, opt.scale);
    printer::ExecutorConfig exec;
    exec.sample_rate = opt.scale.master_rate;
    std::cout << printer_name(printer) << " ("
              << setup.benign_program.name() << ")\n";

    std::vector<double> durations;
    std::vector<std::vector<double>> envelopes;
    for (std::uint64_t run = 0; run < 3; ++run) {
      const auto trace = printer::trim_to_first_layer(printer::simulate_print(
          setup.benign_program, setup.machine, exec, opt.scale.seed + run));
      const sensors::SensorRig rig(setup.machine, setup.rig);
      signal::Rng rng(opt.scale.seed + run + 77);
      const auto aud = rig.render(sensors::SideChannel::kAud, trace, rng);
      durations.push_back(aud.duration());
      // 40-bucket RMS envelope against absolute time of the longest run.
      std::vector<double> env;
      const std::size_t bucket = aud.frames() / 40;
      for (std::size_t b = 0; b + 1 < 40 && bucket > 0; ++b) {
        double acc = 0.0;
        for (std::size_t n = b * bucket; n < (b + 1) * bucket; ++n) {
          acc += aud(n, 0) * aud(n, 0);
        }
        env.push_back(std::sqrt(acc / static_cast<double>(bucket)));
      }
      envelopes.push_back(std::move(env));
    }
    double lo = durations[0], hi = durations[0];
    for (double d : durations) {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    for (std::size_t r = 0; r < durations.size(); ++r) {
      std::cout << "  run " << r << ": duration " << fmt(durations[r], 3)
                << " s   envelope: ";
      for (double v : envelopes[r]) {
        const char* glyphs[] = {" ", ".", ":", "-", "=", "#"};
        const int level =
            std::min(5, static_cast<int>(v * 12.0));
        std::cout << glyphs[level < 0 ? 0 : level];
      }
      std::cout << "\n";
    }
    std::cout << "  end-time misalignment: " << fmt((hi - lo) * 1000.0, 1)
              << " ms over " << fmt(lo, 1) << " s ("
              << fmt(100.0 * (hi - lo) / lo, 3) << "% of the process)\n\n";
  }
  return 0;
}
