// Extension experiment: on-line DTW (the real-time DTW the paper cites as
// an ongoing effort, Section VI-A) as an NSYNC synchronizer, compared with
// DWM on the same data.
//
// Measures per-signal-second compute cost and the resulting detection
// quality when the discriminator runs on the online-DTW h_disp / v_dist.
#include <chrono>
#include <iostream>

#include "core/discriminator.hpp"
#include "core/online_dtw.hpp"
#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

namespace {

struct OdtwFeatures {
  core::DetectionFeatures features;
  double seconds = 0.0;
};

OdtwFeatures analyze(const signal::Signal& observed,
                     const signal::Signal& reference, std::size_t band) {
  const auto t0 = std::chrono::steady_clock::now();
  core::OnlineDtw dtw(reference, band, core::DistanceMetric::kEuclidean);
  dtw.push(observed);
  OdtwFeatures out;
  out.features = core::compute_features(dtw.h_disp(), dtw.v_dist(), 3);
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "EXTENSION: on-line (banded streaming) DTW as the NSYNC\n"
            << "synchronizer, ACC spectrogram, vs DWM on the same data.\n"
            << "(expected shape: online DTW is cheap and causal like DWM,\n"
            << " but its greedy band mis-tracks more, costing accuracy)\n\n";

  AsciiTable table({"Printer", "Synchronizer", "FPR/TPR", "Accuracy",
                    "compute (s/s)"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, {sensors::SideChannel::kAcc});
    const ChannelData data =
        ds.channel_data(sensors::SideChannel::kAcc, Transform::kSpectrogram);
    const double dur = data.reference.signal.duration();
    // Band half-width comparable to DWM's search extent.
    const std::size_t band = std::max<std::size_t>(
        4, dwm_params_for(printer, data.sample_rate).n_ext);

    // --- online DTW ---
    {
      std::vector<core::FeatureMaxima> maxima;
      double secs = 0.0;
      for (const auto& s : data.train) {
        const auto a = analyze(s.signal, data.reference.signal, band);
        maxima.push_back(core::feature_maxima(a.features));
        secs += a.seconds;
      }
      const auto th = core::learn_thresholds(maxima, 0.3);
      Confusion c;
      for (const auto& t : data.test) {
        const auto a = analyze(t.sig.signal, data.reference.signal, band);
        secs += a.seconds;
        c.add(core::discriminate(a.features, th).intrusion, t.malicious);
      }
      const double per_second =
          secs / (dur * static_cast<double>(data.train.size() +
                                            data.test.size()));
      table.add_row({printer_name(printer), "OnlineDTW(w=" +
                     std::to_string(band) + ")", c.fpr_tpr(),
                     fmt(c.balanced_accuracy()), fmt(per_second, 5)});
    }

    // --- DWM reference point ---
    {
      const auto t0 = std::chrono::steady_clock::now();
      const NsyncResult r =
          run_nsync(data, printer, core::SyncMethod::kDwm, 0.3);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double per_second =
          secs / (dur * static_cast<double>(data.train.size() +
                                            data.test.size()));
      table.add_row({printer_name(printer), "DWM", r.overall.fpr_tpr(),
                     fmt(r.overall.balanced_accuracy()),
                     fmt(per_second, 5)});
    }
  }
  table.print(std::cout);
  return 0;
}
