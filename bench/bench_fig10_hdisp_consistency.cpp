// Regenerates Fig. 10: h_disp obtained by six different side channels and
// two transformations (raw / spectrogram) for one benign process.
//
// The paper's findings, which this bench checks quantitatively:
//   * ACC and AUD h_disp are almost identical regardless of transform;
//   * raw EPT h_disp "does not make sense" but spectrogram EPT matches;
//   * MAG is noisy but shares the overall shape;
//   * TMP and PWR are noise-like (weakly correlated with printer state).
// We report the correlation of each channel's h_disp (resampled to a
// common time axis) against the ACC-raw curve.
#include <iostream>

#include "core/dwm.hpp"
#include "eval/dataset.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"
#include "signal/filters.hpp"
#include "signal/stats.hpp"

using namespace nsync;
using namespace nsync::eval;

namespace {

/// h_disp (in seconds vs window time) for one channel+transform.
struct Curve {
  std::vector<double> time;    // window center, seconds
  std::vector<double> h_disp;  // seconds
};

Curve dwm_curve(const ChannelData& data, PrinterKind printer) {
  const auto params = dwm_params_for(printer, data.sample_rate);
  const auto r = core::DwmSynchronizer::align(
      data.test.front().sig.signal, data.reference.signal, params);
  Curve c;
  for (std::size_t i = 0; i < r.h_disp.size(); ++i) {
    c.time.push_back(static_cast<double>(i * params.n_hop + params.n_win / 2) /
                     data.sample_rate);
    c.h_disp.push_back(r.h_disp[i] / data.sample_rate);
  }
  // Isolated single-window mis-locks would dominate a Pearson comparison of
  // the curves; remove them the same way the discriminator does (spike
  // suppression, Section VII-B) so the comparison sees the curve *shape*.
  if (c.h_disp.size() >= 3) {
    c.h_disp = nsync::signal::median_filter(c.h_disp, 3);
  }
  return c;
}

/// Samples a curve at time t by nearest neighbour.
double sample(const Curve& c, double t) {
  if (c.time.empty()) return 0.0;
  std::size_t best = 0;
  double best_d = 1e300;
  for (std::size_t i = 0; i < c.time.size(); ++i) {
    const double d = std::abs(c.time[i] - t);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return c.h_disp[best];
}

double curve_correlation(const Curve& a, const Curve& b) {
  if (a.time.size() < 3 || b.time.size() < 3) return 0.0;
  std::vector<double> va, vb;
  for (std::size_t i = 0; i < a.time.size(); ++i) {
    va.push_back(a.h_disp[i]);
    vb.push_back(sample(b, a.time[i]));
  }
  return signal::pearson(va, vb);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "FIG. 10: h_disp consistency across side channels\n"
            << "(correlation vs the ACC-raw h_disp curve; paper shape:\n"
            << " ACC/AUD ~1.0 for both transforms, EPT raw nonsense but\n"
            << " EPT spectrogram high, MAG noisy-but-correlated, TMP/PWR\n"
            << " noise-like)\n\n";

  for (PrinterKind printer : opt.printers) {
    EvalScale scale = opt.scale;
    scale.train_count = 0;
    scale.benign_test_count = 1;
    scale.malicious_per_attack = 0;
    // A taller object gives the drift time to develop a clear shape, as in
    // the paper's full-length prints.
    scale.object_height *= 1.0;
    Dataset ds(printer, scale, sensors::all_side_channels());

    // ACC raw is the anchor curve.
    const Curve anchor = dwm_curve(
        ds.channel_data(sensors::SideChannel::kAcc, Transform::kRaw), printer);

    std::cout << printer_name(printer) << " (benign process, "
              << fmt(ds.test().front().raw.begin()->second.duration(), 1)
              << " s)\n";
    AsciiTable table({"Side Ch.", "Transform", "corr vs ACC-raw",
                      "h_disp range (ms)"});
    for (sensors::SideChannel ch : sensors::all_side_channels()) {
      for (Transform t : {Transform::kRaw, Transform::kSpectrogram}) {
        const Curve c = dwm_curve(ds.channel_data(ch, t), printer);
        double lo = 0.0, hi = 0.0;
        if (!c.h_disp.empty()) {
          lo = *std::min_element(c.h_disp.begin(), c.h_disp.end());
          hi = *std::max_element(c.h_disp.begin(), c.h_disp.end());
        }
        table.add_row({sensors::side_channel_name(ch), transform_name(t),
                       fmt(curve_correlation(c, anchor)),
                       fmt(lo * 1000.0, 0) + " .. " + fmt(hi * 1000.0, 0)});
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
