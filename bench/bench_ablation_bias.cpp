// Ablation: the TDEB Gaussian bias (Fig. 5 / Section VI-B).
//
// Runs NSYNC/DWM with the standard bias and with the bias effectively
// disabled (n_sigma -> huge, making the Gaussian flat over the extended
// window) and compares detection quality plus benign h_disp roughness.
// The paper's claim: without bias, periodic/noisy windows make TDE
// unstable, so benign h_disp gets spiky and thresholds inflate.
#include <cmath>
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

namespace {

double benign_roughness(const ChannelData& data, const core::DwmParams& p) {
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& s : data.train) {
    const auto r = core::DwmSynchronizer::align(s.signal,
                                                data.reference.signal, p);
    for (std::size_t i = 1; i < r.h_disp.size(); ++i) {
      acc += std::abs(r.h_disp[i] - r.h_disp[i - 1]);
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

NsyncResult run_with_params(const ChannelData& data,
                            const core::DwmParams& params) {
  core::NsyncConfig cfg;
  cfg.sync = core::SyncMethod::kDwm;
  cfg.dwm = params;
  cfg.r = 0.3;
  core::NsyncIds ids(data.reference.signal, cfg);
  std::vector<core::Analysis> an;
  for (const auto& s : data.train) an.push_back(ids.analyze(s.signal));
  ids.fit_from_analyses(an);
  NsyncResult out;
  for (const auto& t : data.test) {
    const auto d = ids.detect(ids.analyze(t.sig.signal));
    out.overall.add(d.intrusion, t.malicious);
    out.c_disp.add(d.by_c_disp, t.malicious);
    out.h_dist.add(d.by_h_dist, t.malicious);
    out.v_dist.add(d.by_v_dist, t.malicious);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "ABLATION: TDEB bias on/off (NSYNC/DWM, ACC raw)\n\n";
  AsciiTable table({"Printer", "Bias", "Overall FPR/TPR", "Accuracy",
                    "benign roughness (samples)"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, {sensors::SideChannel::kAcc});
    const ChannelData data =
        ds.channel_data(sensors::SideChannel::kAcc, Transform::kRaw);
    const auto base = dwm_params_for(printer, data.sample_rate);

    core::DwmParams unbiased = base;
    unbiased.n_sigma = 1e12;  // flat Gaussian == no bias

    for (const auto& [label, params] :
         {std::pair<const char*, core::DwmParams>{"on", base},
          {"off", unbiased}}) {
      const NsyncResult r = run_with_params(data, params);
      table.add_row({printer_name(printer), label, r.overall.fpr_tpr(),
                     fmt(r.overall.balanced_accuracy()),
                     fmt(benign_roughness(data, params), 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
