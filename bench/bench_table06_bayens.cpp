// Regenerates Table VI: Bayens' window-matching IDS on the audio channel,
// with two matching-window sizes.  The paper's 90 s / 120 s windows were
// chosen for multi-hour prints; the synthetic prints are far shorter, so
// the window sizes are scaled to the same *fraction* of the print duration
// (90/3600 and 120/3600) unless --paper-scale is given.
#include <algorithm>
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "TABLE VI: Detection Results for Bayens' IDS (AUD only)\n"
            << "(paper shape: the sequence sub-module false-alarms heavily\n"
            << " under time noise — overall FPR 1.00 on UM3, 0.3-0.5 on\n"
            << " RM3 — while TPR stays 1.00)\n\n";

  AsciiTable table({"Printer", "Window", "Overall", "Sequence", "Threshold"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, {sensors::SideChannel::kAud},
               opt.verbose ? [](std::size_t d, std::size_t t) {
                 std::cerr << "\rsimulating " << d << "/" << t << std::flush;
               } : Dataset::ProgressFn{});
    if (opt.verbose) std::cerr << "\n";
    const ChannelData data = ds.channel_data(sensors::SideChannel::kAud,
                                             Transform::kRaw);
    const double duration = data.reference.signal.duration();
    for (double paper_window : {90.0, 120.0}) {
      // Keep the paper's window-to-print ratio (paper prints ~1 h).
      const double window =
          std::max(0.75, duration * paper_window / 3600.0);
      const BayensResult r = run_bayens(data, window);
      table.add_row({printer_name(printer),
                     fmt(paper_window, 0) + "s->" + fmt(window, 2) + "s",
                     r.overall.fpr_tpr(), r.sequence.fpr_tpr(),
                     r.threshold.fpr_tpr()});
    }
  }
  table.print(std::cout);
  return 0;
}
