// Ablation: the OCC margin r (Section VII-C).
//
// "The higher the value of r, the lower the FPR, but the higher the FNR."
// This bench sweeps r over NSYNC/DWM on ACC raw and prints the resulting
// FPR/TPR trade-off (the data behind the paper's choice of r = 0.3 for
// NSYNC and r = 0 for the weak baselines).
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "ABLATION: OCC margin r sweep (NSYNC/DWM, ACC raw)\n"
            << "(paper claim: larger r lowers FPR at the cost of FNR)\n\n";

  AsciiTable table({"Printer", "r", "FPR", "TPR", "Accuracy"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, {sensors::SideChannel::kAcc});
    const ChannelData data =
        ds.channel_data(sensors::SideChannel::kAcc, Transform::kRaw);

    // Analyses are r-independent: compute once, sweep thresholds.
    core::NsyncConfig cfg;
    cfg.sync = core::SyncMethod::kDwm;
    cfg.dwm = dwm_params_for(printer, data.sample_rate);
    core::NsyncIds ids(data.reference.signal, cfg);
    std::vector<core::Analysis> train;
    for (const auto& s : data.train) train.push_back(ids.analyze(s.signal));
    std::vector<core::Analysis> test;
    std::vector<bool> malicious;
    for (const auto& t : data.test) {
      test.push_back(ids.analyze(t.sig.signal));
      malicious.push_back(t.malicious);
    }
    std::vector<core::FeatureMaxima> maxima;
    for (const auto& a : train) maxima.push_back(feature_maxima(a.features));

    for (double r : {0.0, 0.1, 0.2, 0.3, 0.5, 1.0, 2.0, 5.0}) {
      const core::Thresholds th = core::learn_thresholds(maxima, r);
      Confusion c;
      for (std::size_t i = 0; i < test.size(); ++i) {
        c.add(core::discriminate(test[i].features, th).intrusion,
              malicious[i]);
      }
      table.add_row({printer_name(printer), fmt(r, 1), fmt(c.fpr()),
                     fmt(c.tpr()), fmt(c.balanced_accuracy())});
    }
  }
  table.print(std::cout);
  return 0;
}
