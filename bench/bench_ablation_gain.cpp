// Ablation: distance-metric sensitivity to signal gain (Section VII-A,
// footnote 2).  The paper rejects Manhattan/Euclidean because side-channel
// gains drift (microphone placement, ADC gain); the correlation distance is
// gain-invariant.
//
// We compare one benign window pair under a synthetic gain error and report
// how much each metric's distance inflates — and then show the end-to-end
// effect: NSYNC accuracy per metric under the rig's per-run gain jitter.
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  const PrinterKind printer = opt.printers.front();
  Dataset ds(printer, opt.scale, {sensors::SideChannel::kAcc});
  const ChannelData data =
      ds.channel_data(sensors::SideChannel::kAcc, Transform::kRaw);

  // Part 1: window distance inflation under a pure gain error.
  {
    std::cout << "Window distance between a window and a 1.2x-gain copy of\n"
              << "itself (a gain-invariant metric should report ~0):\n\n";
    const auto params = dwm_params_for(printer, data.sample_rate);
    const auto& sig = data.reference.signal;
    const auto win = sig.slice(0, std::min(params.n_win, sig.frames()));
    signal::Signal scaled = win.to_signal();
    for (std::size_t n = 0; n < scaled.frames(); ++n) {
      for (std::size_t c = 0; c < scaled.channels(); ++c) {
        scaled(n, c) *= 1.2;
      }
    }
    AsciiTable t({"metric", "d(w, 1.2*w)"});
    for (auto m : {core::DistanceMetric::kCorrelation,
                   core::DistanceMetric::kCosine,
                   core::DistanceMetric::kEuclidean,
                   core::DistanceMetric::kManhattan,
                   core::DistanceMetric::kMae}) {
      t.add_row({core::distance_metric_name(m),
                 fmt(core::window_distance(win, scaled, m), 4)});
    }
    t.print(std::cout);
  }

  // Part 2: end-to-end NSYNC accuracy per comparator metric (the rig's
  // per-run gain jitter is active in the dataset).
  {
    std::cout << "\nNSYNC/DWM accuracy by comparator metric ("
              << printer_name(printer) << ", ACC raw, per-run gain jitter "
              << "sigma = 5%):\n\n";
    AsciiTable t({"metric", "Overall FPR/TPR", "v_dist FPR/TPR", "Accuracy"});
    for (auto m : {core::DistanceMetric::kCorrelation,
                   core::DistanceMetric::kCosine,
                   core::DistanceMetric::kEuclidean,
                   core::DistanceMetric::kMae}) {
      core::NsyncConfig cfg;
      cfg.sync = core::SyncMethod::kDwm;
      cfg.dwm = dwm_params_for(printer, data.sample_rate);
      cfg.metric = m;
      cfg.r = 0.3;
      core::NsyncIds ids(data.reference.signal, cfg);
      std::vector<core::Analysis> an;
      for (const auto& s : data.train) an.push_back(ids.analyze(s.signal));
      ids.fit_from_analyses(an);
      NsyncResult r;
      for (const auto& tc : data.test) {
        const auto d = ids.detect(ids.analyze(tc.sig.signal));
        r.overall.add(d.intrusion, tc.malicious);
        r.v_dist.add(d.by_v_dist, tc.malicious);
      }
      t.add_row({core::distance_metric_name(m), r.overall.fpr_tpr(),
                 r.v_dist.fpr_tpr(), fmt(r.overall.balanced_accuracy())});
    }
    t.print(std::cout);
  }
  return 0;
}
