// Extension experiment (beyond the paper): fixed vs drift-adaptive OCC
// thresholds under slow sensor drift.
//
// Sweeps the total gain drift accumulated over a fleet of sequential
// prints (an aging amplifier / warming sensor mount) and reports, per
// drift magnitude, the FPR/TPR of two deployment models scoring the same
// corrupted streams: the paper's calibrate-once thresholds, and the
// per-device baseline registry that re-learns thresholds from prints
// that finished benign with healthy channels.  The expected shape: as
// drift grows, the fixed arm's false-positive rate climbs toward 1 in
// the late (fully drifted) half of the run while the adaptive arm stays
// near 0 — and both arms keep detecting every tampered print, because
// attacked prints freeze (never feed) the baseline.
//
//   ./bench_ext_drift [--prints n] [--frames n] [--attack-every k]
//                     [--drifts a,b,c] [--r x] [--json path]
#include <cmath>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/drift.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

namespace {

std::vector<double> parse_list(const std::string& s) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    out.push_back(std::stod(tok));
  }
  return out;
}

std::string pct(double v) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << 100.0 * v << "%";
  return os.str();
}

struct Point {
  double total_drift = 0.0;
  DriftScenarioResult res;
};

void emit_json(const std::string& path, const DriftScenarioConfig& base,
               const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"drift\",\n  \"prints\": " << base.prints
      << ",\n  \"frames\": " << base.frames << ",\n  \"attack_every\": "
      << base.attack_every << ",\n  \"r\": " << base.r
      << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "    {\"total_gain_drift\": " << p.total_drift
        << ", \"fixed_fpr\": " << p.res.fixed.fpr()
        << ", \"fixed_tpr\": " << p.res.fixed.tpr()
        << ", \"adaptive_fpr\": " << p.res.adaptive.fpr()
        << ", \"adaptive_tpr\": " << p.res.adaptive.tpr()
        << ", \"fixed_late_fpr\": " << p.res.fixed_late.fpr()
        << ", \"adaptive_late_fpr\": " << p.res.adaptive_late.fpr()
        << ", \"baseline_prints\": " << p.res.baseline_prints
        << ", \"baseline_frozen\": " << p.res.baseline_frozen << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  DriftScenarioConfig base;
  base.prints = 24;
  base.frames = 4096;
  base.attack_every = 6;
  base.train_prints = 5;
  base.r = 0.5;
  base.policy.r = base.r;
  // The last point exceeds the adaptive arm's max_drift envelope on
  // purpose: past it, adaptation is clamped at the anchor's bound and the
  // adaptive arm degrades too — the same bound that stops a slow-drift
  // attack from riding the baseline out of detection range.
  std::vector<double> total_drifts = {0.0, 0.06, 0.12, 0.18, 0.24};
  std::string json_path;
  bool trace = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--prints") {
      base.prints = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--frames") {
      base.frames = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--attack-every") {
      base.attack_every = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--drifts") {
      total_drifts = parse_list(next());
    } else if (arg == "--r") {
      base.r = std::stod(next());
      base.policy.r = base.r;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--prints n] [--frames n] [--attack-every k]"
                   " [--drifts a,b,c] [--r x] [--json path] [--trace]\n";
      return 0;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }

  std::cout << "EXTENSION: fixed vs drift-adaptive OCC thresholds\n"
            << "(" << base.prints << " sequential prints, every "
            << base.attack_every << "th tampered; total gain drift applied"
            << " across the run)\n"
            << "(expected shape: fixed FPR climbs with drift — late-half"
            << " worst — while adaptive\n holds near 0 until the drift"
            << " exceeds its max_drift envelope; both arms detect\n every"
            << " attack; attacked and alarming prints freeze the baseline)"
            << "\n\n";

  std::vector<Point> points;
  for (double total : total_drifts) {
    DriftScenarioConfig cfg = base;
    // Spread the total multiplicative drift uniformly over every input
    // frame of the run (each print contributes frames-1 observed frames).
    const double input_frames =
        static_cast<double>(cfg.prints) * static_cast<double>(cfg.frames - 1);
    cfg.gain_drift_per_frame =
        total == 0.0 ? 0.0 : std::expm1(std::log1p(total) / input_frames);
    points.push_back({total, run_drift_scenario(cfg)});
    if (trace) {
      std::cout << "total drift " << pct(total) << ":\n";
      for (const DriftPrintRecord& rec : points.back().res.prints) {
        std::cout << "  print " << rec.print << (rec.attack ? " ATK" : "    ")
                  << " gain=" << rec.drift_gain
                  << " fixed=" << rec.fixed_intrusion
                  << " adaptive=" << rec.adaptive_intrusion
                  << " thr(c,h,v)=" << rec.adaptive_thresholds.c_c << ","
                  << rec.adaptive_thresholds.h_c << ","
                  << rec.adaptive_thresholds.v_c << "\n";
      }
    }
  }

  AsciiTable table({"TotalDrift", "Fixed FPR/TPR", "Adaptive FPR/TPR",
                    "FixedLateFPR", "AdaptLateFPR", "Folds", "Frozen"});
  for (const Point& p : points) {
    table.add_row({pct(p.total_drift),
                   pct(p.res.fixed.fpr()) + " / " + pct(p.res.fixed.tpr()),
                   pct(p.res.adaptive.fpr()) + " / " +
                       pct(p.res.adaptive.tpr()),
                   pct(p.res.fixed_late.fpr()), pct(p.res.adaptive_late.fpr()),
                   std::to_string(p.res.baseline_prints),
                   std::to_string(p.res.baseline_frozen)});
  }
  table.print(std::cout);

  if (!json_path.empty()) emit_json(json_path, base, points);
  return 0;
}
