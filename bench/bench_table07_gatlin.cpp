// Regenerates Table VII: Gatlin's IDS (layer-change timing + per-layer
// spectral fingerprints), per printer x side channel.
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "TABLE VII: Detection Results for Gatlin's IDS\n"
            << "(paper shape: TPR 1.00 nearly everywhere — layer timing is\n"
            << " a strong signal — but FPR 0.05-0.5 because time noise also\n"
            << " shifts benign layer moments)\n\n";

  AsciiTable table({"P", "Side Ch.", "Overall", "Time", "Match"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, table_channels(),
               opt.verbose ? [](std::size_t d, std::size_t t) {
                 std::cerr << "\rsimulating " << d << "/" << t << std::flush;
               } : Dataset::ProgressFn{});
    if (opt.verbose) std::cerr << "\n";
    for (sensors::SideChannel ch : ds.channels()) {
      const ChannelData data = ds.channel_data(ch, Transform::kRaw);
      const GatlinResult r = run_gatlin(data);
      table.add_row({printer_name(printer), sensors::side_channel_name(ch),
                     r.overall.fpr_tpr(), r.time.fpr_tpr(),
                     r.match.fpr_tpr()});
    }
  }
  table.print(std::cout);
  return 0;
}
