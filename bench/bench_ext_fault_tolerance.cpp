// Extension experiment (beyond the paper): fault tolerance of the fused
// NSYNC/DWM detector under sensor faults.
//
// Sweeps a composite fault rate (dropout + stuck-at + NaN bursts) over
// every test signal and reports, per rate: the fused FPR/TPR, the
// fraction of windows the degradation chain masked out, and how many
// runs ended with channels degraded or offline.  A second table forces
// one channel to flatline mid-print and shows the surviving channels
// still detecting each attack class.  The expected shape is graceful:
// accuracy decays smoothly with the fault rate — no NaNs, no crashes,
// no cliff at the first corrupted window.
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/fault_tolerance.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "EXTENSION: fault tolerance of fused NSYNC/DWM\n"
            << "(expected shape: accuracy decays smoothly with the fault\n"
            << " rate; masked windows grow with it; never a NaN verdict)\n\n";

  const std::vector<sensors::SideChannel> kFused = {
      sensors::SideChannel::kAcc, sensors::SideChannel::kAud,
      sensors::SideChannel::kMag};
  const std::vector<double> kRates = {0.0, 0.005, 0.01, 0.02, 0.05};

  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, kFused,
               opt.verbose ? [](std::size_t d, std::size_t t) {
                 std::cerr << "\rsimulating " << d << "/" << t << std::flush;
               } : Dataset::ProgressFn{});
    if (opt.verbose) std::cerr << "\n";

    std::map<sensors::SideChannel, ChannelData> data;
    for (sensors::SideChannel ch : kFused) {
      data.emplace(ch, ds.channel_data(ch, Transform::kRaw));
    }

    // The health policy is a deployment knob sized to the window cadence:
    // short benchmark prints only produce a dozen-odd windows per run, so
    // the default offline_consecutive=12 could never fire.  Classify a
    // channel offline after 6 consecutive bad windows instead.
    core::HealthPolicy health;
    health.history = 12;
    health.offline_consecutive = 6;
    health.recovery_consecutive = 8;

    const FaultSweepResult sweep = run_fault_sweep(
        data, printer, kRates, opt.scale.seed, core::FusionRule::kAny,
        /*r=*/0.3, health);

    AsciiTable table({"Printer", "FaultRate", "FPR/TPR", "Accuracy",
                      "Masked", "Degraded", "Offline", "Finite"});
    for (const FaultSweepPoint& pt : sweep.points) {
      std::size_t invalid = 0, total = 0, degraded = 0, offline = 0;
      for (const auto& [name, st] : pt.per_channel) {
        invalid += st.invalid_windows;
        total += st.total_windows;
        degraded += st.degraded_runs;
        offline += st.offline_runs;
      }
      table.add_row({printer_name(printer), fmt(pt.rate, 3),
                     pt.fused.fpr_tpr(),
                     fmt(pt.fused.balanced_accuracy()),
                     fmt(total > 0 ? 100.0 * static_cast<double>(invalid) /
                                         static_cast<double>(total)
                                   : 0.0, 1) + "%",
                     std::to_string(degraded), std::to_string(offline),
                     pt.non_finite_feature ? "NO" : "yes"});
    }
    table.print(std::cout);
    std::cout << "\n";

    // Sensor-goes-dark scenario: ACC flatlines a quarter into each run.
    const OfflineScenarioResult dark = run_offline_channel_scenario(
        data, printer, sensors::SideChannel::kAcc,
        /*dark_from_fraction=*/0.25, core::FusionRule::kAny, /*r=*/0.3,
        health);
    std::cout << printer_name(printer) << ": " << dark.dark_channel
              << " flatlined at 25% of each run -> classified offline in "
              << dark.dark_offline_runs << "/" << dark.runs
              << " runs; fused " << dark.fused.fpr_tpr() << " accuracy "
              << fmt(dark.fused.balanced_accuracy()) << "\n";
    AsciiTable by_label({"Printer", "Label", "Detected"});
    for (const auto& [label, counts] : dark.by_label) {
      by_label.add_row({printer_name(printer), label,
                        std::to_string(counts.first) + "/" +
                            std::to_string(counts.second)});
    }
    by_label.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
