// Regenerates Table IX: NSYNC with (Fast)DTW as the dynamic synchronizer.
// As in the paper, only spectrograms are synchronized — "it took forever
// for DTW to synchronize" raw signals — and the smallest radius is used.
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "TABLE IX: Detection Results for NSYNC with DTW (r = 0.3,\n"
            << "FastDTW radius 1, spectrograms only)\n"
            << "(paper shape: DTW reaches TPR 1.00 only on ACC/AUD for UM3\n"
            << " and AUD for RM3; elsewhere it misses attacks that DWM\n"
            << " catches)\n\n";

  AsciiTable table({"P", "T", "Side Ch.", "Overall", "c_disp", "h_dist",
                    "v_dist"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, table_channels(),
               opt.verbose ? [](std::size_t d, std::size_t t) {
                 std::cerr << "\rsimulating " << d << "/" << t << std::flush;
               } : Dataset::ProgressFn{});
    if (opt.verbose) std::cerr << "\n";
    for (sensors::SideChannel ch : ds.channels()) {
      const ChannelData data = ds.channel_data(ch, Transform::kSpectrogram);
      const NsyncResult r =
          run_nsync(data, printer, core::SyncMethod::kDtw, 0.3);
      table.add_row({printer_name(printer), "Spectro.",
                     sensors::side_channel_name(ch), r.overall.fpr_tpr(),
                     r.c_disp.fpr_tpr(), r.h_dist.fpr_tpr(),
                     r.v_dist.fpr_tpr()});
      if (opt.verbose) {
        std::cerr << printer_name(printer) << " "
                  << sensors::side_channel_name(ch) << " done\n";
      }
    }
  }
  table.print(std::cout);
  return 0;
}
