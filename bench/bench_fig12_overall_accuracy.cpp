// Regenerates Fig. 12: average accuracy of the seven IDSs, averaged over
// printers, retained side channels and transforms (raw EPT excluded, as in
// Section VIII-B).
//
// Paper values (approximate, read off Fig. 12):
//   Moore ~0.52, Belikovetsky ~0.50, Bayens ~0.55, Gao ~0.53,
//   Gatlin ~0.88, NSYNC/DTW ~0.73, NSYNC/DWM 0.99.
// The expected *shape*: accuracy rises with the level of DSYNC
// (none -> coarse -> fine), and NSYNC/DWM wins.
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  Confusion moore, gao, bayens, belikovetsky, gatlin, nsync_dtw, nsync_dwm;

  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, table_channels(),
               opt.verbose ? [](std::size_t d, std::size_t t) {
                 std::cerr << "\rsimulating " << d << "/" << t << std::flush;
               } : Dataset::ProgressFn{});
    if (opt.verbose) std::cerr << "\n";
    for (sensors::SideChannel ch : ds.channels()) {
      for (Transform t : {Transform::kRaw, Transform::kSpectrogram}) {
        if (!is_retained(ch, t)) continue;  // drop raw EPT
        const ChannelData data = ds.channel_data(ch, t);
        moore.merge(run_moore(data));
        gao.merge(run_gao(data));
        gatlin.merge(run_gatlin(data).overall);
        nsync_dwm.merge(
            run_nsync(data, printer, core::SyncMethod::kDwm, 0.3).overall);
        if (t == Transform::kSpectrogram) {
          nsync_dtw.merge(
              run_nsync(data, printer, core::SyncMethod::kDtw, 0.3).overall);
        }
        if (opt.verbose) {
          std::cerr << printer_name(printer) << " "
                    << sensors::side_channel_name(ch) << " "
                    << transform_name(t) << " done\n";
        }
      }
    }
    // Audio-only IDSs.
    {
      const ChannelData aud_raw =
          ds.channel_data(sensors::SideChannel::kAud, Transform::kRaw);
      const double duration = aud_raw.reference.signal.duration();
      bayens.merge(
          run_bayens(aud_raw, std::max(0.75, duration * 90.0 / 3600.0))
              .overall);
      const ChannelData aud_spec = ds.channel_data(
          sensors::SideChannel::kAud, Transform::kSpectrogram);
      belikovetsky.merge(run_belikovetsky(aud_spec));
    }
  }

  std::cout << "FIG. 12: average accuracy of seven IDSs\n"
            << "(T = uses time as an intrusion indicator)\n\n";
  AsciiTable table({"IDS", "DSYNC level", "Accuracy", "Paper"});
  table.add_row({"Moore", "none", fmt(moore.balanced_accuracy()), "~0.52"});
  table.add_row({"Belikovetsky", "none",
                 fmt(belikovetsky.balanced_accuracy()), "~0.50"});
  table.add_row({"Bayens (T)", "none", fmt(bayens.balanced_accuracy()),
                 "~0.55"});
  table.add_row({"Gao", "coarse", fmt(gao.balanced_accuracy()), "~0.53"});
  table.add_row({"Gatlin (T)", "coarse", fmt(gatlin.balanced_accuracy()),
                 "~0.88"});
  table.add_row({"NSYNC/DTW (T)", "fine", fmt(nsync_dtw.balanced_accuracy()),
                 "~0.73"});
  table.add_row({"NSYNC/DWM (T)", "fine", fmt(nsync_dwm.balanced_accuracy()),
                 "0.99"});
  table.print(std::cout);
  return 0;
}
