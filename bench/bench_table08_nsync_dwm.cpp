// Regenerates Table VIII: NSYNC with DWM as the dynamic synchronizer,
// per printer x transform x side channel, with overall and per-sub-module
// FPR/TPR.  Paper reference values are printed alongside for comparison.
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "TABLE VIII: Detection Results for NSYNC with DWM (r = 0.3)\n"
            << "(format: FPR/TPR; paper shape: overall TPR 1.00 on every\n"
            << " retained channel except raw EPT, FPR <= 0.02)\n\n";

  AsciiTable table({"P", "T", "Side Ch.", "Overall", "c_disp", "h_dist",
                    "v_dist"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, table_channels(),
               opt.verbose ? [](std::size_t d, std::size_t t) {
                 std::cerr << "\rsimulating " << d << "/" << t << std::flush;
               } : Dataset::ProgressFn{});
    if (opt.verbose) std::cerr << "\n";
    for (Transform t : {Transform::kRaw, Transform::kSpectrogram}) {
      for (sensors::SideChannel ch : ds.channels()) {
        const ChannelData data = ds.channel_data(ch, t);
        const NsyncResult r =
            run_nsync(data, printer, core::SyncMethod::kDwm, 0.3);
        table.add_row({printer_name(printer), transform_name(t),
                       sensors::side_channel_name(ch), r.overall.fpr_tpr(),
                       r.c_disp.fpr_tpr(), r.h_dist.fpr_tpr(),
                       r.v_dist.fpr_tpr()});
        if (opt.verbose) {
          std::cerr << printer_name(printer) << " " << transform_name(t)
                    << " " << sensors::side_channel_name(ch) << " done\n";
        }
      }
    }
  }
  table.print(std::cout);
  return 0;
}
