// Extension experiment: signal-based layer segmentation.
//
// The layer-coarse baselines (Gao, Gatlin) need layer-change moments.  The
// paper's sources were a dedicated bed accelerometer (Gao) and Z-motor
// currents / manual marking (Gatlin).  Here we derive the moments from the
// printhead ACC signal itself (Z-acceleration bursts) and measure:
//   1. the timing error against the simulator's ground truth, and
//   2. the effect on Gatlin's IDS of replacing ground truth with detected
//      layers — quantifying how much of the baselines' reported FPR comes
//      from layer-segmentation noise.
#include <cmath>
#include <iostream>

#include "baselines/gatlin.hpp"
#include "baselines/layer_detect.hpp"
#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

namespace {

baselines::LayeredSignal with_detected_layers(const LayeredSignal& in) {
  baselines::LayerDetectConfig cfg;
  cfg.min_layer_seconds = 2.0;
  baselines::LayeredSignal out;
  out.signal = in.signal;
  out.layer_times = baselines::detect_layer_changes(in.signal, cfg);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "EXTENSION: layer-change detection from the ACC signal\n"
            << "(replaces the ground-truth layer moments the baselines\n"
            << " otherwise receive; expected shape: small timing error on\n"
            << " benign runs, and Gatlin's FPR rises toward the paper's\n"
            << " reported levels once segmentation noise enters)\n\n";

  AsciiTable table({"Printer", "mean timing err (ms)", "missed runs",
                    "Gatlin GT FPR/TPR", "Gatlin detected FPR/TPR"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, {sensors::SideChannel::kAcc});
    const ChannelData data =
        ds.channel_data(sensors::SideChannel::kAcc, Transform::kRaw);

    // Timing error over the benign test runs.
    double err_sum = 0.0;
    std::size_t err_count = 0, missed = 0;
    for (const auto& t : data.test) {
      if (t.malicious) continue;
      const auto detected = with_detected_layers(t.sig).layer_times;
      const double err =
          baselines::layer_timing_error(detected, t.sig.layer_times, 1);
      if (std::isinf(err)) {
        ++missed;
      } else {
        err_sum += err;
        ++err_count;
      }
    }
    const double mean_err =
        err_count > 0 ? err_sum / static_cast<double>(err_count) : 0.0;

    // Gatlin with ground truth vs detected layers.
    const GatlinResult gt = run_gatlin(data);

    baselines::GatlinIds detected_ids(with_detected_layers(data.reference),
                                      baselines::GatlinConfig{});
    std::vector<LayeredSignal> train;
    for (const auto& s : data.train) {
      train.push_back(with_detected_layers(s));
    }
    detected_ids.fit(train);
    Confusion det;
    for (const auto& t : data.test) {
      det.add(detected_ids.detect(with_detected_layers(t.sig)).intrusion,
              t.malicious);
    }

    table.add_row({printer_name(printer), fmt(mean_err * 1000.0, 1),
                   std::to_string(missed), gt.overall.fpr_tpr(),
                   det.fpr_tpr()});
  }
  table.print(std::cout);
  return 0;
}
