// Ablation: spike suppression (Eq. 21-22).  Compares NSYNC/DWM detection
// with the trailing-min filter disabled (window 1), the paper default
// (window 3), and a heavier filter (window 5).  The paper's claim: spikes
// from time/amplitude noise would otherwise cause false positives (or,
// via OCC, inflated thresholds that cost TPR).
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "ABLATION: discriminator min-filter window (ACC raw)\n\n";
  AsciiTable table({"Printer", "filter", "Overall", "h_dist", "v_dist",
                    "Accuracy"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, {sensors::SideChannel::kAcc});
    const ChannelData data =
        ds.channel_data(sensors::SideChannel::kAcc, Transform::kRaw);
    for (std::size_t window : {std::size_t{1}, std::size_t{3},
                               std::size_t{5}}) {
      core::NsyncConfig cfg;
      cfg.sync = core::SyncMethod::kDwm;
      cfg.dwm = dwm_params_for(printer, data.sample_rate);
      cfg.filter_window = window;
      cfg.r = 0.3;
      core::NsyncIds ids(data.reference.signal, cfg);
      std::vector<core::Analysis> an;
      for (const auto& s : data.train) an.push_back(ids.analyze(s.signal));
      ids.fit_from_analyses(an);
      NsyncResult r;
      for (const auto& t : data.test) {
        const auto d = ids.detect(ids.analyze(t.sig.signal));
        r.overall.add(d.intrusion, t.malicious);
        r.h_dist.add(d.by_h_dist, t.malicious);
        r.v_dist.add(d.by_v_dist, t.malicious);
      }
      table.add_row({printer_name(printer), std::to_string(window),
                     r.overall.fpr_tpr(), r.h_dist.fpr_tpr(),
                     r.v_dist.fpr_tpr(), fmt(r.overall.balanced_accuracy())});
    }
  }
  table.print(std::cout);
  return 0;
}
