// Regenerates Fig. 6: parametric analysis of t_sigma, t_win and eta.
//
// For each parameter value we run DWM on a benign pair and report:
//   * the h_disp range (the figure's brackets),
//   * the roughness (mean |h_disp[i] - h_disp[i-1]|, i.e. how spiky the
//     curve is — Fig. 6's "lots of spikes" regime),
// reproducing the qualitative findings:
//   * t_sigma too small -> DWM cannot follow the displacement (range
//     collapses or diverges); too large -> more distraction (rougher);
//   * t_win too small -> spikes; too large -> low temporal resolution;
//   * eta too small -> cannot converge when drift accumulates; eta near
//     1.0 -> can run away.
#include <cmath>
#include <iostream>

#include "core/dwm.hpp"
#include "eval/dataset.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

namespace {

struct Shape {
  double lo = 0.0;
  double hi = 0.0;
  double roughness = 0.0;  // mean |delta h| in ms
};

Shape dwm_shape(const signal::SignalView& a, const signal::SignalView& b,
                const core::DwmParams& p) {
  const auto r = core::DwmSynchronizer::align(a, b, p);
  Shape s;
  if (r.h_disp.empty()) return s;
  const double to_ms = 1000.0 / a.sample_rate();
  s.lo = s.hi = r.h_disp[0] * to_ms;
  double acc = 0.0;
  for (std::size_t i = 0; i < r.h_disp.size(); ++i) {
    s.lo = std::min(s.lo, r.h_disp[i] * to_ms);
    s.hi = std::max(s.hi, r.h_disp[i] * to_ms);
    if (i > 0) acc += std::abs(r.h_disp[i] - r.h_disp[i - 1]) * to_ms;
  }
  s.roughness = acc / static_cast<double>(std::max<std::size_t>(
                          1, r.h_disp.size() - 1));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  const PrinterKind printer = opt.printers.front();
  EvalScale scale = opt.scale;
  scale.train_count = 0;
  scale.benign_test_count = 1;
  scale.malicious_per_attack = 1;
  Dataset ds(printer, scale, {sensors::SideChannel::kAcc});
  const ChannelData data =
      ds.channel_data(sensors::SideChannel::kAcc, Transform::kRaw);
  // t_win is swept on a benign pair (the paper judges the curve shape);
  // t_sigma and eta are swept on a Speed0.95 pair whose h_disp drifts, so
  // too-small sigma / too-small eta visibly fail to track.
  const auto& a = data.test.front().sig.signal;
  const signal::Signal* drifting = &data.test.front().sig.signal;
  for (const auto& t : data.test) {
    if (t.label == "Speed0.95") drifting = &t.sig.signal;
  }
  const auto& b = data.reference.signal;
  const double fs = data.sample_rate;
  const auto base = dwm_params_for(printer, fs);

  std::cout << "FIG. 6: parametric analysis of DWM on " << printer_name(printer)
            << " ACC raw (benign pair)\n"
            << "(range = the bracket in the figure; roughness = mean |dh|)\n\n";

  {
    std::cout << "(a) t_sigma sweep (t_ext = 2 * t_sigma, Section VI-C):\n";
    AsciiTable t({"t_sigma (s)", "h_disp range (ms)", "roughness (ms)"});
    for (double t_sigma : {0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
      core::DwmParams p = base;
      p.n_sigma = std::max(1.0, t_sigma * fs);
      p.n_ext = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::llround(2.0 * t_sigma * fs)));
      const Shape s = dwm_shape(*drifting, b, p);
      t.add_row({fmt(t_sigma), fmt(s.lo, 0) + " .. " + fmt(s.hi, 0),
                 fmt(s.roughness, 1)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\n(b) t_win sweep (t_hop = t_win / 2):\n";
    AsciiTable t({"t_win (s)", "windows", "h_disp range (ms)",
                  "roughness (ms)"});
    for (double t_win : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      core::DwmParams p = base;
      p.n_win = std::max<std::size_t>(
          4, static_cast<std::size_t>(std::llround(t_win * fs)));
      p.n_hop = std::max<std::size_t>(2, p.n_win / 2);
      const Shape s = dwm_shape(a, b, p);
      const std::size_t windows =
          a.frames() >= p.n_win ? (a.frames() - p.n_win) / p.n_hop + 1 : 0;
      t.add_row({fmt(t_win, 1), std::to_string(windows),
                 fmt(s.lo, 0) + " .. " + fmt(s.hi, 0), fmt(s.roughness, 1)});
    }
    t.print(std::cout);
  }
  {
    std::cout << "\n(c) eta sweep:\n";
    AsciiTable t({"eta", "h_disp range (ms)", "roughness (ms)"});
    for (double eta : {0.02, 0.05, 0.1, 0.3, 0.6, 1.0}) {
      core::DwmParams p = base;
      p.eta = eta;
      const Shape s = dwm_shape(*drifting, b, p);
      t.add_row({fmt(eta), fmt(s.lo, 0) + " .. " + fmt(s.hi, 0),
                 fmt(s.roughness, 1)});
    }
    t.print(std::cout);
  }
  return 0;
}
