// Extension experiment (beyond the paper): cost of the fleet-service
// resilience layer under transport faults and overload.
//
// Part A — reconnect recovery.  A ResilientWireClient streams a session
// through a proxy whose active connection is severed K times mid-stream.
// The timed quantity is the first feed() call after each kill: it absorbs
// peer-gone detection, jittered backoff, reconnect, HELLO, idempotent
// re-ADD_SESSION and the frames_fed resync — i.e. the full wall-clock gap
// an acquisition host sees before its stream is flowing again.
//
// Part B — poll latency isolation.  One well-behaved client measures
// POLL_STATS round-trip latency twice: against an idle daemon, then with a
// slow consumer attached (a peer that floods PINGs and never drains its
// replies, wedging its connection's writer until the write deadline
// closes it).  Thread-per-connection plus bounded writes should keep the
// well-behaved client's p99 flat; this experiment pins that claim.
//
// Flags: --kills n    proxy kills in part A (default 5)
//        --polls n    latency samples per part-B phase (default 400)
//        --frames n   observed frames per channel (default 4096)
//        --json path  machine-readable results (BENCH_resilience.json)
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/nsync.hpp"
#include "engine/chaos_proxy.hpp"
#include "engine/fleet_server.hpp"
#include "engine/resilient_client.hpp"
#include "engine/sharded_fleet.hpp"
#include "engine/wire_client.hpp"
#include "eval/table.hpp"
#include "runtime/thread_pool.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

namespace {

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  constexpr double kPi = 3.14159265358979323846;
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    const double t = static_cast<double>(n) / 100.0;
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0 + 0.7 * std::sin(2.0 * kPi * (0.5 + 0.010 * t) * t);
    s(n, 1) = lp1 + 0.7 * std::cos(2.0 * kPi * (0.4 + 0.008 * t) * t);
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

core::NsyncConfig dwm_config() {
  core::NsyncConfig cfg;
  cfg.sync = core::SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;
  cfg.r = 1.0;
  return cfg;
}

engine::SessionSpec make_spec(const std::string& name,
                              const std::vector<std::string>& channels,
                              const std::vector<Signal>& references) {
  core::Thresholds loose;
  loose.c_c = 1e9;
  loose.h_c = 1e9;
  loose.v_c = 1e9;
  engine::SessionSpec sp;
  sp.name = name;
  for (std::size_t c = 0; c < channels.size(); ++c) {
    engine::ChannelSpec ch;
    ch.name = channels[c];
    ch.reference = references[c];
    ch.config = dwm_config();
    ch.thresholds = loose;
    sp.channels.push_back(std::move(ch));
  }
  return sp;
}

std::string unique_path(const std::string& tag) {
  static int counter = 0;
  return (std::filesystem::temp_directory_path() /
          ("nsync_bench_resil_" + tag + "_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter++)))
      .string();
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return (1.0 - frac) * v[lo] + frac * v[hi];
}

/// A consumer that sends PING frames without ever reading the replies,
/// wedging its connection's writer on the server until the write deadline
/// fires.  Returns the number of frames it managed to queue.
std::size_t attach_slow_consumer(std::uint16_t port, int& fd_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  // A tiny receive buffer keeps the TCP window small, so the server's
  // reply stream wedges after a handful of unread pongs.
  int rcvbuf = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return 0;
  }
  const std::vector<std::uint8_t> ping =
      engine::wire::encode(engine::wire::Ping{0xB0B0B0B0B0B0B0B0ull});
  std::size_t sent = 0;
  for (std::size_t i = 0; i < 200000; ++i) {
    if (::send(fd, ping.data(), ping.size(), MSG_DONTWAIT | MSG_NOSIGNAL) !=
        static_cast<ssize_t>(ping.size())) {
      break;
    }
    ++sent;
  }
  fd_out = fd;
  return sent;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t kills = 5;
  std::size_t polls = 400;
  std::size_t frames_per_channel = 4096;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kills") {
      kills = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--polls") {
      polls = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--frames") {
      frames_per_channel = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--threads") {
      nsync::runtime::set_worker_count(
          static_cast<std::size_t>(std::stoul(next())));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--kills n] [--polls n] [--frames n] [--json path]"
                   " [--threads n]\n";
      return 0;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }

  const std::vector<std::string> channels = {"ACC", "AUD"};
  std::vector<Signal> references;
  for (std::size_t c = 0; c < channels.size(); ++c) {
    references.push_back(make_reference(frames_per_channel, 100 + c));
  }
  std::vector<Signal> streams;
  for (std::size_t c = 0; c < channels.size(); ++c) {
    streams.push_back(benign_observation(references[c], 1000 + c));
  }
  constexpr std::size_t kChunk = 160;

  std::cout << "EXTENSION: fleet-service resilience layer\n"
            << "(" << frames_per_channel << " frames/channel, " << kills
            << " proxy kills, " << polls << " latency samples/phase)\n\n";

  // --- Part A: reconnect recovery time ------------------------------------
  std::vector<double> recovery_ms;
  {
    const std::string backend = unique_path("backend") + ".sock";
    const std::string front = unique_path("front") + ".sock";
    engine::ShardedFleetOptions fopts;
    fopts.shards = 2;
    engine::ShardedFleet fleet(fopts);
    engine::FleetServerOptions sopts;
    sopts.uds_path = backend;
    engine::FleetServer server(fleet, sopts);
    server.start();
    engine::ChaosProxyOptions popts;
    popts.listen_uds = front;
    popts.backend_uds = backend;
    popts.seed = 7;
    engine::ChaosProxy proxy(popts);
    proxy.start();

    engine::ResilientClientOptions copts;
    copts.client_name = "bench-resilience";
    copts.max_attempts = 50;
    copts.backoff_base_ms = 1;
    copts.backoff_cap_ms = 20;
    copts.jitter_seed = 7;
    engine::ResilientWireClient client(engine::WireEndpoint{front, 0}, copts);
    const std::uint64_t handle =
        client.add_session(make_spec("printer-A", channels, references));

    // Feed round-robin; sever the live connection every few rounds and
    // time the feed that rides through the reconnect.
    std::vector<std::size_t> offsets(channels.size(), 0);
    const std::size_t total_rounds =
        (frames_per_channel + kChunk - 1) / kChunk;
    const std::size_t kill_every = std::max<std::size_t>(
        1, total_rounds / std::max<std::size_t>(kills + 1, 1));
    std::size_t round = 0;
    bool more = true;
    while (more) {
      more = false;
      const bool kill_now =
          round > 0 && round % kill_every == 0 &&
          recovery_ms.size() < kills;
      if (kill_now) proxy.kill_active();
      for (std::size_t c = 0; c < channels.size(); ++c) {
        const Signal& sig = streams[c];
        const std::size_t off = offsets[c];
        if (off >= sig.frames()) continue;
        const std::size_t hi = std::min(off + kChunk, sig.frames());
        const auto t0 = std::chrono::steady_clock::now();
        const auto out =
            client.feed(handle, channels[c], SignalView(sig).slice(off, hi),
                        off);
        const auto t1 = std::chrono::steady_clock::now();
        if (kill_now && c == 0) {
          recovery_ms.push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
        offsets[c] = out.cursor;
        if (out.cursor < sig.frames()) more = true;
      }
      ++round;
    }
    fleet.flush();
    const auto tel = client.telemetry();
    std::cout << "Part A: reconnect recovery (feed latency through a "
                 "severed connection)\n";
    eval::AsciiTable table({"Kill", "Recovery ms"});
    for (std::size_t i = 0; i < recovery_ms.size(); ++i) {
      table.add_row({std::to_string(i + 1), eval::fmt(recovery_ms[i], 2)});
    }
    table.print(std::cout);
    std::cout << "(reconnects=" << tel.reconnects
              << ", transport_errors=" << tel.transport_errors
              << ", fast_forwarded_frames=" << tel.fast_forwarded_frames
              << ")\n\n";
    proxy.stop();
    server.stop();
  }

  // --- Part B: poll latency isolation under a slow consumer ---------------
  std::vector<double> base_us, slow_us;
  std::size_t write_timeouts = 0;
  {
    engine::ShardedFleetOptions fopts;
    fopts.shards = 2;
    engine::ShardedFleet fleet(fopts);
    const std::size_t id =
        fleet.add_session(make_spec("printer-B", channels, references));
    for (std::size_t c = 0; c < channels.size(); ++c) {
      fleet.feed(id, channels[c], SignalView(streams[c]));
    }
    fleet.flush();

    // TCP with a kernel-assigned port: the slow consumer needs a small
    // SO_RCVBUF to keep its TCP window (and thus the server's reply
    // headroom) tiny, which has no UDS equivalent.
    engine::FleetServerOptions sopts;
    sopts.tcp_port = 0;
    sopts.write_timeout_ms = 200;
    engine::FleetServer server(fleet, sopts);
    server.start();

    engine::WireClient poller =
        engine::WireClient::connect_tcp(server.bound_tcp_port());
    (void)poller.hello("bench-poller");
    auto measure = [&](std::vector<double>& out) {
      for (std::size_t i = 0; i < polls; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        (void)poller.poll_stats(true);
        const auto t1 = std::chrono::steady_clock::now();
        out.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    };
    measure(base_us);

    int slow_fd = -1;
    const std::size_t queued =
        attach_slow_consumer(server.bound_tcp_port(), slow_fd);
    // Give the server's reply stream time to fill the consumer's tiny
    // window and wedge its writer mid-deadline, so the samples below are
    // taken while a connection thread is actually blocked on POLLOUT.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    measure(slow_us);
    // The write deadline must then fire and close the wedged connection.
    const auto wedge_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.stats().write_timeouts == 0 &&
           std::chrono::steady_clock::now() < wedge_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    write_timeouts = server.stats().write_timeouts;
    if (slow_fd >= 0) ::close(slow_fd);

    std::cout << "Part B: POLL_STATS latency, idle vs slow consumer attached\n";
    eval::AsciiTable table({"Phase", "p50 us", "p99 us", "max us"});
    table.add_row({"idle", eval::fmt(percentile(base_us, 0.50), 1),
                   eval::fmt(percentile(base_us, 0.99), 1),
                   eval::fmt(percentile(base_us, 1.0), 1)});
    table.add_row({"slow consumer", eval::fmt(percentile(slow_us, 0.50), 1),
                   eval::fmt(percentile(slow_us, 0.99), 1),
                   eval::fmt(percentile(slow_us, 1.0), 1)});
    table.print(std::cout);
    std::cout << "(slow consumer queued " << queued
              << " unread pings; server write timeouts: " << write_timeouts
              << ")\n";
    server.stop();
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"benchmark\": \"resilience\",\n  \"frames_per_channel\": "
        << frames_per_channel << ",\n  \"reconnect\": {\n    \"kills\": "
        << recovery_ms.size() << ",\n    \"recovery_ms\": [";
    for (std::size_t i = 0; i < recovery_ms.size(); ++i) {
      out << (i ? ", " : "") << recovery_ms[i];
    }
    out << "],\n    \"median_ms\": " << percentile(recovery_ms, 0.5)
        << ",\n    \"max_ms\": " << percentile(recovery_ms, 1.0)
        << "\n  },\n  \"poll_latency\": {\n    \"samples\": " << polls
        << ",\n    \"idle\": {\"p50_us\": " << percentile(base_us, 0.5)
        << ", \"p99_us\": " << percentile(base_us, 0.99)
        << "},\n    \"with_slow_consumer\": {\"p50_us\": "
        << percentile(slow_us, 0.5)
        << ", \"p99_us\": " << percentile(slow_us, 0.99)
        << "},\n    \"write_timeouts\": " << write_timeouts
        << "\n  }\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
