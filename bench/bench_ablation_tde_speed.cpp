// Ablation: TDE implementation speed (the performance half of the TDE
// ablation; the correctness half lives in tests/test_xcorr.cpp and
// tests/test_tde.cpp).
//
// Times one TDEB evaluation at DWM-realistic window shapes for the three
// implementations of the sliding correlation underneath:
//   naive        O(Nx * Ny) direct dot products,
//   complex FFT  full complex transforms + prefix-sum normalization
//                (the pre-rfft implementation, allocating),
//   rfft seq     real-input half-size transforms, one channel at a time
//                on a reusable workspace (the pre-batching production
//                path),
//   batched      all channels through one lane-interleaved BatchedRfftPlan
//                with row-dispatched pre/post passes and the fused
//                clamp+bias+argmax epilogue (the production DWM path,
//                allocation-free), timed under the scalar backend and
//                under the best SIMD backend the host supports.
// All variants return identical delay estimates; only the cost differs.
#include <chrono>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <vector>

#include "core/tde.hpp"
#include "dsp/simd/simd.hpp"
#include "dsp/xcorr.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using namespace nsync::eval;

namespace {

signal::Signal random_signal(std::size_t frames, std::size_t channels,
                             std::uint64_t seed) {
  signal::Rng rng(seed);
  signal::Signal s(frames, channels, 1000.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      s(n, c) = rng.normal();
    }
  }
  return s;
}

// TDEB via the pre-rfft staged pipeline: per-channel complex-FFT sliding
// correlation, averaged, clamped, biased, argmax.  Mirrors the library's
// allocating path with dsp::sliding_pearson_fft_complex underneath.
std::size_t tdeb_complex_fft(const signal::SignalView& x,
                             const signal::SignalView& y, double center,
                             double sigma) {
  const std::size_t n_out = x.frames() - y.frames() + 1;
  std::vector<double> scores(n_out, 0.0);
  std::vector<double> xc(x.frames()), yc(y.frames());
  for (std::size_t c = 0; c < x.channels(); ++c) {
    x.channel_into(c, xc);
    y.channel_into(c, yc);
    const auto s = dsp::sliding_pearson_fft_complex(xc, yc);
    for (std::size_t n = 0; n < n_out; ++n) scores[n] += s[n];
  }
  const double inv_c = 1.0 / static_cast<double>(x.channels());
  for (auto& s : scores) s = std::max(s * inv_c, 0.0);
  auto biased = core::bias_scores(std::move(scores), center, sigma);
  std::size_t best = 0;
  for (std::size_t n = 1; n < biased.size(); ++n) {
    if (biased[n] > biased[best]) best = n;
  }
  return best;
}

// TDEB via the pre-batching production path: per-channel rfft sliding
// correlation on a reusable workspace, averaged, then the fused
// clamp + bias + argmax epilogue.
std::size_t tdeb_rfft_sequential(const signal::SignalView& x,
                                 const signal::SignalView& y, double center,
                                 double sigma, core::TdeWorkspace& ws) {
  const std::size_t n_out = x.frames() - y.frames() + 1;
  ws.scores.assign(n_out, 0.0);
  ws.chan_scores.resize(n_out);
  ws.x_chan.resize(x.frames());
  ws.y_chan.resize(y.frames());
  for (std::size_t c = 0; c < x.channels(); ++c) {
    x.channel_into(c, ws.x_chan);
    y.channel_into(c, ws.y_chan);
    dsp::sliding_pearson_fft_into(ws.x_chan, ws.y_chan, ws.chan_scores,
                                  ws.pearson);
    for (std::size_t n = 0; n < n_out; ++n) ws.scores[n] += ws.chan_scores[n];
  }
  const double inv_c = 1.0 / static_cast<double>(x.channels());
  for (auto& s : ws.scores) s *= inv_c;
  ws.bias_w.resize(n_out);
  for (std::size_t j = 0; j < n_out; ++j) {
    const double d = (static_cast<double>(j) - center) / sigma;
    ws.bias_w[j] = std::exp(-0.5 * d * d);
  }
  return dsp::simd::ops().clamp_weight_argmax(ws.scores.data(),
                                              ws.bias_w.data(), n_out);
}

// Per-call microseconds: repeat until ~100 ms of wall time accumulates.
template <typename F>
double time_us(F&& f) {
  using clock = std::chrono::steady_clock;
  f();  // warm caches / workspaces
  std::size_t reps = 0;
  const auto t0 = clock::now();
  double elapsed = 0.0;
  do {
    f();
    ++reps;
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  } while (elapsed < 0.1);
  return 1e6 * elapsed / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "ABLATION: TDE implementation speed (one TDEB evaluation)\n"
            << "naive vs complex-FFT vs rfft-fused sliding correlation;\n"
            << "shapes follow the DWM search (x = extended reference\n"
            << "window, y = observed window, 6 channels).\n\n";

  namespace simd = nsync::dsp::simd;
  const simd::Isa best = simd::best_supported_isa();
  std::cout << "dispatch: best backend = " << simd::isa_name(best) << "\n\n";

  AsciiTable table({"n_win", "n_ext", "naive (us)", "complex FFT (us)",
                    "rfft seq (us)", "batched scalar (us)",
                    "batched simd (us)", "simd speedup", "total speedup"});
  struct Shape {
    std::size_t n_win, n_ext;
  };
  for (const Shape shape : {Shape{400, 100}, Shape{1600, 400},
                            Shape{6400, 1600}}) {
    const std::size_t channels = 6;
    const auto x = random_signal(shape.n_win + 2 * shape.n_ext, channels, 7);
    const auto y = random_signal(shape.n_win, channels, 8);
    const double center = static_cast<double>(shape.n_ext);
    const double sigma = 0.5 * static_cast<double>(shape.n_ext);

    core::TdeOptions naive_opts;
    naive_opts.use_fft = false;
    core::TdeWorkspace ws;
    const double t_naive = time_us([&] {
      auto j = core::estimate_delay_biased(x, y, center, sigma, naive_opts);
      (void)j;
    });
    const double t_complex = time_us(
        [&] { (void)tdeb_complex_fft(x, y, center, sigma); });
    const double t_seq = time_us([&] {
      auto j = tdeb_rfft_sequential(x, y, center, sigma, ws);
      (void)j;
    });
    simd::set_backend(simd::Isa::kScalar);
    const double t_batched_scalar = time_us([&] {
      auto j = core::estimate_delay_biased(x, y, center, sigma, {}, ws);
      (void)j;
    });
    simd::set_backend(best);
    const double t_batched_simd = time_us([&] {
      auto j = core::estimate_delay_biased(x, y, center, sigma, {}, ws);
      (void)j;
    });

    table.add_row({std::to_string(shape.n_win), std::to_string(shape.n_ext),
                   fmt(t_naive, 1), fmt(t_complex, 1), fmt(t_seq, 1),
                   fmt(t_batched_scalar, 1), fmt(t_batched_simd, 1),
                   fmt(t_batched_scalar / t_batched_simd, 1) + "x",
                   fmt(t_naive / t_batched_simd, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "\n(simd speedup isolates the vector backend at fixed\n"
            << "batching; total speedup is the production path vs the naive\n"
            << "seed.  On AVX2 hosts the batched plan runs near parity with\n"
            << "the sequential rfft path -- its win is on scalar hosts and\n"
            << "in plan/workspace reuse -- so the per-core gain comes from\n"
            << "the dispatched kernels, not the batching alone.)\n";
  return 0;
}
