// Ablation: TDE implementation speed (the performance half of the TDE
// ablation; the correctness half lives in tests/test_xcorr.cpp and
// tests/test_tde.cpp).
//
// Times one TDEB evaluation at DWM-realistic window shapes for the three
// implementations of the sliding correlation underneath:
//   naive        O(Nx * Ny) direct dot products,
//   complex FFT  full complex transforms + prefix-sum normalization
//                (the pre-rfft implementation, allocating),
//   rfft fused   real-input half-size transforms on a reusable workspace
//                with scoring, clamp, bias and argmax fused in one pass
//                (the production DWM path, allocation-free).
// All three return identical delay estimates; only the cost differs.
#include <chrono>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <vector>

#include "core/tde.hpp"
#include "dsp/xcorr.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using namespace nsync::eval;

namespace {

signal::Signal random_signal(std::size_t frames, std::size_t channels,
                             std::uint64_t seed) {
  signal::Rng rng(seed);
  signal::Signal s(frames, channels, 1000.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      s(n, c) = rng.normal();
    }
  }
  return s;
}

// TDEB via the pre-rfft staged pipeline: per-channel complex-FFT sliding
// correlation, averaged, clamped, biased, argmax.  Mirrors the library's
// allocating path with dsp::sliding_pearson_fft_complex underneath.
std::size_t tdeb_complex_fft(const signal::SignalView& x,
                             const signal::SignalView& y, double center,
                             double sigma) {
  const std::size_t n_out = x.frames() - y.frames() + 1;
  std::vector<double> scores(n_out, 0.0);
  std::vector<double> xc(x.frames()), yc(y.frames());
  for (std::size_t c = 0; c < x.channels(); ++c) {
    x.channel_into(c, xc);
    y.channel_into(c, yc);
    const auto s = dsp::sliding_pearson_fft_complex(xc, yc);
    for (std::size_t n = 0; n < n_out; ++n) scores[n] += s[n];
  }
  const double inv_c = 1.0 / static_cast<double>(x.channels());
  for (auto& s : scores) s = std::max(s * inv_c, 0.0);
  auto biased = core::bias_scores(std::move(scores), center, sigma);
  std::size_t best = 0;
  for (std::size_t n = 1; n < biased.size(); ++n) {
    if (biased[n] > biased[best]) best = n;
  }
  return best;
}

// Per-call microseconds: repeat until ~100 ms of wall time accumulates.
template <typename F>
double time_us(F&& f) {
  using clock = std::chrono::steady_clock;
  f();  // warm caches / workspaces
  std::size_t reps = 0;
  const auto t0 = clock::now();
  double elapsed = 0.0;
  do {
    f();
    ++reps;
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  } while (elapsed < 0.1);
  return 1e6 * elapsed / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "ABLATION: TDE implementation speed (one TDEB evaluation)\n"
            << "naive vs complex-FFT vs rfft-fused sliding correlation;\n"
            << "shapes follow the DWM search (x = extended reference\n"
            << "window, y = observed window, 6 channels).\n\n";

  AsciiTable table({"n_win", "n_ext", "naive (us)", "complex FFT (us)",
                    "rfft fused (us)", "fft speedup", "rfft speedup"});
  struct Shape {
    std::size_t n_win, n_ext;
  };
  for (const Shape shape : {Shape{400, 100}, Shape{1600, 400},
                            Shape{6400, 1600}}) {
    const std::size_t channels = 6;
    const auto x = random_signal(shape.n_win + 2 * shape.n_ext, channels, 7);
    const auto y = random_signal(shape.n_win, channels, 8);
    const double center = static_cast<double>(shape.n_ext);
    const double sigma = 0.5 * static_cast<double>(shape.n_ext);

    core::TdeOptions naive_opts;
    naive_opts.use_fft = false;
    core::TdeWorkspace ws;
    const double t_naive = time_us([&] {
      auto j = core::estimate_delay_biased(x, y, center, sigma, naive_opts);
      (void)j;
    });
    const double t_complex = time_us(
        [&] { (void)tdeb_complex_fft(x, y, center, sigma); });
    const double t_fused = time_us([&] {
      auto j = core::estimate_delay_biased(x, y, center, sigma, {}, ws);
      (void)j;
    });

    table.add_row({std::to_string(shape.n_win), std::to_string(shape.n_ext),
                   fmt(t_naive, 1), fmt(t_complex, 1), fmt(t_fused, 1),
                   fmt(t_naive / t_complex, 1) + "x",
                   fmt(t_naive / t_fused, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "\n(rfft-fused over complex FFT is the PR-level win; both\n"
            << "dominate naive at production window sizes)\n";
  return 0;
}
