// Extension experiment (beyond the paper): multi-channel fusion.
//
// Section VIII-B observes that h_disp is a property of the printing
// process, not of any single side channel — so per-channel NSYNC verdicts
// carry partially independent errors and can be fused.  This bench
// compares single-channel NSYNC/DWM against ACC+AUD(+MAG) fusion under
// each voting rule and the learned-weight policy, then stress-tests the
// score-based WeightedPolicy against majority voting under sensor faults:
// at every fault rate the weighted arm's decision threshold is swept over
// its recorded fused scores and its TPR is read at the majority arm's
// FPR (or tighter).  A continuous score can only refine the operating
// points a 2-of-3 vote offers, so weighted TPR should dominate.
//
//   ./bench_ext_fusion [common eval flags] [--json path]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/fusion.hpp"
#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/fault_tolerance.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

namespace {

/// Best achievable operating point (max TPR, then min FPR) with
/// FPR <= target, over thresholds drawn from the recorded scores
/// (verdict = score > threshold).
struct MatchedPoint {
  double threshold = 0.0;
  double fpr = 0.0;
  double tpr = 0.0;
};

MatchedPoint tpr_at_matched_fpr(const std::vector<double>& scores,
                                const std::vector<std::uint8_t>& malicious,
                                double target_fpr) {
  std::size_t pos = 0, neg = 0;
  for (std::uint8_t m : malicious) (m ? pos : neg)++;
  std::vector<double> cand = scores;
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  MatchedPoint best;
  best.threshold = cand.empty() ? 0.0 : cand.back();
  bool found = false;
  for (double t : cand) {
    std::size_t tp = 0, fp = 0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (scores[i] > t) (malicious[i] ? tp : fp)++;
    }
    const double fpr =
        neg == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(neg);
    const double tpr =
        pos == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(pos);
    if (fpr <= target_fpr + 1e-12 &&
        (!found || tpr > best.tpr ||
         (tpr == best.tpr && fpr < best.fpr))) {
      best = {t, fpr, tpr};
      found = true;
    }
  }
  return best;
}

struct SweepRow {
  double rate = 0.0;
  double majority_fpr = 0.0;
  double majority_tpr = 0.0;
  double weighted_native_fpr = 0.0;
  double weighted_native_tpr = 0.0;
  MatchedPoint weighted;
};

struct PrinterSweep {
  PrinterKind printer = PrinterKind::kUm3;
  std::vector<SweepRow> rows;
};

void emit_json(const std::string& path, const EvalScale& scale,
               const std::vector<PrinterSweep>& sweeps) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"fusion\",\n  \"seed\": " << scale.seed
      << ",\n  \"criterion\": \"weighted_tpr >= majority_tpr at matched"
         " FPR on every point\",\n  \"printers\": [\n";
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    const PrinterSweep& ps = sweeps[s];
    out << "    {\"printer\": \"" << printer_name(ps.printer)
        << "\", \"points\": [\n";
    for (std::size_t i = 0; i < ps.rows.size(); ++i) {
      const SweepRow& r = ps.rows[i];
      out << "      {\"fault_rate\": " << r.rate
          << ", \"majority_fpr\": " << r.majority_fpr
          << ", \"majority_tpr\": " << r.majority_tpr
          << ", \"weighted_fpr\": " << r.weighted.fpr
          << ", \"weighted_tpr\": " << r.weighted.tpr
          << ", \"weighted_threshold\": " << r.weighted.threshold
          << ", \"weighted_native_fpr\": " << r.weighted_native_fpr
          << ", \"weighted_native_tpr\": " << r.weighted_native_tpr << "}"
          << (i + 1 < ps.rows.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (s + 1 < sweeps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Extract the bench-local --json flag before the shared parser sees it.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  CliOptions opt;
  try {
    opt = CliOptions::parse(static_cast<int>(args.size()), args.data());
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]) << "  --json path        write "
              << "BENCH_fusion.json-style results\n";
    return 0;
  }
  opt.configure_runtime();

  std::cout << "EXTENSION: multi-channel fusion of NSYNC/DWM verdicts\n"
            << "(expected shape: 'any' keeps TPR 1.00 and can only raise\n"
            << " FPR; 'majority'/'all' trade TPR for a lower FPR; "
               "'weighted'\n matches the best vote on clean data and "
               "dominates majority\n at matched FPR once sensors fault)\n\n";

  const std::vector<sensors::SideChannel> kFused = {
      sensors::SideChannel::kAcc, sensors::SideChannel::kAud,
      sensors::SideChannel::kMag};

  std::vector<PrinterSweep> sweeps;
  AsciiTable table({"Printer", "Detector", "FPR/TPR", "Accuracy"});
  AsciiTable matched({"Printer", "FaultRate", "Majority FPR/TPR",
                      "Weighted FPR/TPR@match", "Thresh", "Verdict"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, kFused,
               opt.verbose ? [](std::size_t d, std::size_t t) {
                 std::cerr << "\rsimulating " << d << "/" << t << std::flush;
               } : Dataset::ProgressFn{});
    if (opt.verbose) std::cerr << "\n";

    // Single-channel rows for comparison.
    std::map<sensors::SideChannel, ChannelData> data;
    for (sensors::SideChannel ch : kFused) {
      data.emplace(ch, ds.channel_data(ch, Transform::kRaw));
      const NsyncResult r =
          run_nsync(data.at(ch), printer, core::SyncMethod::kDwm, 0.3);
      table.add_row({printer_name(printer),
                     sensors::side_channel_name(ch) + " alone",
                     r.overall.fpr_tpr(),
                     fmt(r.overall.balanced_accuracy())});
    }

    // Fusion rows: the three voting rules plus the learned-weight policy.
    auto fused_row = [&](std::shared_ptr<core::FusionPolicy> policy,
                         const std::string& label) {
      core::FusionIds fused(std::move(policy));
      for (sensors::SideChannel ch : kFused) {
        core::NsyncConfig cfg;
        cfg.sync = core::SyncMethod::kDwm;
        cfg.dwm = dwm_params_for(printer, data.at(ch).sample_rate);
        cfg.r = 0.3;
        fused.add_channel(sensors::side_channel_name(ch),
                          data.at(ch).reference.signal, cfg);
      }
      std::vector<core::FusionIds::SignalMap> train;
      for (std::size_t i = 0; i < data.at(kFused[0]).train.size(); ++i) {
        core::FusionIds::SignalMap run;
        for (sensors::SideChannel ch : kFused) {
          run[sensors::side_channel_name(ch)] =
              data.at(ch).train[i].signal;
        }
        train.push_back(std::move(run));
      }
      fused.fit(train);

      Confusion c;
      for (std::size_t i = 0; i < data.at(kFused[0]).test.size(); ++i) {
        core::FusionIds::SignalMap obs;
        for (sensors::SideChannel ch : kFused) {
          obs[sensors::side_channel_name(ch)] =
              data.at(ch).test[i].sig.signal;
        }
        c.add(fused.detect(obs).intrusion,
              data.at(kFused[0]).test[i].malicious);
      }
      table.add_row({printer_name(printer), "fusion(" + label + ")",
                     c.fpr_tpr(), fmt(c.balanced_accuracy())});
    };
    for (core::FusionRule rule :
         {core::FusionRule::kAny, core::FusionRule::kMajority,
          core::FusionRule::kAll}) {
      fused_row(std::make_shared<core::VotingPolicy>(rule),
                core::fusion_rule_name(rule));
    }
    fused_row(std::make_shared<core::WeightedPolicy>(), "weighted");

    // Fault-injection sweep: majority voting vs the weighted policy read
    // at the majority arm's FPR.  Same health knobs as the fault bench:
    // short benchmark prints need offline_consecutive sized to fire.
    core::HealthPolicy health;
    health.history = 12;
    health.offline_consecutive = 6;
    health.recovery_consecutive = 8;
    const std::vector<double> kRates = {0.0, 0.005, 0.01, 0.02, 0.05};

    const FaultSweepResult maj =
        run_fault_sweep(data, printer, kRates, opt.scale.seed,
                        core::FusionRule::kMajority, /*r=*/0.3, health);
    const FaultSweepResult wgt = run_fault_sweep(
        data, printer, kRates, opt.scale.seed,
        std::make_shared<core::WeightedPolicy>(), /*r=*/0.3, health);

    PrinterSweep ps;
    ps.printer = printer;
    for (std::size_t p = 0; p < kRates.size(); ++p) {
      const FaultSweepPoint& mp = maj.points[p];
      const FaultSweepPoint& wp = wgt.points[p];
      SweepRow row;
      row.rate = kRates[p];
      row.majority_fpr = mp.fused.fpr();
      row.majority_tpr = mp.fused.tpr();
      row.weighted_native_fpr = wp.fused.fpr();
      row.weighted_native_tpr = wp.fused.tpr();
      row.weighted =
          tpr_at_matched_fpr(wp.fused_scores, wp.malicious, row.majority_fpr);
      const char* verdict = row.weighted.tpr > row.majority_tpr ? ">"
                            : row.weighted.tpr == row.majority_tpr ? "="
                                                                   : "<";
      matched.add_row(
          {printer_name(printer), fmt(row.rate, 3),
           mp.fused.fpr_tpr(),
           fmt(row.weighted.fpr, 2) + " / " + fmt(row.weighted.tpr, 2),
           fmt(row.weighted.threshold, 3), verdict});
      ps.rows.push_back(row);
    }
    sweeps.push_back(std::move(ps));
  }
  table.print(std::cout);
  std::cout << "\nFault sweep — weighted TPR at the majority arm's FPR\n";
  matched.print(std::cout);

  if (!json_path.empty()) emit_json(json_path, opt.scale, sweeps);
  return 0;
}
