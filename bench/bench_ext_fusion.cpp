// Extension experiment (beyond the paper): multi-channel fusion.
//
// Section VIII-B observes that h_disp is a property of the printing
// process, not of any single side channel — so per-channel NSYNC verdicts
// carry partially independent errors and can be fused.  This bench
// compares single-channel NSYNC/DWM against ACC+AUD(+MAG) fusion under
// each fusion rule.
#include <iostream>

#include "core/fusion.hpp"
#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "EXTENSION: multi-channel fusion of NSYNC/DWM verdicts\n"
            << "(expected shape: 'any' keeps TPR 1.00 and can only raise\n"
            << " FPR; 'majority'/'all' trade TPR for a lower FPR)\n\n";

  const std::vector<sensors::SideChannel> kFused = {
      sensors::SideChannel::kAcc, sensors::SideChannel::kAud,
      sensors::SideChannel::kMag};

  AsciiTable table({"Printer", "Detector", "FPR/TPR", "Accuracy"});
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, kFused,
               opt.verbose ? [](std::size_t d, std::size_t t) {
                 std::cerr << "\rsimulating " << d << "/" << t << std::flush;
               } : Dataset::ProgressFn{});
    if (opt.verbose) std::cerr << "\n";

    // Single-channel rows for comparison.
    std::map<sensors::SideChannel, ChannelData> data;
    for (sensors::SideChannel ch : kFused) {
      data.emplace(ch, ds.channel_data(ch, Transform::kRaw));
      const NsyncResult r =
          run_nsync(data.at(ch), printer, core::SyncMethod::kDwm, 0.3);
      table.add_row({printer_name(printer),
                     sensors::side_channel_name(ch) + " alone",
                     r.overall.fpr_tpr(),
                     fmt(r.overall.balanced_accuracy())});
    }

    // Fusion rows.
    for (core::FusionRule rule :
         {core::FusionRule::kAny, core::FusionRule::kMajority,
          core::FusionRule::kAll}) {
      core::FusionIds fused(rule);
      for (sensors::SideChannel ch : kFused) {
        core::NsyncConfig cfg;
        cfg.sync = core::SyncMethod::kDwm;
        cfg.dwm = dwm_params_for(printer, data.at(ch).sample_rate);
        cfg.r = 0.3;
        fused.add_channel(sensors::side_channel_name(ch),
                          data.at(ch).reference.signal, cfg);
      }
      std::vector<core::FusionIds::SignalMap> train;
      for (std::size_t i = 0; i < data.at(kFused[0]).train.size(); ++i) {
        core::FusionIds::SignalMap run;
        for (sensors::SideChannel ch : kFused) {
          run[sensors::side_channel_name(ch)] =
              data.at(ch).train[i].signal;
        }
        train.push_back(std::move(run));
      }
      fused.fit(train);

      Confusion c;
      for (std::size_t i = 0; i < data.at(kFused[0]).test.size(); ++i) {
        core::FusionIds::SignalMap obs;
        for (sensors::SideChannel ch : kFused) {
          obs[sensors::side_channel_name(ch)] =
              data.at(ch).test[i].sig.signal;
        }
        c.add(fused.detect(obs).intrusion,
              data.at(kFused[0]).test[i].malicious);
      }
      table.add_row({printer_name(printer),
                     "fusion(" + core::fusion_rule_name(rule) + ")",
                     c.fpr_tpr(), fmt(c.balanced_accuracy())});
    }
  }
  table.print(std::cout);
  return 0;
}
