// Regenerates Fig. 11: average time it takes DWM and DTW to dynamically
// synchronize one second of the spectrograms of the side-channel signals
// (the "time ratio").  The paper's shape: DTW is orders of magnitude
// slower than DWM even with FastDTW at the smallest radius.
#include <iostream>

#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
#include <algorithm>

#include "eval/table.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  opt.configure_runtime();

  std::cout << "FIG. 11: seconds of compute per second of spectrogram signal\n"
            << "for REAL-TIME operation.  DWM is causal (one pass == live\n"
            << "operation); DTW must re-run on the grown prefix at every new\n"
            << "hop of data.  A single offline DTW pass is shown for\n"
            << "transparency.  (paper shape: DTW uses far more compute)\n\n";

  AsciiTable table({"Printer", "Side Ch.", "DWM live (s/s)", "DTW live (s/s)",
                    "DTW offline (s/s)", "live DTW/DWM"});
  double dwm_total = 0.0, dtw_total = 0.0;
  std::size_t cells = 0;
  for (PrinterKind printer : opt.printers) {
    EvalScale scale = opt.scale;
    scale.train_count = 0;
    scale.benign_test_count = 1;
    scale.malicious_per_attack = 0;
    // A taller object: streaming DTW's cost per signal-second grows
    // linearly with the print length (quadratic total), so the gap to DWM
    // widens with realistic print durations.  DWM's cost is constant.
    scale.object_height *= 3.0;
    Dataset ds(printer, scale, table_channels());
    for (sensors::SideChannel ch : ds.channels()) {
      const ChannelData data = ds.channel_data(ch, Transform::kSpectrogram);
      const SyncSpeed s = measure_sync_speed(data, printer);
      table.add_row({printer_name(printer), sensors::side_channel_name(ch),
                     fmt(s.dwm_seconds_per_signal_second, 5),
                     fmt(s.dtw_seconds_per_signal_second, 5),
                     fmt(s.dtw_offline_seconds_per_signal_second, 5),
                     fmt(s.dtw_seconds_per_signal_second /
                             std::max(1e-12, s.dwm_seconds_per_signal_second),
                         1) + "x"});
      dwm_total += s.dwm_seconds_per_signal_second;
      dtw_total += s.dtw_seconds_per_signal_second;
      ++cells;
    }
  }
  table.print(std::cout);
  if (cells > 0) {
    std::cout << "\naverage over side channels: DWM "
              << fmt(dwm_total / cells, 5) << " s/s, DTW "
              << fmt(dtw_total / cells, 5) << " s/s ("
              << fmt(dtw_total / std::max(1e-12, dwm_total), 1)
              << "x slower)\n";
  }
  return 0;
}
