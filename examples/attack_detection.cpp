// Example: the full Table I attack roster against an NSYNC/DWM IDS on one
// printer, with per-attack detection breakdown over two side channels.
//
// This is the workload the paper's introduction motivates: an attacker
// mutates the G-code (void insertion, infill change, speed/scale/layer
// tampering); the defender watches side channels and must flag every
// mutated print while passing benign reprints.
//
// Run: ./build/examples/attack_detection [--printer UM3|RM3] [--tiny] ...
#include <iostream>
#include <map>

#include "eval/dataset.hpp"
#include "eval/options.hpp"
#include "eval/setup.hpp"
#include "eval/table.hpp"
#include "core/nsync.hpp"

using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  CliOptions opt;
  try {
    opt = CliOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (opt.help) {
    std::cout << CliOptions::usage(argv[0]);
    return 0;
  }
  const PrinterKind printer = opt.printers.front();

  std::cout << "Simulating the Table I process roster on "
            << printer_name(printer) << " ...\n";
  Dataset ds(printer, opt.scale,
             {sensors::SideChannel::kAcc, sensors::SideChannel::kAud});

  int failures = 0;
  for (sensors::SideChannel ch :
       {sensors::SideChannel::kAcc, sensors::SideChannel::kAud}) {
    const ChannelData data = ds.channel_data(ch, Transform::kRaw);

    core::NsyncConfig cfg;
    cfg.sync = core::SyncMethod::kDwm;
    cfg.dwm = dwm_params_for(printer, data.sample_rate);
    cfg.r = 0.3;
    core::NsyncIds ids(data.reference.signal, cfg);
    std::vector<core::Analysis> analyses;
    for (const auto& s : data.train) analyses.push_back(ids.analyze(s.signal));
    ids.fit_from_analyses(analyses);

    std::map<std::string, std::pair<int, int>> per_label;  // detected/total
    for (const auto& t : data.test) {
      const core::Detection d = ids.detect(ids.analyze(t.sig.signal));
      auto& [detected, total] = per_label[t.label];
      ++total;
      if (d.intrusion) ++detected;
    }

    std::cout << "\n=== " << sensors::side_channel_name(ch)
              << " (raw) — thresholds: c_c=" << fmt(ids.thresholds().c_c, 1)
              << " h_c=" << fmt(ids.thresholds().h_c, 1)
              << " v_c=" << fmt(ids.thresholds().v_c, 3) << " ===\n";
    AsciiTable table({"process", "flagged", "expected"});
    for (const auto& [label, counts] : per_label) {
      const bool benign = label == "Benign";
      table.add_row({label,
                     std::to_string(counts.first) + "/" +
                         std::to_string(counts.second),
                     benign ? "0 (benign)" : "all (malicious)"});
      if (benign && counts.first > counts.second / 10) ++failures;
      if (!benign && counts.first < counts.second) ++failures;
    }
    table.print(std::cout);
  }
  std::cout << "\n" << (failures == 0 ? "all processes classified correctly"
                                      : "some processes misclassified")
            << "\n";
  return failures == 0 ? 0 : 1;
}
