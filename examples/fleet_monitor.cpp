// Fleet monitoring quickstart: several printers watched at once — in
// process, sharded across cores, or over the fleet daemon's socket.
//
// Each session simulates one concurrent print job with two side channels
// (accelerometer-like and audio-like pseudo signals).  Most sessions
// stream benign observations; one streams a tampered print.  Three modes:
//
//   * default (--shards 0): the original single MonitorEngine path —
//     frames via feed(), window processing in poll() on the shared pool.
//   * --shards N (N >= 1): a ShardedFleet partitions the sessions across
//     N worker shards, each with a private engine and a bounded frame
//     queue.  Verdicts are bitwise identical to the unsharded path.
//   * --connect <uds-path>: client mode — the same dataset is replayed
//     over the NSFP wire protocol to a running fleet_daemon through
//     ResilientWireClient; sessions are admitted with ADD_SESSION (the
//     daemon re-attaches by name, so fresh and resumed daemons take the
//     same path), frames stream via FEED at explicit absolute offsets,
//     and the final verdicts come back from POLL_STATS.  With --retry N
//     the client survives up to N reconnects per call (daemon restart,
//     dropped connection, kBusy admission rejection) and resyncs its feed
//     cursors from the daemon's frames_fed offsets, so no frame is ever
//     double-counted.  Without --retry, a refused connection or a mid-run
//     disconnect exits with code 3 (transport failure) and a clear
//     message; daemon-side typed errors keep exiting with code 2.
//   * --listen <uds-path>: serve an (initially empty) fleet over a socket
//     — a minimal in-example daemon; see fleet_daemon for the real one.
//
// Crash-safe operation: with `--checkpoint <dir>` the engine atomically
// writes `<dir>/fleet.nckp` (`fleet.<shard>.nckp` per shard when sharded)
// after every poll round.  If the process dies (power cut, OOM kill,
// SIGKILL), relaunching with `--resume` restores the fleet from the
// checkpoint and resumes each channel's stream exactly where it left off —
// the final verdicts are identical to a run that was never interrupted
// (the CI crash-recovery job pins this).
//
// Drift adaptation: with `--rounds R --baseline-dir <dir>` the example
// switches to print-at-a-time operation.  Each round admits every printer
// as a fresh session (one print job), streams it to completion, prints the
// verdict, then evicts it — and eviction folds the print's benign feature
// maxima into the per-shard baseline registry, so the *next* round's
// admissions resolve drift-adapted OCC thresholds instead of the factory
// calibration.  The attacked printer alarms every round, so its folds stay
// frozen and never poison the baseline.  The registry persists to
// `<dir>/baselines.<shard>.nbrg` and rides inside the fleet checkpoints,
// so `--resume` continues adaptation exactly where the crash left it.
//
// Fusion: `--fusion any|majority|all|weighted` selects how per-channel
// verdicts combine.  The rule names are the boolean votes; `weighted`
// fits per-channel reliability weights on the calibration prints and
// fuses continuous anomaly scores (see core/fusion.hpp).  The policy is
// serialized into checkpoints and ADD_SESSION specs, so resumed and
// networked runs keep fusing identically.
//
//   ./fleet_monitor [sessions] [attack_session]
//                   [--shards N] [--connect <uds> [--retry N]]
//                   [--listen <uds>]
//                   [--checkpoint <dir>] [--resume] [--pace-ms <n>]
//                   [--fusion any|majority|all|weighted]
//                   [--rounds R --baseline-dir <dir> [--model <name>]]
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fusion.hpp"
#include "core/nsync.hpp"
#include "engine/fleet_server.hpp"
#include "engine/monitor_engine.hpp"
#include "engine/resilient_client.hpp"
#include "engine/sharded_fleet.hpp"
#include "engine/wire_client.hpp"
#include "signal/checkpoint.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using nsync::signal::Rng;
using nsync::signal::Signal;

namespace {

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  // Timing error is mean-reverting (a servo tracking the toolpath), not a
  // random walk: an AR(1) offset keeps every print's drift envelope
  // consistent, so thresholds calibrated on a few prints bound the rest.
  double offset = 0.0;
  std::vector<double> row(b.channels());
  for (std::size_t n = 0; n + 1 < b.frames(); ++n) {
    offset = 0.995 * offset + rng.normal(0.0, 0.02);
    const double src = std::clamp(static_cast<double>(n) + offset, 0.0,
                                  static_cast<double>(b.frames() - 1));
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
  }
  return a;
}

/// Benign stream with the middle third replaced by an unrelated toolpath.
Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
  }
  return a;
}

const char* health_name(core::ChannelHealth h) {
  switch (h) {
    case core::ChannelHealth::kHealthy: return "healthy";
    case core::ChannelHealth::kDegraded: return "degraded";
    case core::ChannelHealth::kOffline: return "offline";
  }
  return "?";
}

const char* health_name_u8(std::uint8_t h) {
  return health_name(static_cast<core::ChannelHealth>(h));
}

/// Machine-readable verdict line; stable across clean, killed-and-resumed
/// and networked runs (the CI crash-recovery and fleet-daemon jobs diff
/// these).
void print_verdict(const engine::SessionSnapshot& snap) {
  std::cout << "verdict " << snap.name << " "
            << (snap.intrusion ? "INTRUSION" : "benign") << " window="
            << snap.first_alarm_window << " windows=" << snap.windows;
  for (const auto& ch : snap.channels) {
    std::cout << " " << ch.name << "="
              << (ch.detection.intrusion ? "alarm" : "ok") << "/"
              << health_name(ch.health);
  }
  std::cout << "\n";
}

void print_verdict(const engine::wire::StatsSession& s) {
  std::cout << "verdict " << s.name << " "
            << (s.intrusion != 0 ? "INTRUSION" : "benign") << " window="
            << s.first_alarm_window << " windows=" << s.windows;
  for (const auto& ch : s.channels) {
    std::cout << " " << ch.name << "=" << (ch.alarm != 0 ? "alarm" : "ok")
              << "/" << health_name_u8(ch.health);
  }
  std::cout << "\n";
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Dataset {
  std::vector<std::string> channels;
  std::vector<Signal> references;
  std::vector<core::Thresholds> thresholds;
  /// Benign calibration anomaly scores, [run][channel] — the training
  /// input for --fusion weighted.  Deterministic, so a resumed or
  /// networked run refits the exact same reliability weights.
  std::vector<std::vector<double>> calib_scores;
  std::vector<std::vector<Signal>> streams;  // [session][channel]
  core::NsyncConfig cfg;
};

/// Everything is a deterministic function of (n_sessions, attack_session),
/// so an interrupted feeder — local or remote — regenerates the exact
/// streams and fast-forwards to the recorded offsets.
Dataset build_dataset(std::size_t n_sessions, std::size_t attack_session,
                      bool calibrate) {
  constexpr std::size_t kFrames = 6144;
  Dataset d;
  d.cfg.sync = core::SyncMethod::kDwm;
  d.cfg.dwm.n_win = 64;
  d.cfg.dwm.n_hop = 32;
  d.cfg.dwm.n_ext = 24;
  d.cfg.dwm.n_sigma = 12.0;
  d.cfg.dwm.eta = 0.2;
  // A wider OCC margin than the paper's default 0.3: these synthetic
  // benign prints are re-drawn per run/round, and 0.3 over a handful of
  // calibration prints leaves the tail of the benign v-distance
  // distribution above the threshold (sporadic false alarms).
  d.cfg.r = 0.55;
  d.channels = {"ACC", "AUD"};
  for (std::size_t c = 0; c < d.channels.size(); ++c) {
    d.references.push_back(make_reference(kFrames, 7 + c));
  }
  if (calibrate) {
    // Calibrate each channel's thresholds once on benign prints, then
    // share them across the fleet.
    constexpr std::size_t kCalibRuns = 5;
    d.calib_scores.assign(kCalibRuns,
                          std::vector<double>(d.channels.size(), 0.0));
    for (std::size_t c = 0; c < d.channels.size(); ++c) {
      core::NsyncIds ids(d.references[c], d.cfg);
      std::vector<Signal> train;
      for (std::uint64_t s = 0; s < kCalibRuns; ++s) {
        train.push_back(benign_observation(d.references[c], 20 * (s + 1) + c));
      }
      ids.fit(train);
      d.thresholds.push_back(ids.thresholds());
      // Score each calibration print against the fitted thresholds; the
      // weighted fusion policy learns its reliability weights from these.
      for (std::size_t s = 0; s < kCalibRuns; ++s) {
        d.calib_scores[s][c] = core::channel_score(
            ids.analyze(train[s]).features, ids.thresholds());
      }
    }
  }
  d.streams.resize(n_sessions);
  for (std::size_t s = 0; s < n_sessions; ++s) {
    for (std::size_t c = 0; c < d.channels.size(); ++c) {
      d.streams[s].push_back(
          s == attack_session
              ? malicious_observation(d.references[c], 900 + 3 * s + c)
              : benign_observation(d.references[c], 900 + 3 * s + c));
    }
  }
  return d;
}

/// Builds the session fusion policy for --fusion: a voting policy for the
/// rule names, or a WeightedPolicy fitted on the dataset's calibration
/// scores.  parse_fusion_rule rejects unknown names listing the valid set.
std::shared_ptr<const core::FusionPolicy> make_policy(
    const std::string& fusion, const Dataset& d) {
  if (fusion == "weighted") {
    auto policy = std::make_shared<core::WeightedPolicy>();
    if (!d.calib_scores.empty()) policy->fit(d.channels, d.calib_scores);
    return policy;
  }
  return std::make_shared<core::VotingPolicy>(core::parse_fusion_rule(fusion));
}

engine::SessionSpec make_spec(
    const Dataset& d, std::size_t s, const std::string& model = "",
    std::shared_ptr<const core::FusionPolicy> policy = nullptr) {
  engine::SessionSpec spec;
  spec.name = "printer-" + std::to_string(s);
  spec.model = model;
  spec.rule = core::FusionRule::kAny;
  spec.policy = std::move(policy);
  for (std::size_t c = 0; c < d.channels.size(); ++c) {
    engine::ChannelSpec ch;
    ch.name = d.channels[c];
    ch.reference = d.references[c];
    ch.config = d.cfg;
    ch.thresholds = d.thresholds[c];
    spec.channels.push_back(std::move(ch));
  }
  return spec;
}

/// Adaptive rounds mode (--rounds R with --baseline-dir): print-at-a-time
/// operation with per-device baseline adaptation between prints.  Every
/// quantity is a deterministic function of (sessions, attack, round), so a
/// killed run relaunched with --resume replays the remaining prints
/// bitwise identically — the CI crash-recovery job diffs the union of the
/// verdict lines and the final hexfloat registry dump against a clean run.
int run_rounds(std::size_t n_sessions, std::size_t attack_session,
               std::size_t rounds, std::size_t shards,
               const std::string& model, const std::string& baseline_dir,
               const std::string& checkpoint_dir, bool resume,
               const std::string& fusion) {
  constexpr std::size_t kChunk = 256;
  engine::ShardedFleetOptions fopts;
  fopts.shards = shards == 0 ? 1 : shards;
  std::filesystem::create_directories(baseline_dir);
  fopts.baseline.adaptive = true;
  fopts.baseline.dir = baseline_dir;
  fopts.baseline.policy.r = 0.55;  // match the calibration margin below
  if (!checkpoint_dir.empty()) {
    std::filesystem::create_directories(checkpoint_dir);
    fopts.checkpoint_dir = checkpoint_dir;
    fopts.checkpoint_every_polls = 1;
  }
  std::unique_ptr<engine::ShardedFleet> fleet;
  if (resume) {
    try {
      fleet = engine::ShardedFleet::restore(checkpoint_dir, fopts);
    } catch (const nsync::signal::CheckpointError& e) {
      std::cerr << "fleet_monitor: cannot resume from " << checkpoint_dir
                << ": " << e.what() << "\n";
      return 2;
    }
    if (fleet->sessions() > rounds * n_sessions) {
      std::cerr << "fleet_monitor: checkpoint holds " << fleet->sessions()
                << " prints but only " << rounds * n_sessions
                << " were requested\n";
      return 2;
    }
    std::cout << "resumed adaptation at print " << fleet->sessions() << "/"
              << rounds * n_sessions << " from " << checkpoint_dir << "\n";
  } else {
    fleet = std::make_unique<engine::ShardedFleet>(fopts);
  }
  // Calibration is deterministic, so a resumed run recomputes the same
  // trained (factory) thresholds for the prints it still has to admit;
  // already-adapted devices override them at admission anyway.
  Dataset d = build_dataset(n_sessions, attack_session, /*calibrate=*/true);
  const std::shared_ptr<const core::FusionPolicy> policy =
      make_policy(fusion, d);
  std::cout << "adaptive fleet: " << n_sessions << " printers x " << rounds
            << " prints on " << fopts.shards << " shards; printer "
            << attack_session << " streams tampered prints\n";

  for (std::size_t r = 0; r < rounds; ++r) {
    // This round's prints: one stream per (printer, channel), seeded by
    // round so every print is distinct but reproducible.
    std::vector<std::vector<Signal>> streams(n_sessions);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < d.channels.size(); ++c) {
        const std::uint64_t seed = 900 + 10000 * r + 3 * s + c;
        streams[s].push_back(
            s == attack_session
                ? malicious_observation(d.references[c], seed)
                : benign_observation(d.references[c], seed));
      }
    }
    std::vector<std::size_t> ids(n_sessions, 0);
    std::vector<bool> done(n_sessions, false);
    std::vector<std::vector<std::size_t>> offsets(
        n_sessions, std::vector<std::size_t>(d.channels.size(), 0));
    for (std::size_t s = 0; s < n_sessions; ++s) {
      const std::size_t id = r * n_sessions + s;
      ids[s] = id;
      if (id < fleet->sessions()) {
        const engine::SessionSnapshot snap = fleet->snapshot(id);
        if (snap.evicted) {
          // The print finished, its verdict was reported, and its maxima
          // were folded before the crash — nothing left to replay.
          done[s] = true;
          continue;
        }
        for (const auto& ch : snap.channels) {
          for (std::size_t c = 0; c < d.channels.size(); ++c) {
            if (d.channels[c] == ch.name) offsets[s][c] = ch.frames_fed;
          }
        }
      } else {
        engine::SessionSpec spec = make_spec(d, s, model, policy);
        spec.name =
            "printer-" + std::to_string(s) + "-print-" + std::to_string(r);
        fleet->add_session(std::move(spec));  // durable; resolves adapted
      }
    }
    bool more = true;
    while (more) {
      more = false;
      for (std::size_t s = 0; s < n_sessions; ++s) {
        if (done[s]) continue;
        for (std::size_t c = 0; c < d.channels.size(); ++c) {
          const Signal& sig = streams[s][c];
          const std::size_t off = offsets[s][c];
          if (off >= sig.frames()) continue;
          const std::size_t hi = std::min(off + kChunk, sig.frames());
          fleet->feed(ids[s], d.channels[c],
                      signal::SignalView(sig).slice(off, hi));
          offsets[s][c] = hi;
          if (hi < sig.frames()) more = true;
        }
      }
    }
    fleet->flush();
    for (std::size_t s = 0; s < n_sessions; ++s) {
      if (!done[s]) print_verdict(fleet->snapshot(ids[s]));
    }
    // Flush stdout BEFORE evicting: eviction is what tells a resumed run
    // "this verdict was already reported", so the line must actually
    // reach the file/pipe first or a SIGKILL in between loses it.
    std::cout.flush();
    // Evict in id order so folds land in a deterministic sequence, and
    // flush before the next round so its admissions resolve against the
    // updated registry.
    for (std::size_t s = 0; s < n_sessions; ++s) {
      if (!done[s]) fleet->evict_session(ids[s]);
    }
    fleet->flush();
  }

  // Final registry dump.  Hexfloat so the CI diff is bit-exact.
  for (const auto& sh : fleet->baselines()) {
    for (const auto& e : sh.entries) {
      const engine::DeviceBaseline& b = e.baseline;
      std::cout << "baseline shard=" << sh.shard << " model=" << e.model
                << " profile=" << e.profile << " prints=" << b.prints
                << " frozen=" << b.frozen << std::hexfloat
                << " c=" << b.current.c_c << " h=" << b.current.h_c
                << " v=" << b.current.v_c << std::defaultfloat << "\n";
    }
  }
  return 0;
}

/// Client mode: replay the dataset over the NSFP socket through the
/// reconnecting client.  `retries` transport failures per call are
/// absorbed with backoff + idempotent resync before giving up.
int run_client(const std::string& uds_path, std::size_t n_sessions,
               std::size_t attack_session, long pace_ms,
               const std::string& fusion, std::size_t retries) {
  constexpr std::size_t kChunk = 256;
  try {
    engine::ResilientClientOptions copts;
    copts.client_name = "fleet_monitor";
    copts.max_attempts = retries + 1;
    copts.backoff_base_ms = 50;
    copts.backoff_cap_ms = 2000;
    engine::ResilientWireClient client(
        engine::WireEndpoint{uds_path, /*tcp_port=*/0}, copts);
    const engine::wire::HelloOk hello = client.connect_now();
    const bool fresh = hello.sessions == 0;
    if (!fresh && hello.sessions != n_sessions) {
      std::cerr << "fleet_monitor: daemon holds " << hello.sessions
                << " sessions but " << n_sessions << " were requested\n";
      return 2;
    }
    Dataset d = build_dataset(n_sessions, attack_session, /*calibrate=*/fresh);
    if (!fresh) {
      // A resumed daemon re-attaches our ADD_SESSIONs by name and keeps
      // its checkpointed per-session state, so the re-sent specs only
      // need to be well-formed — no recalibration.
      d.thresholds.assign(d.channels.size(), core::Thresholds{});
    }

    // ADD_SESSION is idempotent by name, so fresh and resumed daemons
    // take the same path: register everything, then read the acked
    // cursors back (zero for new sessions, frames_fed for restored ones).
    const std::shared_ptr<const core::FusionPolicy> policy =
        fresh ? make_policy(fusion, d) : nullptr;
    std::vector<std::uint64_t> handles;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      handles.push_back(client.add_session(make_spec(d, s, "", policy)));
      if (fresh) {
        std::cout << "admitted printer-" << s << " as session " << handles[s]
                  << "\n";
      }
    }
    if (!fresh) {
      std::cout << "resuming " << n_sessions << " sessions over the wire\n";
    }
    std::vector<std::vector<std::size_t>> offsets(
        n_sessions, std::vector<std::size_t>(d.channels.size(), 0));
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < d.channels.size(); ++c) {
        offsets[s][c] = client.acked(handles[s], d.channels[c]);
      }
    }

    bool more = true;
    while (more) {
      more = false;
      for (std::size_t s = 0; s < n_sessions; ++s) {
        for (std::size_t c = 0; c < d.channels.size(); ++c) {
          const Signal& sig = d.streams[s][c];
          const std::size_t off = offsets[s][c];
          if (off >= sig.frames()) continue;
          const std::size_t hi = std::min(off + kChunk, sig.frames());
          const engine::ResilientWireClient::FeedOutcome out = client.feed(
              handles[s], d.channels[c], signal::SignalView(sig).slice(off, hi),
              off);
          // cursor is authoritative either way: past `hi` after a resync
          // fast-forward, below `off` when the daemon lost frames
          // (restarted fresh) and we must rewind and re-feed.
          offsets[s][c] = out.cursor;
          if (out.cursor < sig.frames()) more = true;
        }
      }
      if (pace_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
      }
    }

    // Wait for the shard workers to drain everything we fed.
    for (;;) {
      const engine::wire::Stats st = client.poll_stats(false);
      if (st.queued_frames == 0 && st.busy == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const engine::wire::Stats st = client.poll_stats(true);
    std::cout << "fleet over the wire: " << st.sessions << " sessions on "
              << st.shards << " shards, " << st.windows << " windows\n";
    for (const auto& s : st.sessions_detail) print_verdict(s);
    const engine::ResilientWireClient::Telemetry& t = client.telemetry();
    if (t.reconnects > 0 || t.transport_errors > 0) {
      std::cout << "transport: " << t.reconnects << " reconnects, "
                << t.transport_errors << " errors, "
                << t.fast_forwarded_frames << " frames fast-forwarded, "
                << t.rewinds << " rewinds\n";
    }
    return 0;
  } catch (const engine::WireError& e) {
    std::cerr << "fleet_monitor: daemon error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    // Transport failure (connection refused, mid-run disconnect, retries
    // exhausted): distinct exit code so scripts can tell "daemon said no"
    // from "daemon unreachable".
    std::cerr << "fleet_monitor: transport failure: " << e.what()
              << (retries == 0 ? " (use --retry N to reconnect)" : "")
              << "\n";
    return 3;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string checkpoint_dir;
  std::string connect_path;
  std::string listen_path;
  std::string baseline_dir;
  std::string model = "mk3";
  std::string fusion = "any";
  std::size_t rounds = 0;
  std::size_t shards = 0;
  std::size_t retries = 0;
  bool resume = false;
  long pace_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--checkpoint" && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--pace-ms" && i + 1 < argc) {
      pace_ms = std::stol(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--baseline-dir" && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--model" && i + 1 < argc) {
      model = argv[++i];
    } else if (arg == "--fusion" && i + 1 < argc) {
      fusion = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_path = argv[++i];
    } else if (arg == "--retry" && i + 1 < argc) {
      retries = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--listen" && i + 1 < argc) {
      listen_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fleet_monitor [sessions] [attack_session]"
                << " [--shards N] [--connect <uds> [--retry N]]"
                << " [--listen <uds>]"
                << " [--checkpoint <dir>] [--resume] [--pace-ms <n>]"
                << " [--fusion any|majority|all|weighted]"
                << " [--rounds R --baseline-dir <dir> [--model <name>]]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "fleet_monitor: unknown flag " << arg
                << " (see --help)\n";
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (resume && checkpoint_dir.empty() && connect_path.empty()) {
    std::cerr << "fleet_monitor: --resume requires --checkpoint <dir>\n";
    return 2;
  }
  if (rounds > 0 && baseline_dir.empty()) {
    std::cerr << "fleet_monitor: --rounds requires --baseline-dir <dir>\n";
    return 2;
  }
  if (fusion != "weighted") {
    // Reject bad names before any dataset work; the exception lists the
    // valid set.
    try {
      (void)core::parse_fusion_rule(fusion);
    } catch (const std::invalid_argument& e) {
      std::cerr << "fleet_monitor: " << e.what() << " (or weighted)\n";
      return 2;
    }
  }
  const std::size_t n_sessions =
      !positional.empty() ? static_cast<std::size_t>(std::stoul(positional[0]))
                          : 4;
  const std::size_t attack_session =
      positional.size() > 1
          ? static_cast<std::size_t>(std::stoul(positional[1]))
          : 1;
  constexpr std::size_t kChunk = 256;

  if (!connect_path.empty()) {
    return run_client(connect_path, n_sessions, attack_session, pace_ms,
                      fusion, retries);
  }

  if (rounds > 0) {
    return run_rounds(n_sessions, attack_session, rounds, shards, model,
                      baseline_dir, checkpoint_dir, resume, fusion);
  }

  if (!listen_path.empty()) {
    // Minimal in-example daemon: an empty sharded fleet served over a
    // socket until SIGINT/SIGTERM.  fleet_daemon is the full-featured one.
    engine::ShardedFleetOptions fopts;
    fopts.shards = shards == 0 ? 1 : shards;
    if (!checkpoint_dir.empty()) {
      std::filesystem::create_directories(checkpoint_dir);
      fopts.checkpoint_dir = checkpoint_dir;
    }
    if (!baseline_dir.empty()) {
      // Clients opt a session into adaptation by sending a non-empty
      // model key in its ADD_SESSION spec.
      std::filesystem::create_directories(baseline_dir);
      fopts.baseline.adaptive = true;
      fopts.baseline.dir = baseline_dir;
    }
    std::unique_ptr<engine::ShardedFleet> fleet =
        resume ? engine::ShardedFleet::restore(checkpoint_dir, fopts)
               : std::make_unique<engine::ShardedFleet>(fopts);
    engine::FleetServerOptions sopts;
    sopts.uds_path = listen_path;
    engine::FleetServer server(*fleet, sopts);
    server.start();
    std::cout << "listening on " << listen_path << " (" << fopts.shards
              << " shards)" << std::endl;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.stop();
    return 0;
  }

  Dataset d;  // thresholds filled only on the fresh (non-resume) path

  if (shards > 0) {
    // Sharded in-process path: same sessions, N worker shards.
    engine::ShardedFleetOptions fopts;
    fopts.shards = shards;
    if (!checkpoint_dir.empty()) {
      std::filesystem::create_directories(checkpoint_dir);
      fopts.checkpoint_dir = checkpoint_dir;
      fopts.checkpoint_every_polls = 1;
    }
    std::unique_ptr<engine::ShardedFleet> fleet;
    if (resume) {
      try {
        fleet = engine::ShardedFleet::restore(checkpoint_dir, fopts);
      } catch (const nsync::signal::CheckpointError& e) {
        std::cerr << "fleet_monitor: cannot resume from " << checkpoint_dir
                  << ": " << e.what() << "\n";
        return 2;
      }
      if (fleet->sessions() != n_sessions) {
        std::cerr << "fleet_monitor: checkpoint holds " << fleet->sessions()
                  << " sessions but " << n_sessions << " were requested\n";
        return 2;
      }
      d = build_dataset(n_sessions, attack_session, /*calibrate=*/false);
      std::cout << "resumed " << fleet->sessions() << " sessions across "
                << shards << " shards from " << checkpoint_dir << "\n";
    } else {
      d = build_dataset(n_sessions, attack_session, /*calibrate=*/true);
      fleet = std::make_unique<engine::ShardedFleet>(fopts);
      const auto policy = make_policy(fusion, d);
      for (std::size_t s = 0; s < n_sessions; ++s) {
        fleet->add_session(make_spec(d, s, "", policy));
      }
    }
    std::vector<std::vector<std::size_t>> offsets(
        n_sessions, std::vector<std::size_t>(d.channels.size(), 0));
    if (resume) {
      for (std::size_t s = 0; s < n_sessions; ++s) {
        const engine::SessionSnapshot snap = fleet->snapshot(s);
        for (const auto& ch : snap.channels) {
          for (std::size_t c = 0; c < d.channels.size(); ++c) {
            if (d.channels[c] == ch.name) offsets[s][c] = ch.frames_fed;
          }
        }
      }
    }
    std::cout << "fleet: " << n_sessions << " sessions x "
              << d.channels.size() << " channels on " << shards
              << " shards; session " << attack_session
              << " streams a tampered print\n\n";
    bool more = true;
    while (more) {
      more = false;
      for (std::size_t s = 0; s < n_sessions; ++s) {
        for (std::size_t c = 0; c < d.channels.size(); ++c) {
          const Signal& sig = d.streams[s][c];
          const std::size_t off = offsets[s][c];
          if (off >= sig.frames()) continue;
          const std::size_t hi = std::min(off + kChunk, sig.frames());
          fleet->feed(s, d.channels[c],
                      signal::SignalView(sig).slice(off, hi));
          offsets[s][c] = hi;
          if (hi < sig.frames()) more = true;
        }
      }
      if (pace_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
      }
    }
    fleet->flush();
    const engine::FleetStats stats = fleet->stats();
    std::cout << "windows: " << stats.windows << ", p50 feed->verdict "
              << stats.p50_feed_to_verdict_us << " us, p99 "
              << stats.p99_feed_to_verdict_us << " us\n";
    for (const auto& snap : fleet->snapshots()) print_verdict(snap);
    return 0;
  }

  // --- Original single-engine path (--shards 0) ---------------------------

  engine::MonitorEngineOptions opts;
  if (!checkpoint_dir.empty()) {
    std::filesystem::create_directories(checkpoint_dir);
    opts.checkpoint_dir = checkpoint_dir;
    opts.checkpoint_every_polls = 1;  // one atomic checkpoint per round
  }

  engine::MonitorEngine eng(opts);
  if (resume) {
    // The checkpoint is self-contained (specs + streaming state), so no
    // recalibration is needed: restore and pick the streams back up.
    try {
      eng =
          engine::MonitorEngine::restore(checkpoint_dir + "/fleet.nckp", opts);
    } catch (const nsync::signal::CheckpointError& e) {
      std::cerr << "fleet_monitor: cannot resume from " << checkpoint_dir
                << "/fleet.nckp: " << e.what() << "\n";
      return 2;
    }
    if (eng.sessions() != n_sessions) {
      std::cerr << "fleet_monitor: checkpoint holds " << eng.sessions()
                << " sessions but " << n_sessions << " were requested\n";
      return 2;
    }
    d = build_dataset(n_sessions, attack_session, /*calibrate=*/false);
    std::cout << "resumed " << eng.sessions() << " sessions from "
              << checkpoint_dir << "/fleet.nckp\n";
  } else {
    d = build_dataset(n_sessions, attack_session, /*calibrate=*/true);
    const auto policy = make_policy(fusion, d);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      eng.add_session(make_spec(d, s, "", policy));
    }
  }

  std::vector<std::vector<std::size_t>> offsets(
      n_sessions, std::vector<std::size_t>(d.channels.size(), 0));
  for (std::size_t s = 0; s < n_sessions && resume; ++s) {
    const engine::SessionSnapshot snap = eng.snapshot(s);
    for (const auto& ch : snap.channels) {
      for (std::size_t c = 0; c < d.channels.size(); ++c) {
        if (d.channels[c] == ch.name) offsets[s][c] = ch.frames_fed;
      }
    }
  }
  std::cout << "fleet: " << n_sessions << " sessions x " << d.channels.size()
            << " channels; session " << attack_session
            << " streams a tampered print\n\n";

  // Stream the fleet: interleave chunk-sized feeds across every session
  // and poll after each round, as an acquisition loop would.
  bool more = true;
  while (more) {
    more = false;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < d.channels.size(); ++c) {
        const Signal& sig = d.streams[s][c];
        const std::size_t off = offsets[s][c];
        if (off >= sig.frames()) continue;
        const std::size_t hi = std::min(off + kChunk, sig.frames());
        eng.feed(s, d.channels[c], signal::SignalView(sig).slice(off, hi));
        offsets[s][c] = hi;
        if (hi < sig.frames()) more = true;
      }
    }
    eng.poll();
    if (pace_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
    }
  }
  if (!checkpoint_dir.empty()) {
    std::cout << "checkpoints written: " << eng.checkpoints_written() << "\n";
  }

  for (const auto& snap : eng.snapshots()) {
    std::cout << snap.name << ": "
              << (snap.intrusion ? "INTRUSION" : "benign");
    if (snap.intrusion) {
      std::cout << " (first alarm at window " << snap.first_alarm_window
                << ")";
    }
    std::cout << " — " << snap.windows << " windows, "
              << snap.online_channels << "/" << snap.channels.size()
              << " channels online\n";
    for (const auto& ch : snap.channels) {
      std::cout << "    " << ch.name << ": "
                << (ch.detection.intrusion ? "alarm" : "ok") << " ("
                << health_name(ch.health) << ", " << ch.windows
                << " windows)\n";
    }
  }

  for (const auto& snap : eng.snapshots()) print_verdict(snap);
  return 0;
}
