// Fleet monitoring quickstart: one MonitorEngine watching several printers
// at once.
//
// Each session simulates one concurrent print job with two side channels
// (accelerometer-like and audio-like pseudo signals).  Most sessions
// stream benign observations; one streams a tampered print.  Frames
// arrive in acquisition-sized chunks via feed(), window processing runs in
// poll() on the shared thread pool, and the per-session snapshots show
// the fused verdict, channel health and alarm latency as the prints
// progress.
//
// Crash-safe operation: with `--checkpoint <dir>` the engine atomically
// writes `<dir>/fleet.nckp` after every poll round.  If the process dies
// (power cut, OOM kill, SIGKILL), relaunching with `--resume` restores the
// fleet from the checkpoint and resumes each channel's stream exactly
// where it left off — the final verdicts are identical to a run that was
// never interrupted (the CI crash-recovery job pins this).
//
//   ./fleet_monitor [sessions] [attack_session]
//                   [--checkpoint <dir>] [--resume] [--pace-ms <n>]
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/nsync.hpp"
#include "engine/monitor_engine.hpp"
#include "signal/checkpoint.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

using namespace nsync;
using nsync::signal::Rng;
using nsync::signal::Signal;

namespace {

Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 2, 100.0);
  double lp0 = 0.0, lp1 = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp0 += 0.35 * (rng.normal() - lp0);
    lp1 += 0.35 * (rng.normal() - lp1);
    s(n, 0) = lp0;
    s(n, 1) = lp1;
  }
  return s;
}

Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double src = 0.0;
  std::vector<double> row(b.channels());
  while (src < static_cast<double>(b.frames() - 1)) {
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.01);
    }
    a.append_frame(row);
    src += 1.0 + rng.normal(0.0, 0.002);
  }
  return a;
}

/// Benign stream with the middle third replaced by an unrelated toolpath.
Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
  }
  return a;
}

const char* health_name(core::ChannelHealth h) {
  switch (h) {
    case core::ChannelHealth::kHealthy: return "healthy";
    case core::ChannelHealth::kDegraded: return "degraded";
    case core::ChannelHealth::kOffline: return "offline";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string checkpoint_dir;
  bool resume = false;
  long pace_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--checkpoint" && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--pace-ms" && i + 1 < argc) {
      pace_ms = std::stol(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fleet_monitor [sessions] [attack_session]"
                << " [--checkpoint <dir>] [--resume] [--pace-ms <n>]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "fleet_monitor: unknown flag " << arg
                << " (see --help)\n";
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (resume && checkpoint_dir.empty()) {
    std::cerr << "fleet_monitor: --resume requires --checkpoint <dir>\n";
    return 2;
  }
  const std::size_t n_sessions =
      !positional.empty() ? static_cast<std::size_t>(std::stoul(positional[0]))
                          : 4;
  const std::size_t attack_session =
      positional.size() > 1
          ? static_cast<std::size_t>(std::stoul(positional[1]))
          : 1;
  constexpr std::size_t kFrames = 6144;
  constexpr std::size_t kChunk = 256;

  core::NsyncConfig cfg;
  cfg.sync = core::SyncMethod::kDwm;
  cfg.dwm.n_win = 64;
  cfg.dwm.n_hop = 32;
  cfg.dwm.n_ext = 24;
  cfg.dwm.n_sigma = 12.0;
  cfg.dwm.eta = 0.2;

  const std::vector<std::string> channels = {"ACC", "AUD"};
  std::vector<Signal> references;
  for (std::size_t c = 0; c < channels.size(); ++c) {
    references.push_back(make_reference(kFrames, 7 + c));
  }

  engine::MonitorEngineOptions opts;
  if (!checkpoint_dir.empty()) {
    std::filesystem::create_directories(checkpoint_dir);
    opts.checkpoint_dir = checkpoint_dir;
    opts.checkpoint_every_polls = 1;  // one atomic checkpoint per round
  }

  engine::MonitorEngine eng(opts);
  if (resume) {
    // The checkpoint is self-contained (specs + streaming state), so no
    // recalibration is needed: restore and pick the streams back up.
    try {
      eng =
          engine::MonitorEngine::restore(checkpoint_dir + "/fleet.nckp", opts);
    } catch (const nsync::signal::CheckpointError& e) {
      std::cerr << "fleet_monitor: cannot resume from " << checkpoint_dir
                << "/fleet.nckp: " << e.what() << "\n";
      return 2;
    }
    if (eng.sessions() != n_sessions) {
      std::cerr << "fleet_monitor: checkpoint holds " << eng.sessions()
                << " sessions but " << n_sessions << " were requested\n";
      return 2;
    }
    std::cout << "resumed " << eng.sessions() << " sessions from "
              << checkpoint_dir << "/fleet.nckp\n";
  } else {
    // Calibrate each channel's thresholds once on benign prints, then
    // share them across the fleet.
    std::vector<core::Thresholds> thresholds;
    for (std::size_t c = 0; c < channels.size(); ++c) {
      core::NsyncIds ids(references[c], cfg);
      std::vector<Signal> train;
      for (std::uint64_t s = 0; s < 3; ++s) {
        train.push_back(benign_observation(references[c], 20 * (s + 1) + c));
      }
      ids.fit(train);
      thresholds.push_back(ids.thresholds());
    }
    for (std::size_t s = 0; s < n_sessions; ++s) {
      engine::SessionSpec spec;
      spec.name = "printer-" + std::to_string(s);
      spec.rule = core::FusionRule::kAny;
      for (std::size_t c = 0; c < channels.size(); ++c) {
        engine::ChannelSpec ch;
        ch.name = channels[c];
        ch.reference = references[c];
        ch.config = cfg;
        ch.thresholds = thresholds[c];
        spec.channels.push_back(std::move(ch));
      }
      eng.add_session(std::move(spec));
    }
  }

  // The observed streams are deterministic functions of the seeds, so a
  // resumed process regenerates them and fast-forwards each channel to the
  // frame count recorded in the checkpoint.
  std::vector<std::vector<Signal>> streams(n_sessions);
  std::vector<std::vector<std::size_t>> offsets(
      n_sessions, std::vector<std::size_t>(channels.size(), 0));
  for (std::size_t s = 0; s < n_sessions; ++s) {
    for (std::size_t c = 0; c < channels.size(); ++c) {
      streams[s].push_back(s == attack_session
                               ? malicious_observation(references[c],
                                                       900 + 3 * s + c)
                               : benign_observation(references[c],
                                                    900 + 3 * s + c));
    }
    if (resume) {
      const engine::SessionSnapshot snap = eng.snapshot(s);
      for (const auto& ch : snap.channels) {
        for (std::size_t c = 0; c < channels.size(); ++c) {
          if (channels[c] == ch.name) offsets[s][c] = ch.frames_fed;
        }
      }
    }
  }
  std::cout << "fleet: " << n_sessions << " sessions x " << channels.size()
            << " channels; session " << attack_session
            << " streams a tampered print\n\n";

  // Stream the fleet: interleave chunk-sized feeds across every session
  // and poll after each round, as an acquisition loop would.
  bool more = true;
  while (more) {
    more = false;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      for (std::size_t c = 0; c < channels.size(); ++c) {
        const Signal& sig = streams[s][c];
        const std::size_t off = offsets[s][c];
        if (off >= sig.frames()) continue;
        const std::size_t hi = std::min(off + kChunk, sig.frames());
        eng.feed(s, channels[c], signal::SignalView(sig).slice(off, hi));
        offsets[s][c] = hi;
        if (hi < sig.frames()) more = true;
      }
    }
    eng.poll();
    if (pace_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
    }
  }
  if (!checkpoint_dir.empty()) {
    std::cout << "checkpoints written: " << eng.checkpoints_written() << "\n";
  }

  for (const auto& snap : eng.snapshots()) {
    std::cout << snap.name << ": "
              << (snap.intrusion ? "INTRUSION" : "benign");
    if (snap.intrusion) {
      std::cout << " (first alarm at window " << snap.first_alarm_window
                << ")";
    }
    std::cout << " — " << snap.windows << " windows, "
              << snap.online_channels << "/" << snap.channels.size()
              << " channels online\n";
    for (const auto& ch : snap.channels) {
      std::cout << "    " << ch.name << ": "
                << (ch.detection.intrusion ? "alarm" : "ok") << " ("
                << health_name(ch.health) << ", " << ch.windows
                << " windows)\n";
    }
  }

  // Machine-readable verdict lines: one per session, stable across clean
  // and killed-and-resumed runs (the CI crash-recovery job diffs these).
  for (const auto& snap : eng.snapshots()) {
    std::cout << "verdict " << snap.name << " "
              << (snap.intrusion ? "INTRUSION" : "benign") << " window="
              << snap.first_alarm_window << " windows=" << snap.windows;
    for (const auto& ch : snap.channels) {
      std::cout << " " << ch.name << "="
                << (ch.detection.intrusion ? "alarm" : "ok") << "/"
                << health_name(ch.health);
    }
    std::cout << "\n";
  }
  return 0;
}
