// Quickstart: the full NSYNC pipeline on one synthetic printer, end to end.
//
//   1. slice a small gear into G-code;
//   2. simulate benign prints (each with its own time-noise realization)
//      and render the accelerometer side channel;
//   3. build an NSYNC/DWM IDS from a reference print, train its OCC
//      thresholds on benign runs;
//   4. check a fresh benign print and a sabotaged (Void attack) print.
//
// Build & run:  ./build/examples/quickstart
#include <cstdint>
#include <iostream>

#include "core/nsync.hpp"
#include "eval/setup.hpp"
#include "gcode/attacks.hpp"
#include "printer/simulator.hpp"
#include "sensors/rig.hpp"

using namespace nsync;

namespace {

/// Simulates one print of `program` and returns its ACC side channel.
signal::Signal observe_acc(const gcode::Program& program,
                           const eval::PrinterSetup& setup,
                           std::uint64_t seed) {
  printer::ExecutorConfig exec;
  exec.sample_rate = 1500.0;
  const printer::MotionTrace trace = printer::trim_to_first_layer(
      printer::simulate_print(program, setup.machine, exec, seed));
  const sensors::SensorRig rig(setup.machine, setup.rig);
  signal::Rng rng(seed ^ 0x5EED5EED);
  return rig.render(sensors::SideChannel::kAcc, trace, rng);
}

}  // namespace

int main() {
  // 1. A small gear on an Ultimaker-3-like machine.
  const eval::EvalScale scale = eval::EvalScale::tiny();
  const eval::PrinterSetup setup =
      eval::make_printer_setup(eval::PrinterKind::kUm3, scale);
  std::cout << "sliced: " << setup.benign_program.name() << "\n"
            << "commands: " << setup.benign_program.size()
            << ", layers: " << setup.benign_program.layer_starts().size()
            << "\n\n";

  // 2. Reference + training observations.
  const signal::Signal reference = observe_acc(setup.benign_program, setup, 1);
  std::cout << "reference ACC signal: " << reference.frames() << " frames x "
            << reference.channels() << " channels @ "
            << reference.sample_rate() << " Hz ("
            << reference.duration() << " s)\n";

  std::vector<signal::Signal> train;
  for (std::uint64_t s = 2; s < 8; ++s) {
    train.push_back(observe_acc(setup.benign_program, setup, s));
  }

  // 3. NSYNC/DWM IDS with Table IV parameters.
  core::NsyncConfig cfg;
  cfg.sync = core::SyncMethod::kDwm;
  cfg.dwm = eval::dwm_params_for(eval::PrinterKind::kUm3,
                                 reference.sample_rate());
  cfg.r = 0.3;
  core::NsyncIds ids(reference, cfg);
  ids.fit(train);
  std::cout << "learned thresholds: c_c=" << ids.thresholds().c_c
            << " h_c=" << ids.thresholds().h_c
            << " v_c=" << ids.thresholds().v_c << "\n\n";

  // 4. Fresh benign print vs a Void-sabotaged print.
  const signal::Signal benign = observe_acc(setup.benign_program, setup, 100);
  const gcode::Program sabotaged = gcode::attack_void(setup.benign_program);
  const signal::Signal malicious = observe_acc(sabotaged, setup, 101);

  const core::Detection db = ids.detect(benign);
  const core::Detection dm = ids.detect(malicious);
  std::cout << "benign print:    "
            << (db.intrusion ? "INTRUSION (false alarm!)" : "clean") << "\n";
  std::cout << "void-attack print: "
            << (dm.intrusion ? "INTRUSION detected" : "missed!") << "  [c_disp="
            << dm.by_c_disp << " h_dist=" << dm.by_h_dist
            << " v_dist=" << dm.by_v_dist << "]\n";
  return (db.intrusion || !dm.intrusion) ? 1 : 0;
}
