// Example: the G-code substrate as a standalone tool — slice a part, apply
// each Table I attack, and print a side-by-side comparison of the programs
// (command counts, material, estimated print time on both printers).
//
// Run: ./build/examples/gcode_inspector [diameter_mm] [height_mm]
#include <cstdlib>
#include <iostream>

#include "eval/table.hpp"
#include "gcode/attacks.hpp"
#include "gcode/parser.hpp"
#include "gcode/slicer.hpp"
#include "printer/machine.hpp"
#include "printer/planner.hpp"

using namespace nsync;
using nsync::eval::AsciiTable;
using nsync::eval::fmt;

int main(int argc, char** argv) {
  const double diameter = argc > 1 ? std::atof(argv[1]) : 20.0;
  const double height = argc > 2 ? std::atof(argv[2]) : 1.6;
  if (diameter <= 0.0 || height <= 0.0) {
    std::cerr << "usage: gcode_inspector [diameter_mm] [height_mm]\n";
    return 2;
  }

  gcode::SlicerConfig cfg;
  cfg.object_height = height;
  const gcode::Polygon outline =
      gcode::gear_outline(14, diameter / 2.0 * 0.82, diameter / 2.0);
  const gcode::Program benign = gcode::slice(outline, cfg);

  std::cout << "benign: " << benign.name() << "\n";
  std::cout << "first commands:\n";
  const std::string text = gcode::to_gcode(benign);
  std::size_t shown = 0, pos = 0;
  while (shown < 12 && pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::cout << "  " << text.substr(pos, nl - pos) << "\n";
    pos = nl + 1;
    ++shown;
  }
  std::cout << "  ... (" << benign.size() << " commands total)\n\n";

  const printer::MachineConfig um3 = printer::ultimaker3();
  const printer::MachineConfig rm3 = printer::rostock_max_v3();

  AsciiTable table({"program", "commands", "layers", "filament (mm)",
                    "UM3 est. (s)", "RM3 est. (s)"});
  auto add = [&](const std::string& label, const gcode::Program& p) {
    const auto st = p.stats();
    table.add_row({label, std::to_string(p.size()),
                   std::to_string(p.layer_starts().size()),
                   fmt(st.total_extrusion, 1),
                   fmt(printer::plan_program(p, um3).nominal_motion_duration(),
                       1),
                   fmt(printer::plan_program(p, rm3).nominal_motion_duration(),
                       1)});
  };
  add("Benign", benign);
  for (gcode::AttackType a : gcode::all_attacks()) {
    add(gcode::attack_name(a),
        gcode::apply_attack(a, benign, outline, cfg));
  }
  table.print(std::cout);
  std::cout << "\nNote how every attack perturbs timing and/or material — the\n"
            << "quantities NSYNC's discriminator thresholds (Section VII).\n";
  return 0;
}
