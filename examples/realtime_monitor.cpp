// Example: real-time intrusion detection while the print is running.
//
// DWM is causal, so NSYNC can process side-channel samples as they arrive
// and stop a sabotaged print mid-way (the paper's IDS "automatically stops
// the printing process if necessary", Section IV).  This example streams a
// Void-sabotaged print chunk by chunk into a RealtimeMonitor and reports
// the moment — in print seconds — when the alarm fires.
//
// With --faults <rate>, a seeded FaultInjector corrupts the stream live
// (dropouts, stuck samples, NaN bursts at the composite rate) between the
// DAQ and the monitor, demonstrating graceful degradation: degenerate
// windows are masked instead of scored, the channel-health state machine
// tracks the damage, and the alarm logic keeps working on valid windows.
//
// Run: ./build/examples/realtime_monitor [--faults 0.01]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/nsync.hpp"
#include "eval/fault_tolerance.hpp"
#include "eval/setup.hpp"
#include "gcode/attacks.hpp"
#include "printer/simulator.hpp"
#include "sensors/fault_injector.hpp"
#include "sensors/rig.hpp"

using namespace nsync;

namespace {

signal::Signal observe(const gcode::Program& program,
                       const eval::PrinterSetup& setup, std::uint64_t seed) {
  printer::ExecutorConfig exec;
  exec.sample_rate = 1500.0;
  const printer::MotionTrace trace = printer::trim_to_first_layer(
      printer::simulate_print(program, setup.machine, exec, seed));
  const sensors::SensorRig rig(setup.machine, setup.rig);
  signal::Rng rng(seed * 31 + 7);
  return rig.render(sensors::SideChannel::kAcc, trace, rng);
}

}  // namespace

int main(int argc, char** argv) {
  double fault_rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--faults" && i + 1 < argc) {
      fault_rate = std::atof(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0] << " [--faults <rate>]\n";
      return 2;
    }
  }

  const eval::EvalScale scale = eval::EvalScale::tiny();
  const eval::PrinterSetup setup =
      eval::make_printer_setup(eval::PrinterKind::kUm3, scale);

  // Train the IDS offline on benign runs.
  const signal::Signal reference = observe(setup.benign_program, setup, 1);
  core::NsyncConfig cfg;
  cfg.sync = core::SyncMethod::kDwm;
  cfg.dwm = eval::dwm_params_for(eval::PrinterKind::kUm3,
                                 reference.sample_rate());
  cfg.r = 0.3;
  core::NsyncIds ids(reference, cfg);
  std::vector<signal::Signal> train;
  for (std::uint64_t s = 2; s < 9; ++s) {
    train.push_back(observe(setup.benign_program, setup, s));
  }
  ids.fit(train);
  std::cout << "IDS trained on " << train.size() << " benign prints\n";

  // The attacker swaps in a Void-sabotaged G-code file.
  const gcode::Program sabotaged = gcode::attack_void(setup.benign_program);
  const signal::Signal observed = observe(sabotaged, setup, 77);

  // Stream the print into the monitor in 100 ms chunks, as a DAQ would.
  // With --faults, each chunk passes through the stateful injector first,
  // exactly where a flaky sensing front end would sit.
  sensors::FaultInjector injector(eval::fault_config_for_rate(fault_rate),
                                  /*seed=*/1234);
  if (fault_rate > 0.0) {
    std::cout << "injecting faults at composite rate " << fault_rate << "\n";
  }
  core::RealtimeMonitor monitor(reference, cfg, ids.thresholds());
  const auto chunk =
      static_cast<std::size_t>(0.1 * observed.sample_rate());
  std::size_t pos = 0;
  while (pos < observed.frames()) {
    const std::size_t end = std::min(pos + chunk, observed.frames());
    const signal::SignalView clean =
        signal::SignalView(observed).slice(pos, end);
    if (fault_rate > 0.0) {
      monitor.push(injector.apply(clean));
    } else {
      monitor.push(clean);
    }
    pos = end;
    if (monitor.intrusion()) break;
  }

  if (fault_rate > 0.0) {
    std::size_t masked = 0;
    for (auto v : monitor.valid()) {
      if (v == 0) ++masked;
    }
    std::cout << "channel health: "
              << core::channel_health_name(monitor.health()) << " ("
              << masked << "/" << monitor.windows()
              << " windows masked, " << injector.events().size()
              << " fault intervals injected)\n";
  }

  const double t_alarm = static_cast<double>(pos) / observed.sample_rate();
  const double t_total = observed.duration();
  if (monitor.intrusion()) {
    const auto& d = monitor.detection();
    std::cout << "ALARM at " << t_alarm << " s of a " << t_total
              << " s print (" << 100.0 * t_alarm / t_total
              << "% in)\n  sub-modules: c_disp=" << d.by_c_disp
              << " h_dist=" << d.by_h_dist << " v_dist=" << d.by_v_dist
              << "\n  windows processed: " << monitor.windows()
              << "\n  -> the print can be stopped before completion,"
              << " saving material and machine time\n";
    return 0;
  }
  std::cout << "print finished without an alarm (attack missed!)\n";
  return 1;
}
