// Example / diagnostic: per-process NSYNC feature maxima (CADHD, filtered
// horizontal distance, filtered vertical distance) for every test process,
// plus the learned thresholds — the numbers behind Fig. 8's detection
// illustration.  Useful for understanding why a given attack is (or is
// not) detected on a channel.
//
// Run: ./build/examples/feature_explorer [--printer UM3|RM3] [--tiny]
#include <iostream>
#include <map>
#include "eval/dataset.hpp"
#include "eval/experiments.hpp"
#include "eval/options.hpp"
using namespace nsync;
using namespace nsync::eval;

int main(int argc, char** argv) {
  auto opt = CliOptions::parse(argc, argv);
  for (PrinterKind printer : opt.printers) {
    Dataset ds(printer, opt.scale, {sensors::SideChannel::kAcc});
    for (Transform tr : {Transform::kRaw}) {
      const ChannelData data = ds.channel_data(sensors::SideChannel::kAcc, tr);
      core::NsyncConfig cfg;
      cfg.sync = core::SyncMethod::kDwm;
      cfg.r = 0.3;
      cfg.dwm = dwm_params_for(printer, data.sample_rate);
      core::NsyncIds ids(data.reference.signal, cfg);
      std::vector<core::Analysis> an;
      for (auto& s : data.train) an.push_back(ids.analyze(s.signal));
      ids.fit_from_analyses(an);
      auto th = ids.thresholds();
      std::cout << printer_name(printer) << " thresholds c=" << th.c_c
                << " h=" << th.h_c << " v=" << th.v_c << "\n";
      std::map<std::string, std::pair<int,int>> per;  // label -> (detected, total)
      for (auto& t : data.test) {
        auto a = ids.analyze(t.sig.signal);
        auto d = ids.detect(a);
        auto m = core::feature_maxima(a.features);
        auto& p = per[t.label];
        p.second++;
        if (d.intrusion) p.first++;
        std::cout << "  " << t.label << " c=" << m.c_max << " h=" << m.h_max
                  << " v=" << m.v_max << (d.intrusion ? "  DETECTED" : "") << "\n";
      }
      for (auto& [label, p] : per)
        std::cout << label << ": " << p.first << "/" << p.second << "\n";
    }
  }
  return 0;
}
