// fleet_daemon — the NSYNC fleet as a standalone service.
//
// Owns a ShardedFleet (N shards, each a private MonitorEngine on its own
// worker thread) and serves the NSFP frame-ingest protocol over a
// Unix-domain socket (or localhost TCP with --tcp).  Acquisition hosts
// connect as clients and drive admission, frame ingest, stats polling and
// eviction over the wire; all detection runs here, on the shard workers.
//
// Crash safety: with --checkpoint <dir> every shard periodically writes
// `<dir>/fleet.<shard>.nckp` and admissions/evictions checkpoint
// synchronously.  After a SIGKILL, relaunching with --resume restores the
// whole fleet; clients re-connect, read each channel's frames_fed offset
// from POLL_STATS and resume their streams — final verdicts are bitwise
// identical to an uninterrupted run (the CI fleet-daemon job pins this).
//
// Baseline adaptation: with --baseline-dir <dir> each shard keeps a
// per-device baseline registry (printer-model x sensor-profile) and
// re-learns OCC thresholds from prints that finished benign with healthy
// channels.  Clients opt a session in by sending a non-empty model key in
// its ADD_SESSION spec; registries persist to `<dir>/baselines.<i>.nbrg`
// and ride inside the shard checkpoints, so --resume continues adaptation.
//
// Fusion override: with `--fusion any|majority|all|weighted` every
// admitted session fuses with the given policy regardless of what the
// client's ADD_SESSION spec carried — an operator-side knob for a fleet
// whose clients predate score fusion.  `weighted` applies the uniform
// (untrained) weighted policy; clients that want *learned* reliability
// weights fit them locally and send the policy in the spec instead.
// Restored sessions keep their checkpointed policy either way.
//
// Resilience: --idle-timeout-ms reaps connections that go silent (dead
// peers, half-open TCP links) instead of leaking a thread per ghost
// client; --write-timeout-ms closes consumers that cannot drain a reply;
// --max-conns answers connects beyond the cap with a typed BUSY error
// carrying a retry-after hint, which reconnecting clients honor.  The
// transport counters (accepted / busy-rejected / accept errors / idle
// reaped / write timeouts) are printed at shutdown.
//
//   ./fleet_daemon --listen <uds-path> [--tcp <port>] [--shards N]
//                  [--checkpoint <dir>] [--resume] [--baseline-dir <dir>]
//                  [--policy block|drop-oldest|reject] [--queue-frames N]
//                  [--fusion any|majority|all|weighted]
//                  [--idle-timeout-ms N] [--write-timeout-ms N]
//                  [--max-conns N]
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "core/fusion.hpp"
#include "engine/fleet_server.hpp"
#include "engine/sharded_fleet.hpp"
#include "signal/checkpoint.hpp"

using namespace nsync;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::string uds_path;
  std::uint16_t tcp_port = 0;
  std::size_t shards = 2;
  std::string checkpoint_dir;
  std::string baseline_dir;
  bool resume = false;
  std::string policy = "block";
  std::string fusion;  // empty = honor each client spec's policy
  std::size_t queue_frames = 1u << 20;
  // 30 s default: generous against paced feeders, still bounded against
  // half-open peers.  0 disables.
  std::uint32_t idle_timeout_ms = 30000;
  std::uint32_t write_timeout_ms = 0;
  std::size_t max_conns = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      uds_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--baseline-dir" && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else if (arg == "--policy" && i + 1 < argc) {
      policy = argv[++i];
    } else if (arg == "--fusion" && i + 1 < argc) {
      fusion = argv[++i];
    } else if (arg == "--queue-frames" && i + 1 < argc) {
      queue_frames = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
      idle_timeout_ms = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--write-timeout-ms" && i + 1 < argc) {
      write_timeout_ms = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--max-conns" && i + 1 < argc) {
      max_conns = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fleet_daemon --listen <uds-path> [--tcp <port>]"
                << " [--shards N] [--checkpoint <dir>] [--resume]"
                << " [--baseline-dir <dir>]"
                << " [--policy block|drop-oldest|reject] [--queue-frames N]"
                << " [--fusion any|majority|all|weighted]"
                << " [--idle-timeout-ms N] [--write-timeout-ms N]"
                << " [--max-conns N]\n";
      return 0;
    } else {
      std::cerr << "fleet_daemon: unknown argument " << arg
                << " (see --help)\n";
      return 2;
    }
  }
  if (uds_path.empty() && tcp_port == 0) {
    std::cerr << "fleet_daemon: --listen <uds-path> or --tcp <port> is "
                 "required\n";
    return 2;
  }
  if (resume && checkpoint_dir.empty()) {
    std::cerr << "fleet_daemon: --resume requires --checkpoint <dir>\n";
    return 2;
  }

  engine::ShardedFleetOptions fopts;
  fopts.shards = shards;
  fopts.queue_capacity_frames = queue_frames;
  if (policy == "block") {
    fopts.overflow = engine::OverflowPolicy::kBlock;
  } else if (policy == "drop-oldest") {
    fopts.overflow = engine::OverflowPolicy::kDropOldest;
  } else if (policy == "reject") {
    fopts.overflow = engine::OverflowPolicy::kReject;
  } else {
    std::cerr << "fleet_daemon: unknown --policy " << policy << "\n";
    return 2;
  }
  if (!checkpoint_dir.empty()) {
    std::filesystem::create_directories(checkpoint_dir);
    fopts.checkpoint_dir = checkpoint_dir;
    fopts.checkpoint_every_polls = 1;
  }
  if (!baseline_dir.empty()) {
    std::filesystem::create_directories(baseline_dir);
    fopts.baseline.adaptive = true;
    fopts.baseline.dir = baseline_dir;
  }
  if (!fusion.empty()) {
    if (fusion == "weighted") {
      fopts.fusion_override = std::make_shared<core::WeightedPolicy>();
    } else {
      try {
        fopts.fusion_override =
            std::make_shared<core::VotingPolicy>(core::parse_fusion_rule(fusion));
      } catch (const std::invalid_argument& e) {
        std::cerr << "fleet_daemon: " << e.what() << " (or weighted)\n";
        return 2;
      }
    }
  }

  std::unique_ptr<engine::ShardedFleet> fleet;
  if (resume) {
    try {
      fleet = engine::ShardedFleet::restore(checkpoint_dir, fopts);
    } catch (const signal::CheckpointError& e) {
      std::cerr << "fleet_daemon: cannot resume from " << checkpoint_dir
                << ": " << e.what() << "\n";
      return 2;
    }
    std::cout << "resumed " << fleet->sessions() << " sessions across "
              << shards << " shards from " << checkpoint_dir << "\n";
  } else {
    fleet = std::make_unique<engine::ShardedFleet>(fopts);
  }

  engine::FleetServerOptions sopts;
  sopts.uds_path = uds_path;
  sopts.tcp_port = tcp_port;
  sopts.idle_timeout_ms = idle_timeout_ms;
  sopts.write_timeout_ms = write_timeout_ms;
  sopts.max_connections = max_conns;
  engine::FleetServer server(*fleet, sopts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "fleet_daemon: " << e.what() << "\n";
    return 2;
  }
  if (!uds_path.empty()) {
    std::cout << "listening on " << uds_path;
  } else {
    std::cout << "listening on 127.0.0.1:" << server.bound_tcp_port();
  }
  std::cout << " (" << shards << " shards, policy " << policy << ")"
            << std::endl;  // flush: the smoke test waits for this line

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  const engine::FleetServerStats sstats = server.stats();
  server.stop();
  // Final checkpoint so a graceful shutdown preserves everything staged.
  if (!checkpoint_dir.empty()) {
    fleet->flush();
    fleet->checkpoint_all();
  }
  const engine::FleetStats stats = fleet->stats();
  std::cout << "shutdown: " << stats.sessions << " sessions, "
            << stats.windows << " windows, " << stats.shed_frames
            << " shed, " << stats.rejected_frames << " rejected\n";
  std::cout << "transport: " << sstats.connections_accepted << " accepted, "
            << sstats.connections_busy_rejected << " busy-rejected, "
            << sstats.accept_errors << " accept errors, "
            << sstats.idle_reaped << " idle-reaped, "
            << sstats.write_timeouts << " write timeouts\n";
  return 0;
}
