// Example: real-time monitoring on the spectrogram transform.
//
// Table VIII shows spectrograms are the strongest transform for several
// side channels (they are shift-tolerant within a column and separate
// informative bins from hum, e.g. EPT's 60 Hz).  This example chains the
// full live pipeline:
//
//   DAQ chunks -> StreamingStft (columns) -> RealtimeMonitor (NSYNC/DWM)
//
// on the audio channel, against an InfillGrid-sabotaged print.
//
// Run: ./build/examples/spectrogram_monitor
#include <iostream>

#include "core/nsync.hpp"
#include "dsp/streaming_stft.hpp"
#include "eval/setup.hpp"
#include "gcode/attacks.hpp"
#include "printer/simulator.hpp"
#include "sensors/rig.hpp"

using namespace nsync;

namespace {

signal::Signal observe_aud(const gcode::Program& program,
                           const eval::PrinterSetup& setup,
                           std::uint64_t seed) {
  printer::ExecutorConfig exec;
  exec.sample_rate = 1500.0;
  const printer::MotionTrace trace = printer::trim_to_first_layer(
      printer::simulate_print(program, setup.machine, exec, seed));
  const sensors::SensorRig rig(setup.machine, setup.rig);
  signal::Rng rng(seed * 131 + 3);
  return rig.render(sensors::SideChannel::kAud, trace, rng);
}

}  // namespace

int main() {
  const eval::EvalScale scale = eval::EvalScale::tiny();
  const eval::PrinterSetup setup =
      eval::make_printer_setup(eval::PrinterKind::kUm3, scale);
  const auto stft_cfg = eval::table3_stft(sensors::SideChannel::kAud);

  // Reference + training, transformed offline (training is not live).
  const signal::Signal ref_raw = observe_aud(setup.benign_program, setup, 1);
  const signal::Signal reference = dsp::spectrogram(ref_raw, stft_cfg);
  std::cout << "reference spectrogram: " << reference.frames()
            << " columns x " << reference.channels() << " channels @ "
            << reference.sample_rate() << " Hz\n";

  core::NsyncConfig cfg;
  cfg.sync = core::SyncMethod::kDwm;
  cfg.dwm = eval::dwm_params_for(eval::PrinterKind::kUm3,
                                 reference.sample_rate());
  cfg.r = 0.3;
  core::NsyncIds ids(reference, cfg);
  std::vector<signal::Signal> train;
  for (std::uint64_t s = 2; s < 9; ++s) {
    train.push_back(
        dsp::spectrogram(observe_aud(setup.benign_program, setup, s),
                         stft_cfg));
  }
  ids.fit(train);

  // Live phase: raw audio chunks stream through the STFT into the monitor.
  const gcode::Program sabotaged =
      gcode::attack_infill_grid(setup.outline, setup.slicer);
  const signal::Signal live_raw = observe_aud(sabotaged, setup, 42);

  dsp::StreamingStft stft(stft_cfg, live_raw.sample_rate(),
                          live_raw.channels());
  core::RealtimeMonitor monitor(reference, cfg, ids.thresholds());

  const auto chunk = static_cast<std::size_t>(0.05 * live_raw.sample_rate());
  std::size_t pos = 0;
  std::size_t emitted_columns = 0;
  while (pos < live_raw.frames() && !monitor.intrusion()) {
    const std::size_t end = std::min(pos + chunk, live_raw.frames());
    stft.push(signal::SignalView(live_raw).slice(pos, end));
    pos = end;
    // Forward newly finished spectrogram columns to the monitor.
    const auto& spec = stft.spectrogram();
    if (spec.frames() > emitted_columns) {
      monitor.push(signal::SignalView(spec).slice(emitted_columns,
                                                  spec.frames()));
      emitted_columns = spec.frames();
    }
  }

  const double t = static_cast<double>(pos) / live_raw.sample_rate();
  if (monitor.intrusion()) {
    std::cout << "ALARM after " << t << " s of audio ("
              << emitted_columns << " spectrogram columns, "
              << monitor.windows() << " DWM windows)\n";
    return 0;
  }
  std::cout << "no alarm raised — attack missed\n";
  return 1;
}
